"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library for the common flows:

* ``evaluate``  — build a named dataflow for a workload and print the
  evaluation summary (optionally the tree and notation).
* ``compare``   — run the dataflow comparison for one workload family.
* ``search``    — run the GA+MCTS mapper on one workload.
* ``validate``  — run the Fig. 8 validation sweeps.
* ``experiment``— regenerate one paper table/figure by id (fig10, tab7,
  ...), the same output the benches print.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import arch as arch_mod
from .analysis import TileFlowModel
from .dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                        attention_dataflow, conv_dataflow)
from .mapper import TileFlowMapper
from .tile import render_notation
from .workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                        attention_from_shape, conv_chain_from_shape)


def _workload(args):
    if args.workload in ATTENTION_SHAPES:
        return attention_from_shape(ATTENTION_SHAPES[args.workload])
    if args.workload in CONV_CHAIN_SHAPES:
        return conv_chain_from_shape(CONV_CHAIN_SHAPES[args.workload])
    raise SystemExit(
        f"unknown workload {args.workload!r}; choose an attention shape "
        f"{sorted(ATTENTION_SHAPES)} or conv chain {sorted(CONV_CHAIN_SHAPES)}")


def _dataflow(workload, name, spec):
    if "conv1" in {op.name for op in workload.operators}:
        return conv_dataflow(name, workload, spec)
    return attention_dataflow(name, workload, spec)


def cmd_evaluate(args) -> int:
    workload = _workload(args)
    spec = arch_mod.by_name(args.arch)
    tree = _dataflow(workload, args.dataflow, spec)
    result = TileFlowModel(spec).evaluate(tree)
    if args.json:
        import json
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.feasible else 1
    if args.show_tree:
        print(tree.render())
        print()
    if args.show_notation:
        print(render_notation(tree))
        print()
    print(result.summary())
    return 0 if result.feasible else 1


def cmd_compare(args) -> int:
    workload = _workload(args)
    spec = arch_mod.by_name(args.arch)
    names = (CONV_DATAFLOWS if "conv1" in
             {op.name for op in workload.operators} else
             ATTENTION_DATAFLOWS)
    model = TileFlowModel(spec)
    base = None
    print(f"{'dataflow':12s} {'cycles':>12s} {'speedup':>8s} "
          f"{'DRAM words':>12s}")
    for name in names:
        result = model.evaluate(_dataflow(workload, name, spec))
        base = base or result.latency_cycles
        print(f"{name:12s} {result.latency_cycles:12.4g} "
              f"{base / result.latency_cycles:7.2f}x "
              f"{result.dram_words():12.4g}")
    return 0


def cmd_search(args) -> int:
    workload = _workload(args)
    spec = arch_mod.by_name(args.arch)
    mapper = TileFlowMapper(workload, spec, seed=args.seed)
    result = mapper.explore(generations=args.generations,
                            population=args.population,
                            mcts_samples=args.samples)
    print(f"best ordering/binding: "
          f"{result.best_genome.describe(workload)}")
    print(f"best factors         : {result.best_factors}")
    print(result.best_result.summary())
    return 0


def cmd_validate(args) -> int:
    from .experiments.validation import (format_validation,
                                         validate_against_accelerator,
                                         validate_against_polyhedron)
    poly = validate_against_polyhedron(limit=args.mappings)
    accel = validate_against_accelerator(limit=min(131, args.mappings))
    print(format_validation(poly, accel))
    return 0


_EXPERIMENTS = ("fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
                "fig14", "tab6", "tab7", "tab8", "ablation")


def cmd_experiment(args) -> int:
    eid = args.id.lower()
    if eid == "fig8":
        return cmd_validate(argparse.Namespace(mappings=1152))
    if eid == "fig9":
        from .experiments.exploration import (factor_tuning_trace,
                                              format_traces)
        traces = factor_tuning_trace(samples=40)
        print(format_traces(traces, "Figure 9a"))
        return 0
    if eid in ("fig10", "fig11"):
        from .experiments.comparison import (attention_comparison,
                                             format_normalized_cycles)
        spec = arch_mod.edge() if eid == "fig10" else arch_mod.cloud()
        result = attention_comparison(spec)
        print(format_normalized_cycles(result, f"Figure {eid[3:]}a"))
        return 0
    if eid == "fig12":
        from .experiments.comparison import (conv_comparison,
                                             format_normalized_cycles)
        print(format_normalized_cycles(conv_comparison(), "Figure 12a"))
        return 0
    if eid == "fig13":
        from .experiments.energy_breakdown import (energy_breakdown,
                                                   format_breakdown)
        print(format_breakdown(energy_breakdown()))
        return 0
    if eid == "fig14":
        from .experiments.sensitivity import (bandwidth_sensitivity,
                                              format_bandwidth_sweep)
        for shape in ("CC1", "CC2"):
            print(format_bandwidth_sweep(bandwidth_sensitivity(shape)))
        return 0
    if eid == "tab6":
        from .experiments.sensitivity import format_pe_sweep, pe_size_sweep
        print(format_pe_sweep(pe_size_sweep()))
        return 0
    if eid == "tab7":
        from .experiments.sensitivity import (format_granularity,
                                              granularity_study)
        for scenario in ("fixed", "explored", "limited"):
            print(format_granularity(scenario,
                                     granularity_study(scenario)))
        return 0
    if eid == "tab8":
        from .experiments.gpu import format_gpu, gpu_evaluation
        print(format_gpu(gpu_evaluation()))
        return 0
    if eid == "ablation":
        from .experiments.ablation import (binding_ablation,
                                           format_binding_ablation,
                                           format_rule_ablation,
                                           movement_rule_ablation)
        for rule in ("eviction", "rmw"):
            print(format_rule_ablation(rule, movement_rule_ablation(rule)))
        print(format_binding_ablation(binding_ablation()))
        return 0
    raise SystemExit(f"unknown experiment {args.id!r}; "
                     f"choose from {_EXPERIMENTS}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TileFlow reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("evaluate", help="evaluate one dataflow")
    p.add_argument("workload", help="shape name (Bert-S, CC1, ...)")
    p.add_argument("dataflow", help="dataflow template name")
    p.add_argument("--arch", default="edge")
    p.add_argument("--show-tree", action="store_true")
    p.add_argument("--show-notation", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="emit the evaluation as JSON")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("compare", help="compare all dataflows")
    p.add_argument("workload")
    p.add_argument("--arch", default="edge")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("search", help="run the GA+MCTS mapper")
    p.add_argument("workload")
    p.add_argument("--arch", default="edge")
    p.add_argument("--generations", type=int, default=6)
    p.add_argument("--population", type=int, default=10)
    p.add_argument("--samples", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("validate", help="Fig. 8 validation sweeps")
    p.add_argument("--mappings", type=int, default=256)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("experiment", help="regenerate a table/figure")
    p.add_argument("id", help=f"one of {_EXPERIMENTS}")
    p.set_defaults(func=cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
