"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library for the common flows:

* ``evaluate``  — build a named dataflow for a workload and print the
  evaluation summary (optionally the tree and notation).
* ``compare``   — run the dataflow comparison for one workload family.
* ``search``    — run the GA+MCTS mapper on one workload.
* ``validate``  — run the Fig. 8 validation sweeps.
* ``experiment``— regenerate one paper table/figure by id (fig10, tab7,
  ...), the same output the benches print.
* ``stats``     — replay a ``--trace`` JSONL file into the profile
  summary ``--profile`` prints.
* ``runs``      — list/show/diff the persistent run ledger written by
  ``search --ledger DIR``.
* ``explain``   — per-pass self-time and artifact provenance (context
  memo vs subtree cache vs fresh) of one evaluation, plus the exact
  pre-screen bound that would fire.

Every command accepts the observability flags ``--trace FILE``
(``--trace-format jsonl|chrome``), ``--events FILE``, and ``--profile``
(see :mod:`repro.obs` and docs/OBSERVABILITY.md) plus the output-mode
flags ``--json`` / ``--quiet``.  All output is routed
through one :class:`OutputWriter`: in ``--json`` mode only the JSON
payload reaches stdout (no interleaved headers), and the ``--profile``
summary goes to stderr so it never corrupts machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, IO, List, Optional

from . import arch as arch_mod
from . import obs
from . import workloads as workloads_mod
from .analysis import TileFlowModel
from .dataflows import dataflow_for, dataflow_names
from .mapper import TileFlowMapper
from .obs import events as events_mod
from .obs import ledger as ledger_mod
from .tile import render_notation


class OutputWriter:
    """Single sink for all CLI output.

    ``emit`` carries human-readable text (suppressed by ``--quiet`` and
    in ``--json`` mode); ``emit_json`` carries the machine-readable
    payload (printed only in ``--json`` mode).  A command's result is
    therefore exactly one of the two streams, never an interleaving.
    """

    def __init__(self, json_mode: bool = False, quiet: bool = False,
                 stream: Optional[IO[str]] = None):
        self.json_mode = json_mode
        self.quiet = quiet
        self.stream = stream if stream is not None else sys.stdout

    def emit(self, text: str = "") -> None:
        if not (self.quiet or self.json_mode):
            print(text, file=self.stream)

    def emit_json(self, payload: Any) -> None:
        if self.json_mode:
            json.dump(payload, self.stream, indent=2, allow_nan=False)
            self.stream.write("\n")


def _workload(args):
    try:
        return workloads_mod.by_name(args.workload)
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc))


def _dataflow(workload, name, spec):
    return dataflow_for(workload, name, spec)


def cmd_evaluate(args) -> int:
    w = args.writer
    workload = _workload(args)
    spec = arch_mod.by_name(args.arch)
    tree = _dataflow(workload, args.dataflow, spec)
    result = TileFlowModel(spec).evaluate(tree)
    w.emit_json(result.to_dict())
    if args.show_tree:
        w.emit(tree.render())
        w.emit()
    if args.show_notation:
        w.emit(render_notation(tree))
        w.emit()
    w.emit(result.summary())
    return 0 if result.feasible else 1


def cmd_compare(args) -> int:
    w = args.writer
    workload = _workload(args)
    spec = arch_mod.by_name(args.arch)
    names = dataflow_names(workload)
    model = TileFlowModel(spec)
    base = None
    rows = []
    w.emit(f"{'dataflow':12s} {'cycles':>12s} {'speedup':>8s} "
           f"{'DRAM words':>12s}")
    for name in names:
        result = model.evaluate(_dataflow(workload, name, spec))
        base = base or result.latency_cycles
        w.emit(f"{name:12s} {result.latency_cycles:12.4g} "
               f"{base / result.latency_cycles:7.2f}x "
               f"{result.dram_words():12.4g}")
        rows.append({"dataflow": name,
                     "latency_cycles": result.latency_cycles,
                     "speedup": base / result.latency_cycles,
                     "dram_words": result.dram_words(),
                     "feasible": result.feasible})
    w.emit_json({"workload": args.workload, "arch": spec.name,
                 "dataflows": rows})
    return 0


def cmd_search(args) -> int:
    import time

    from .engine import EvaluationEngine
    from .engine.manifest import search_run_manifest

    w = args.writer
    workload = _workload(args)
    spec = arch_mod.by_name(args.arch)
    engine = EvaluationEngine(
        workload, spec, workers=args.workers,
        subtree_cache_size=args.cache_bound, cache_dir=args.cache_dir,
        cache_persist=not args.no_cache_persist)
    mapper = TileFlowMapper(workload, spec, seed=args.seed,
                            workers=args.workers, engine=engine)
    start = time.perf_counter()
    try:
        result = mapper.explore(generations=args.generations,
                                population=args.population,
                                mcts_samples=args.samples)
        wall_s = time.perf_counter() - start
    finally:
        engine.shutdown()
    if args.ledger:
        ledger = ledger_mod.RunLedger(args.ledger)
        run_id = args.run_id or ledger.new_run_id(salt=args.workload)
        manifest = search_run_manifest(
            run_id=run_id, engine=engine, workload=workload, arch=spec,
            result=result, generations=args.generations,
            population=args.population, samples=args.samples,
            workers=args.workers, seed=args.seed, wall_s=wall_s)
        path = ledger.record(manifest)
        w.emit(f"run recorded: {run_id} -> {path}")
    w.emit_json(result.to_dict())
    w.emit(f"best ordering/binding: "
           f"{result.best_genome.describe(workload)}")
    w.emit(f"best factors         : {result.best_factors}")
    w.emit(result.best_result.summary())
    return 0


def cmd_validate(args) -> int:
    from .experiments.validation import (format_validation,
                                         validate_against_accelerator,
                                         validate_against_polyhedron)
    poly = validate_against_polyhedron(limit=args.mappings)
    accel = validate_against_accelerator(limit=min(131, args.mappings))
    text = format_validation(poly, accel)
    args.writer.emit(text)
    args.writer.emit_json({"experiment": "fig8", "output": text})
    return 0


_EXPERIMENTS = ("fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
                "fig14", "tab6", "tab7", "tab8", "ablation")


def cmd_experiment(args) -> int:
    w = args.writer
    eid = args.id.lower()

    def finish(blocks: List[str]) -> int:
        for block in blocks:
            w.emit(block)
        w.emit_json({"experiment": eid, "output": "\n".join(blocks)})
        return 0

    if eid == "fig8":
        return cmd_validate(argparse.Namespace(mappings=1152, writer=w))
    if eid == "fig9":
        from .experiments.exploration import (factor_tuning_trace,
                                              format_traces)
        traces = factor_tuning_trace(samples=40)
        return finish([format_traces(traces, "Figure 9a")])
    if eid in ("fig10", "fig11"):
        from .experiments.comparison import (attention_comparison,
                                             format_normalized_cycles)
        spec = arch_mod.edge() if eid == "fig10" else arch_mod.cloud()
        result = attention_comparison(spec)
        return finish([format_normalized_cycles(result,
                                                f"Figure {eid[3:]}a")])
    if eid == "fig12":
        from .experiments.comparison import (conv_comparison,
                                             format_normalized_cycles)
        return finish([format_normalized_cycles(conv_comparison(),
                                                "Figure 12a")])
    if eid == "fig13":
        from .experiments.energy_breakdown import (energy_breakdown,
                                                   format_breakdown)
        return finish([format_breakdown(energy_breakdown())])
    if eid == "fig14":
        from .experiments.sensitivity import (bandwidth_sensitivity,
                                              format_bandwidth_sweep)
        return finish([format_bandwidth_sweep(bandwidth_sensitivity(shape))
                       for shape in ("CC1", "CC2")])
    if eid == "tab6":
        from .experiments.sensitivity import format_pe_sweep, pe_size_sweep
        return finish([format_pe_sweep(pe_size_sweep())])
    if eid == "tab7":
        from .experiments.sensitivity import (format_granularity,
                                              granularity_study)
        return finish([format_granularity(scenario,
                                          granularity_study(scenario))
                       for scenario in ("fixed", "explored", "limited")])
    if eid == "tab8":
        from .experiments.gpu import format_gpu, gpu_evaluation
        return finish([format_gpu(gpu_evaluation())])
    if eid == "ablation":
        from .experiments.ablation import (binding_ablation,
                                           format_binding_ablation,
                                           format_rule_ablation,
                                           movement_rule_ablation)
        blocks = [format_rule_ablation(rule, movement_rule_ablation(rule))
                  for rule in ("eviction", "rmw")]
        blocks.append(format_binding_ablation(binding_ablation()))
        return finish(blocks)
    raise SystemExit(f"unknown experiment {args.id!r}; "
                     f"choose from {_EXPERIMENTS}")


def cmd_stats(args) -> int:
    """Replay a trace file into the ``--profile`` summary."""
    try:
        spans, metrics = obs.load_jsonl(args.trace_file)
    except OSError as exc:
        raise SystemExit(f"cannot read trace file: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"{args.trace_file} is not a JSONL trace file ({exc}); "
            f"expected a file written by --trace")
    args.writer.emit(obs.render_profile(spans, metrics, top=args.top))
    args.writer.emit_json(obs.profile_dict(spans, metrics))
    return 0


def cmd_runs(args) -> int:
    """Inspect the persistent run ledger (list | show | diff)."""
    w = args.writer
    ledger = ledger_mod.RunLedger(args.root)
    try:
        if args.verb == "list":
            manifests = ledger.manifests()
            w.emit(ledger_mod.render_run_list(manifests))
            w.emit_json({"runs": manifests})
            return 0
        if args.verb == "show":
            ids = args.run_ids or ledger.run_ids()[-1:]
            if not ids:
                raise SystemExit("runs show: ledger is empty")
            manifest = ledger.load(ids[0])
            w.emit(ledger_mod.render_manifest(manifest))
            w.emit_json(manifest)
            return 0
        # diff: explicit A B, or the two most recent runs.
        ids = args.run_ids or ledger.run_ids()[-2:]
        if len(ids) != 2:
            raise SystemExit("runs diff: need two run ids (or a ledger "
                             "with at least two runs)")
        diff = ledger_mod.diff_manifests(ledger.load(ids[0]),
                                         ledger.load(ids[1]),
                                         tolerance=args.tolerance)
        w.emit(ledger_mod.render_diff(diff))
        w.emit_json(diff)
        if args.fail_on_regression and diff["champion"]["regressed"]:
            return 1
        return 0
    except ledger_mod.LedgerError as exc:
        raise SystemExit(str(exc))


def cmd_explain(args) -> int:
    """Per-pass timing + artifact provenance of one evaluation."""
    from .obs import explain as explain_mod  # lazy: imports the engine

    w = args.writer
    if args.run:
        # Explain a recorded ledger run (CLI- or service-produced): the
        # champion tree is rebuilt from the manifest's genome encoding
        # or dataflow name.
        try:
            manifest = ledger_mod.RunLedger(args.root).load(args.run)
            tree, spec = explain_mod.tree_from_manifest(manifest)
        except ledger_mod.LedgerError as exc:
            raise SystemExit(str(exc))
        w.emit(f"run {args.run}: champion of "
               f"{(manifest.get('workload') or {}).get('name')} on "
               f"{(manifest.get('arch') or {}).get('name')}")
    else:
        if not (args.workload and args.dataflow):
            raise SystemExit("explain: give WORKLOAD DATAFLOW, or "
                             "--run RUN_ID to explain a ledger run")
        workload = _workload(args)
        spec = arch_mod.by_name(args.arch)
        tree = _dataflow(workload, args.dataflow, spec)
    report = explain_mod.explain_tree(tree, spec)
    w.emit(explain_mod.render_explain(report))
    w.emit_json(report)
    return 0


def cmd_serve(args) -> int:
    """Run the long-lived evaluation service (see docs/SERVICE.md)."""
    import signal
    import threading

    from .serve import EvaluationService, make_server

    w = args.writer
    service = EvaluationService(workers=args.workers,
                                max_queue=args.max_queue,
                                ledger_root=args.ledger,
                                subtree_cache_size=args.cache_bound,
                                cache_dir=args.cache_dir,
                                cache_persist=not args.no_cache_persist
                                ).start()
    httpd = make_server(args.host, args.port, service,
                        max_body=args.max_body_kb * 1024)
    host, port = httpd.server_address[:2]
    w.emit(f"serving on http://{host}:{port} "
           f"(workers={args.workers}, max-queue={args.max_queue}, "
           f"ledger={args.ledger or 'off'})")

    def drain(_signum=None, _frame=None):
        # First signal: drain gracefully (finish in-flight jobs, flush
        # the ledger, then stop accepting connections).
        if service.draining:
            return
        service.begin_drain()
        w.emit("draining: waiting for in-flight jobs "
               "(submit returns 503 + Retry-After)")

        def finish():
            service.wait_drained()
            httpd.shutdown()

        threading.Thread(target=finish, daemon=True).start()

    signal.signal(signal.SIGINT, drain)
    signal.signal(signal.SIGTERM, drain)
    try:
        httpd.serve_forever(poll_interval=0.2)
    finally:
        httpd.server_close()
        service.stop()
        w.emit("drained; all jobs flushed")
    return 0


def cmd_client(args) -> int:
    """Submit jobs to / inspect a running evaluation service."""
    from .serve import ServiceClient, ServiceError

    w = args.writer
    client = ServiceClient(args.url)
    if args.verb in ("status", "watch", "result") and not args.job_id:
        raise SystemExit(f"client {args.verb}: a job id is required")
    try:
        if args.verb == "submit":
            spec = {"workload": args.workload, "arch": args.arch}
            if args.kind == "evaluate":
                if not args.dataflow:
                    raise SystemExit("client submit evaluate: --dataflow "
                                     "is required")
                spec["dataflow"] = args.dataflow
            elif args.kind == "search":
                spec.update(generations=args.generations,
                            population=args.population,
                            samples=args.samples, seed=args.seed)
            job = client.submit(args.kind, spec)
            w.emit(f"submitted {job['id']} ({args.kind}, "
                   f"state {job['state']})")
            if args.wait:
                job = client.result(job["id"], timeout=args.timeout)
                w.emit(f"{job['id']}: {job['state']}")
            w.emit_json(job)
            return 0 if job.get("state") in ("queued", "running",
                                             "done") else 1
        if args.verb == "status":
            job = client.status(args.job_id)
            w.emit(f"{job['id']}: {job['state']} "
                   f"({job['events']} events, run {job.get('run_id')})")
            w.emit_json(job)
            return 0
        if args.verb == "result":
            job = client.result(args.job_id, timeout=args.timeout)
            w.emit(f"{job['id']}: {job['state']}")
            if job.get("error"):
                w.emit(f"error: {job['error']}")
            w.emit_json(job)
            return 0 if job.get("state") == "done" else 1
        if args.verb == "watch":
            # NDJSON passthrough: each event line straight to stdout
            # (machine-readable even without --json).
            for event in client.watch(args.job_id):
                print(json.dumps(event, sort_keys=True))
            return 0
        if args.verb == "cache-clear":
            outcome = client.clear_cache(
                reset_counters=args.reset_counters)
            if outcome.get("cleared"):
                w.emit(f"cache cleared: {outcome.get('entries_dropped')} "
                       f"entries dropped across "
                       f"{outcome.get('engines')} engine(s)")
            else:
                w.emit(f"cache clear failed: {outcome.get('error')}")
            w.emit_json(outcome)
            return 0 if outcome.get("cleared") else 1
        # stats
        stats = client.stats()
        jobs = stats.get("jobs", {})
        cache = stats.get("subtree_cache", {})
        w.emit(f"status {stats.get('status')} | uptime "
               f"{stats.get('uptime_s', 0.0):.0f}s | jobs "
               + " ".join(f"{k}={v}" for k, v in sorted(jobs.items()))
               + f" | queue {stats.get('queue', {}).get('depth')}/"
                 f"{stats.get('queue', {}).get('max')}")
        w.emit(f"subtree cache: {cache.get('hits')} hits / "
               f"{cache.get('misses')} misses / "
               f"{cache.get('entries')} entries")
        for name, engine in sorted(stats.get("engines", {}).items()):
            w.emit(f"engine {name}: " + " ".join(
                f"{k}={engine[k]}" for k in ("evaluations", "cache_hits",
                                             "subtree_hits")
                if k in engine))
        w.emit_json(stats)
        return 0
    except ServiceError as exc:
        raise SystemExit(f"service error: {exc}")
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"cannot reach {args.url}: {exc}")
    except TimeoutError as exc:
        raise SystemExit(str(exc))


def cmd_cache(args) -> int:
    """Inspect or maintain the disk-persistent artifact tier (L3)."""
    from .engine.cache import DiskArtifactStore
    from .engine.signature import cache_namespace

    w = args.writer
    store = DiskArtifactStore(args.cache_dir)
    if args.verb == "stats":
        stats = store.stats()
        w.emit(f"cache root: {stats['root']} (schema v{stats['schema']})")
        for shard in stats["namespaces"]:
            kinds = " ".join(f"{k}={v['entries']}"
                             for k, v in sorted(shard["kinds"].items()))
            w.emit(f"  {shard['dir']}  {shard['namespace']}")
            w.emit(f"    {kinds or '(no shard files)'}  "
                   f"[{shard['bytes']} bytes]")
        w.emit(f"total: {stats['total_entries']} entries, "
               f"{stats['total_bytes']} bytes, "
               f"{len(stats['namespaces'])} namespace(s)")
        w.emit_json(stats)
        return 0
    if args.verb == "clear":
        removed = store.clear()
        w.emit(f"removed {removed} shard(s) under {store.root}")
        w.emit_json({"removed": removed})
        return 0
    # purge: by explicit prefix / workload-arch lookup, or by budget
    # (--max-age / --max-bytes drop whole shards oldest-mtime-first).
    if args.max_age is not None or args.max_bytes is not None:
        if args.namespace or args.workload:
            raise SystemExit("cache purge: budget flags (--max-age/"
                             "--max-bytes) and namespace selectors are "
                             "mutually exclusive")
        removed = store.purge_budget(max_age_s=args.max_age,
                                     max_bytes=args.max_bytes)
        for ns in removed:
            w.emit(f"purged {ns}")
        w.emit(f"removed {len(removed)} shard(s)")
        w.emit_json({"removed": removed})
        return 0
    selector = args.namespace
    if selector is None and args.workload:
        selector = cache_namespace(_workload(args),
                                   arch_mod.by_name(args.arch),
                                   True, True)
    if selector is None:
        raise SystemExit("cache purge: give --namespace PREFIX, "
                         "--workload NAME (with --arch; assumes default "
                         "model flags — use --namespace from `cache "
                         "stats` for ablation-flag shards), or a budget "
                         "via --max-age/--max-bytes")
    removed = store.purge(selector)
    for ns in removed:
        w.emit(f"purged {ns}")
    w.emit(f"removed {len(removed)} shard(s)")
    w.emit_json({"removed": removed})
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    out = common.add_argument_group("output")
    out.add_argument("--json", action="store_true",
                     help="emit only machine-readable JSON on stdout")
    out.add_argument("--quiet", action="store_true",
                     help="suppress human-readable output")
    prof = common.add_argument_group("observability")
    prof.add_argument("--trace", metavar="FILE", default=None,
                      help="record spans/metrics to a trace file "
                           "(replay JSONL traces with `repro stats FILE`)")
    prof.add_argument("--trace-format", choices=("jsonl", "chrome"),
                      default="jsonl",
                      help="trace file format: line-based JSONL (default) "
                           "or a Chrome Trace Event JSON for "
                           "chrome://tracing / ui.perfetto.dev")
    prof.add_argument("--profile", action="store_true",
                      help="print a profile summary (spans by self-time, "
                           "counters) to stderr when the command finishes")
    prof.add_argument("--events", metavar="FILE", default=None,
                      help="stream structured events (one JSON object per "
                           "line; schema: tests/data/event_schema.json)")

    from .engine.cache import DEFAULT_SUBTREE_CACHE_SIZE

    def cache_flags(p: argparse.ArgumentParser) -> None:
        """Tiered-artifact-store knobs shared by search and serve."""
        p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="disk-persistent artifact tier (L3): load "
                            "subtree artifacts from DIR and flush them "
                            "back on exit, so reruns warm-start (inspect "
                            "with `repro cache stats`)")
        p.add_argument("--cache-bound", type=int,
                       default=DEFAULT_SUBTREE_CACHE_SIZE,
                       help="in-memory subtree artifact cache entry "
                            "bound (L1; 0 disables incremental reuse)")
        p.add_argument("--no-cache-persist", action="store_true",
                       help="with --cache-dir: read the disk tier but "
                            "never write it back")

    parser = argparse.ArgumentParser(
        prog="repro", description="TileFlow reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("evaluate", parents=[common],
                       help="evaluate one dataflow")
    p.add_argument("workload", help="shape name (Bert-S, CC1, ...)")
    p.add_argument("dataflow", help="dataflow template name")
    p.add_argument("--arch", default="edge")
    p.add_argument("--show-tree", action="store_true")
    p.add_argument("--show-notation", action="store_true")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("compare", parents=[common],
                       help="compare all dataflows")
    p.add_argument("workload")
    p.add_argument("--arch", default="edge")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("search", parents=[common],
                       help="run the GA+MCTS mapper")
    p.add_argument("workload")
    p.add_argument("--arch", default="edge")
    p.add_argument("--generations", type=int, default=6)
    p.add_argument("--population", type=int, default=10)
    p.add_argument("--samples", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for population evaluation "
                        "(results are identical for any value; see "
                        "docs/PERFORMANCE.md)")
    p.add_argument("--ledger", metavar="DIR", default=None,
                   help="record a run manifest under DIR (inspect with "
                        "`repro runs list|show|diff`)")
    p.add_argument("--run-id", default=None,
                   help="explicit run id for --ledger (default: "
                        "timestamp-<workload>)")
    cache_flags(p)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("validate", parents=[common],
                       help="Fig. 8 validation sweeps")
    p.add_argument("--mappings", type=int, default=256)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("experiment", parents=[common],
                       help="regenerate a table/figure")
    p.add_argument("id", help=f"one of {_EXPERIMENTS}")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("stats", parents=[common],
                       help="summarize a JSONL trace file")
    p.add_argument("trace_file", help="file written by --trace")
    p.add_argument("--top", type=int, default=20,
                   help="span names to show (by self-time)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("runs", parents=[common],
                       help="inspect the run ledger")
    p.add_argument("verb", choices=("list", "show", "diff"))
    p.add_argument("run_ids", nargs="*",
                   help="run id for show / two ids (A B) for diff; "
                        "defaults to the most recent run(s)")
    p.add_argument("--root", default=ledger_mod.DEFAULT_RUNS_ROOT,
                   help="ledger directory (default: runs/)")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="relative champion-cost slack before diff calls "
                        "a regression")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit nonzero when diff detects a champion-cost "
                        "regression")
    p.set_defaults(func=cmd_runs)

    p = sub.add_parser("explain", parents=[common],
                       help="per-pass timing + artifact provenance of "
                            "one evaluation")
    p.add_argument("workload", nargs="?", default=None,
                   help="shape name (Bert-S, CC1, ...); omit with --run")
    p.add_argument("dataflow", nargs="?", default=None,
                   help="dataflow template name; omit with --run")
    p.add_argument("--arch", default="edge")
    p.add_argument("--run", default=None, metavar="RUN_ID",
                   help="explain a recorded ledger run's champion "
                        "(CLI- or service-produced) instead of a named "
                        "dataflow")
    p.add_argument("--root", default=ledger_mod.DEFAULT_RUNS_ROOT,
                   help="ledger directory for --run (default: runs/)")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("serve", parents=[common],
                       help="run the long-lived evaluation service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8731)
    p.add_argument("--workers", type=int, default=2,
                   help="worker threads executing jobs")
    p.add_argument("--max-queue", type=int, default=64,
                   help="pending-job bound (submissions beyond it get "
                        "HTTP 429)")
    p.add_argument("--ledger", metavar="DIR",
                   default=ledger_mod.DEFAULT_RUNS_ROOT,
                   help="record completed jobs under DIR (default: "
                        "runs/; empty string disables)")
    p.add_argument("--max-body-kb", type=int, default=64,
                   help="request-body cap in KiB (HTTP 413 beyond it)")
    cache_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("client", parents=[common],
                       help="talk to a running evaluation service")
    p.add_argument("verb", choices=("submit", "status", "watch",
                                    "result", "stats", "cache-clear"))
    p.add_argument("--url", default="http://127.0.0.1:8731",
                   help="service endpoint")
    p.add_argument("--kind", choices=("evaluate", "search", "sweep"),
                   default="evaluate", help="job kind for submit")
    p.add_argument("--workload", default="Bert-S")
    p.add_argument("--arch", default="edge")
    p.add_argument("--dataflow", default=None,
                   help="dataflow name (evaluate jobs)")
    p.add_argument("--generations", type=int, default=3)
    p.add_argument("--population", type=int, default=6)
    p.add_argument("--samples", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--wait", action="store_true",
                   help="submit: block until the job is terminal")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait in result/--wait")
    p.add_argument("--reset-counters", action="store_true",
                   help="cache-clear: also zero the cache's lifetime "
                        "hit/miss/eviction counters")
    p.add_argument("job_id", nargs="?", default=None,
                   help="job id for status/watch/result")
    p.set_defaults(func=cmd_client)

    p = sub.add_parser("cache", parents=[common],
                       help="inspect/maintain the on-disk artifact "
                            "cache written by --cache-dir")
    p.add_argument("verb", choices=("stats", "clear", "purge"))
    p.add_argument("--cache-dir", metavar="DIR", required=True,
                   help="the directory given to search/serve --cache-dir")
    p.add_argument("--namespace", default=None, metavar="PREFIX",
                   help="purge: namespace string (or shard-dir hash) "
                        "prefix to remove — see `cache stats`")
    p.add_argument("--workload", default=None,
                   help="purge: remove the shard of this workload")
    p.add_argument("--arch", default="edge",
                   help="architecture for --workload purge")
    p.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                   help="purge: remove shards not written to for this "
                        "many seconds")
    p.add_argument("--max-bytes", type=int, default=None, metavar="BYTES",
                   help="purge: then remove oldest shards until the cache "
                        "fits this many bytes")
    p.set_defaults(func=cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    import time

    args = build_parser().parse_args(argv)
    args.writer = OutputWriter(json_mode=getattr(args, "json", False),
                               quiet=getattr(args, "quiet", False))
    trace_path = getattr(args, "trace", None)
    trace_fh = None
    if trace_path:
        try:  # open eagerly so a bad path fails before the run, not after
            trace_fh = open(trace_path, "w")
        except OSError as exc:
            raise SystemExit(f"cannot write trace file: {exc}")
    events_path = getattr(args, "events", None)
    bus = None
    if events_path:
        try:
            events_fh = open(events_path, "w")
        except OSError as exc:
            raise SystemExit(f"cannot write events file: {exc}")
        bus = events_mod.enable(sinks=[events_mod.JsonlSink(events_fh)])
        bus.emit("run.start", command=args.command,
                 label=getattr(args, "workload", "") or "")
    tracer = (obs.enable() if trace_fh or getattr(args, "profile", False)
              else None)
    start = time.perf_counter()
    rc: Optional[int] = None
    try:
        rc = args.func(args)
    except BrokenPipeError:  # e.g. `repro stats trace.jsonl | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        rc = 141  # 128 + SIGPIPE, the conventional shell exit code
    finally:
        if bus is not None:
            bus.emit("run.end", command=args.command,
                     outcome="ok" if rc == 0 else
                     ("error" if rc is None else f"exit:{rc}"),
                     wall_s=time.perf_counter() - start)
            events_mod.disable()
            bus.close()
        if tracer is not None:
            obs.disable()
            snapshot = obs.metrics_snapshot()
            if trace_fh is not None:
                with trace_fh:
                    if getattr(args, "trace_format", "jsonl") == "chrome":
                        obs.dump_chrome(trace_fh, tracer.spans, snapshot)
                    else:
                        tracer.dump_jsonl(trace_fh, metrics=snapshot)
            if getattr(args, "profile", False):
                print(obs.render_profile(tracer.spans, snapshot),
                      file=sys.stderr)
        elif trace_fh is not None:  # pragma: no cover - defensive
            trace_fh.close()
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
