"""Structural validation of analysis trees.

Checks (all from §4 of the paper):

1. **Level monotonicity** — memory levels never increase from root to leaf.
2. **Chain shape** — an :class:`OpTile`'s child must be an OpTile of the
   same operator (fusion happens only at :class:`FusionNode`s).
3. **Coverage** — the tree covers the full iteration space of every
   operator (over-coverage is legal: it is the halo/recompute of fused
   convolutions).
4. **Fusion loop dims** — a loop at a FusionNode must iterate a dim of at
   least one operator in its subtree.
5. **Reduction-loop rule** (§4.1) — when a producer is fused, its
   reduction dims must not appear as loops of any fusion node containing
   both the producer and a consumer of its output; otherwise the consumer
   could not start until the producer finished, breaking the pipeline.
6. **Sibling order** — within a FusionNode, producers execute before
   consumers of their tensors; ``Para`` siblings must be independent.

:func:`validate_tree` raises :class:`TreeValidationError` on the first
violation; :func:`check_tree` returns the list of all violation messages.

:func:`validate_tree_cached` is the incremental variant: given an
analysis context with a shared artifact cache it validates per subtree
fingerprint — every rule except root coverage is local to a subtree
(given the workload, which the cache namespace pins), and coverage
composes bottom-up per operator — so re-validating a tree that shares
subtrees with previously validated ones only inspects the fresh ones.
A tree found invalid falls back to :func:`check_tree` so the error
message lists problems in the canonical (per-rule) order.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import TreeValidationError
from .coverage import apply_loops, op_coverage_below
from .bindings import Binding
from .tree import AnalysisTree, FusionNode, OpTile, TileNode


def check_tree(tree: AnalysisTree) -> List[str]:
    """Return a list of structural-rule violations (empty when valid)."""
    problems: List[str] = []
    _check_levels(tree.root, problems)
    _check_chains(tree.root, problems)
    _check_coverage(tree, problems)
    _check_fusion_loops(tree, problems)
    _check_reduction_rule(tree, problems)
    _check_sibling_order(tree, problems)
    return problems


def validate_tree(tree: AnalysisTree) -> None:
    """Raise :class:`TreeValidationError` if the tree is malformed."""
    problems = check_tree(tree)
    if problems:
        raise TreeValidationError(
            f"tree {tree.name!r} is invalid:\n  - " + "\n  - ".join(problems))


def validate_tree_cached(ctx) -> None:
    """Validate ``ctx.tree`` with per-subtree memoization.

    ``ctx`` is an :class:`~repro.analysis.context.AnalysisContext` (duck
    typed: ``tree``, ``fingerprint``, ``shared_get``/``shared_put``).
    Subtree verdicts are cached under kind ``"valid"`` and per-operator
    coverage under ``"cov"``; both are functions of the subtree shape
    plus the workload, which the cache namespace pins.  The happy path
    (valid tree) touches only fingerprints and fresh subtrees; any
    problem re-runs :func:`check_tree` so the raised message is
    byte-identical to the uncached path.
    """
    tree = ctx.tree
    if _subtree_problems(ctx, tree.root) or _coverage_problems(ctx):
        validate_tree(tree)  # canonical problem order; raises
        raise TreeValidationError(  # pragma: no cover - cache/full skew
            f"tree {tree.name!r} is invalid (cached validation found "
            f"problems the full check did not — cache corruption?)")


def _subtree_problems(ctx, node: TileNode) -> Tuple[str, ...]:
    """Structural problems (all rules but coverage) within one subtree."""
    fp = ctx.fingerprint(node)
    cached = ctx.shared_get("valid", fp)
    if cached is None:
        problems: List[str] = []
        _node_problems(node, ctx.tree.workload, problems)
        for child in node.children_nodes():
            problems.extend(_subtree_problems(ctx, child))
        cached = tuple(problems)
        ctx.shared_put("valid", fp, cached)
    return cached


def _node_problems(node: TileNode, workload, problems: List[str]) -> None:
    """The node-local slice of every structural rule but coverage."""
    for child in node.children_nodes():
        if child.level > node.level:
            problems.append(
                f"level increases from {node.label()} (L{node.level}) "
                f"to child {child.label()} (L{child.level})")
    if isinstance(node, OpTile) and node.child is not None:
        child = node.child
        if not isinstance(child, OpTile):
            problems.append(
                f"OpTile {node.label()} has non-OpTile child "
                f"{child.label()}; fusion requires a FusionNode")
        elif child.op.name != node.op.name:
            problems.append(
                f"OpTile chain switches operator: {node.label()} -> "
                f"{child.label()}")
    if not isinstance(node, FusionNode):
        return
    ops_here = {op.name: op for op in node.subtree_ops()}
    dims = set()
    for op in ops_here.values():
        dims.update(op.dims)
    for lp in node.loops:
        if lp.dim not in dims:
            problems.append(
                f"fusion node {node.label()}: loop dim {lp.dim!r} "
                f"belongs to no operator in its subtree")
    for op in ops_here.values():
        if op.kind in ASSOCIATIVE_KINDS:
            continue
        out = op.output.tensor.name
        consumed_inside = any(c.name in ops_here
                              for c in workload.consumers(out))
        if not consumed_inside:
            continue
        for lp in node.loops:
            if lp.dim in op.reduction_dims:
                problems.append(
                    f"fusion node {node.label()}: loop over {lp.dim!r} "
                    f"is a reduction dim of fused producer {op.name!r} "
                    f"(§4.1 forbids producer reduction loops above the "
                    f"fusion point)")
    position: Dict[str, int] = {}
    for idx, child in enumerate(node.children):
        for op in child.subtree_ops():
            position[op.name] = idx
    for producer, tensor, consumer in workload.dependency_chain():
        if producer in position and consumer in position:
            if position[producer] > position[consumer]:
                problems.append(
                    f"fusion node {node.label()}: child with consumer "
                    f"{consumer!r} precedes child with producer "
                    f"{producer!r} of tensor {tensor!r}")
            elif (position[producer] != position[consumer]
                  and node.binding is Binding.PARA):
                problems.append(
                    f"fusion node {node.label()}: Para siblings must be "
                    f"independent but {consumer!r} depends on "
                    f"{producer!r} via {tensor!r}")


def _coverage_problems(ctx) -> List[str]:
    """Root-coverage check with per-(subtree, operator) memoization."""
    tree = ctx.tree
    problems: List[str] = []
    for op in tree.workload.operators:
        try:
            path = tree.op_path(op.name)
        except TreeValidationError:
            problems.append(
                f"subtree {tree.root.label()!r} has no leaf for operator "
                f"{op.name!r}")
            continue
        cov = _coverage_at(ctx, path, 0, op)
        for d, size in op.dims.items():
            if cov.get(d, 1) < size:
                problems.append(
                    f"operator {op.name!r}: dim {d!r} covered {cov.get(d, 1)}"
                    f" < {size}")
    return problems


def _coverage_at(ctx, path, idx: int, op) -> Dict[str, int]:
    """Coverage of ``op`` below ``path[idx]``, descending lazily.

    Descending from the root means a warm cache answers with a *single*
    lookup at the outermost cached level instead of one per path node.
    The root itself is never cached: its fingerprint is fresh on every
    mapper move (something below changed), so a root entry would only
    churn the cache.
    """
    node = path[idx]
    at_root = idx == 0
    key = None if at_root else (ctx.fingerprint(node), op.name)
    cached = None if at_root else ctx.shared_get("cov", key)
    if cached is None:
        if idx + 1 < len(path):
            inner = _coverage_at(ctx, path, idx + 1, op)
        else:
            inner = {d: 1 for d in op.dims}
        cached = apply_loops(inner, node.loops, op.dims)
        if not at_root:
            ctx.shared_put("cov", key, cached)
    return cached


# ----------------------------------------------------------------------
def _check_levels(root: TileNode, problems: List[str]) -> None:
    for node in root.walk():
        for child in node.children_nodes():
            if child.level > node.level:
                problems.append(
                    f"level increases from {node.label()} (L{node.level}) "
                    f"to child {child.label()} (L{child.level})")


def _check_chains(root: TileNode, problems: List[str]) -> None:
    for node in root.walk():
        if isinstance(node, OpTile) and node.child is not None:
            child = node.child
            if not isinstance(child, OpTile):
                problems.append(
                    f"OpTile {node.label()} has non-OpTile child "
                    f"{child.label()}; fusion requires a FusionNode")
            elif child.op.name != node.op.name:
                problems.append(
                    f"OpTile chain switches operator: {node.label()} -> "
                    f"{child.label()}")


def _check_coverage(tree: AnalysisTree, problems: List[str]) -> None:
    for op in tree.workload.operators:
        try:
            cov = op_coverage_below(tree.root, op)
        except ValueError as exc:
            problems.append(str(exc))
            continue
        for d, size in op.dims.items():
            if cov.get(d, 1) < size:
                problems.append(
                    f"operator {op.name!r}: dim {d!r} covered {cov.get(d, 1)}"
                    f" < {size}")


def _check_fusion_loops(tree: AnalysisTree, problems: List[str]) -> None:
    for node in tree.nodes():
        if not isinstance(node, FusionNode):
            continue
        dims = set()
        for op in node.subtree_ops():
            dims.update(op.dims)
        for lp in node.loops:
            if lp.dim not in dims:
                problems.append(
                    f"fusion node {node.label()}: loop dim {lp.dim!r} "
                    f"belongs to no operator in its subtree")


#: Operator kinds whose reductions are associative and can be computed
#: online (running max / running sum), so tiling their reduction dim above
#: the fusion point is legal — the FlashAttention-style relaxation that
#: enables the paper's winning self-attention dataflow, which tiles the
#: column dimension of S/L/A (§7.5, Table 7 discussion).
ASSOCIATIVE_KINDS = frozenset({"max", "sum"})


def _check_reduction_rule(tree: AnalysisTree, problems: List[str]) -> None:
    workload = tree.workload
    for node in tree.nodes():
        if not isinstance(node, FusionNode):
            continue
        ops_here = {op.name: op for op in node.subtree_ops()}
        for op in ops_here.values():
            if op.kind in ASSOCIATIVE_KINDS:
                continue
            out = op.output.tensor.name
            consumed_inside = any(c.name in ops_here
                                  for c in workload.consumers(out))
            if not consumed_inside:
                continue
            for lp in node.loops:
                if lp.dim in op.reduction_dims:
                    problems.append(
                        f"fusion node {node.label()}: loop over {lp.dim!r} "
                        f"is a reduction dim of fused producer {op.name!r} "
                        f"(§4.1 forbids producer reduction loops above the "
                        f"fusion point)")


def _check_sibling_order(tree: AnalysisTree, problems: List[str]) -> None:
    workload = tree.workload
    for node in tree.nodes():
        if not isinstance(node, FusionNode):
            continue
        position = {}
        for idx, child in enumerate(node.children):
            for op in child.subtree_ops():
                position[op.name] = idx
        for producer, tensor, consumer in workload.dependency_chain():
            if producer in position and consumer in position:
                if position[producer] > position[consumer]:
                    problems.append(
                        f"fusion node {node.label()}: child with consumer "
                        f"{consumer!r} precedes child with producer "
                        f"{producer!r} of tensor {tensor!r}")
                elif (position[producer] != position[consumer]
                      and node.binding is Binding.PARA):
                    problems.append(
                        f"fusion node {node.label()}: Para siblings must be "
                        f"independent but {consumer!r} depends on "
                        f"{producer!r} via {tensor!r}")
