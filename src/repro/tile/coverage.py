"""Dimension-coverage computation over analysis trees.

The *coverage* of an operator dimension at a node is the number of
contiguous index values the subtree below (and including) that node spans
for the dimension — the quantity both the structural validation (does the
root cover the whole iteration space?) and the slice analysis (what are the
tile extents at each level?) need.

Coverage composes bottom-up: a leaf covers ``1`` per dim before its own
loops are applied, and each loop over dim ``d`` with ``count`` iterations
of ``step`` extends the coverage to ``step * (count - 1) + inner``.
Because fused producers may cover more than the shared loop's step (halo),
coverage at the root may legitimately exceed the operator's dimension size.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..ir import Operator
from .loops import Loop
from .tree import OpTile, TileNode


def apply_loops(coverage: Dict[str, int], loops: Iterable[Loop],
                dims: Optional[Iterable[str]] = None) -> Dict[str, int]:
    """Extend per-dim coverage by a node's loops (processed inner→outer)."""
    allowed = set(dims) if dims is not None else None
    cov = dict(coverage)
    for lp in reversed(list(loops)):
        if allowed is not None and lp.dim not in allowed:
            continue
        inner = cov.get(lp.dim, 1)
        cov[lp.dim] = lp.step * (lp.count - 1) + inner
    return cov


def op_coverage_below(node: TileNode, op: Operator) -> Dict[str, int]:
    """Coverage of ``op``'s dims by the subtree rooted at ``node``.

    ``node`` must contain the op's leaf; loops at ``node`` itself are
    included.  Dims of the op not touched by any loop get coverage 1.
    """
    leaf = _find_leaf(node, op)
    cov: Dict[str, int] = {d: 1 for d in op.dims}
    current: Optional[TileNode] = leaf
    while current is not None:
        cov = apply_loops(cov, current.loops, op.dims)
        if current is node:
            break
        current = current.parent
    else:  # pragma: no cover - guarded by _find_leaf
        raise ValueError(f"{node.label()} does not contain {op.name}")
    return cov


def _find_leaf(node: TileNode, op: Operator) -> OpTile:
    for leaf in node.leaves():
        if leaf.op.name == op.name:
            return leaf
    raise ValueError(
        f"subtree {node.label()!r} has no leaf for operator {op.name!r}")
