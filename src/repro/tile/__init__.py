"""Tile-centric notation: loops, bindings, analysis trees, validation."""

from .bindings import PARA, PIPE, SEQ, SHAR, Binding, parse_binding
from .coverage import apply_loops, op_coverage_below
from .loops import (Loop, auto_steps, product_of_counts, spatial,
                    split_spatial, temporal)
from .notation import parse_notation, render_notation
from .tree import AnalysisTree, FusionNode, OpTile, TileNode
from .validate import check_tree, validate_tree

__all__ = [
    "Binding", "SEQ", "SHAR", "PARA", "PIPE", "parse_binding",
    "Loop", "temporal", "spatial", "auto_steps", "product_of_counts",
    "split_spatial",
    "AnalysisTree", "FusionNode", "OpTile", "TileNode",
    "apply_loops", "op_coverage_below",
    "check_tree", "validate_tree",
    "render_notation", "parse_notation",
]
