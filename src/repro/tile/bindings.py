"""Inter-tile resource-binding primitives (Table 1 of the paper).

The four primitives govern how sibling tiles under a fusion node share the
accelerator's compute and memory resources:

* ``Seq`` — tiles occupy all resources exclusively, in turns.  Saves
  resources, but a tile's data is *evicted* when the next tile runs unless
  the next tile also uses it (§5.1.2).
* ``Shar`` — tiles execute in turns on the same compute resources but
  their data stays resident together in the shared memory (more locality,
  more memory usage).
* ``Para`` — independent tiles run on disjoint compute/memory partitions
  in the same time step.
* ``Pipe`` — dependent tiles run pipelined on disjoint partitions.

The resource recursions of §5.2 and the latency rules of §5.3 dispatch on
these values (see :mod:`repro.analysis`).
"""

from __future__ import annotations

from enum import Enum


class Binding(Enum):
    """Inter-tile binding primitive."""

    SEQ = "Seq"
    SHAR = "Shar"
    PARA = "Para"
    PIPE = "Pipe"

    @property
    def shares_compute_in_time(self) -> bool:
        """True when siblings take turns on the same compute units."""
        return self in (Binding.SEQ, Binding.SHAR)

    @property
    def keeps_data_resident(self) -> bool:
        """True when sibling data persists in the shared buffer.

        Only ``Seq`` evicts a finished tile's slices (unless the next tile
        needs them); the other three primitives keep them staged.
        """
        return self is not Binding.SEQ

    @property
    def is_concurrent(self) -> bool:
        """True when siblings overlap in time (Para/Pipe)."""
        return self in (Binding.PARA, Binding.PIPE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


SEQ = Binding.SEQ
SHAR = Binding.SHAR
PARA = Binding.PARA
PIPE = Binding.PIPE


def parse_binding(text: str) -> Binding:
    """Parse a binding name ("Seq", "shar", "PIPE", ...)."""
    try:
        return Binding[text.strip().upper()]
    except KeyError:
        raise ValueError(
            f"unknown binding {text!r}; expected one of "
            f"{[b.value for b in Binding]}") from None
