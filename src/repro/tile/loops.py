"""Tiling loops.

A :class:`Loop` iterates a named dimension ``count`` times, advancing the
dimension's index by ``step`` per iteration.  Loops are either *temporal*
(executed over time steps on the same hardware) or *spatial* (unrolled over
parallel hardware instances) — the paper's intra-tile ``Tp``/``Sp`` binding
primitives (Table 1).

``step`` is expressed in the dimension's index space: tiling ``m = 512``
as ``m2 (count 4) -> m1 (count 8) -> m0 (count 16)`` gives steps 128 / 16 /
1.  Keeping the step explicit (rather than inferring it from inner loops)
is what lets fused trees express halos: a producer tile can *cover* more
than the shared loop's step (Fused-Layer recompute).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..errors import TreeValidationError


class Loop:
    """One tiling loop: ``for dim in range(count), stepping by step``."""

    __slots__ = ("dim", "count", "step", "spatial")

    def __init__(self, dim: str, count: int, step: int = 1,
                 spatial: bool = False):
        if not dim:
            raise TreeValidationError("loop dim name must be non-empty")
        if count <= 0:
            raise TreeValidationError(
                f"loop over {dim!r}: count must be positive, got {count}")
        if step <= 0:
            raise TreeValidationError(
                f"loop over {dim!r}: step must be positive, got {step}")
        self.dim = dim
        self.count = int(count)
        self.step = int(step)
        self.spatial = bool(spatial)

    @property
    def span(self) -> int:
        """Index-space distance covered by the loop: ``(count-1)*step + 1``.

        This is the distance between the first and last iteration origins
        plus one; the full *coverage* additionally depends on the extent of
        whatever sits inside the loop.
        """
        return (self.count - 1) * self.step + 1

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Loop) and self.dim == other.dim
                and self.count == other.count and self.step == other.step
                and self.spatial == other.spatial)

    def __hash__(self) -> int:
        return hash((self.dim, self.count, self.step, self.spatial))

    def __repr__(self) -> str:
        tag = "Sp" if self.spatial else "Tp"
        return f"{tag}({self.dim}:{self.count}x{self.step})"


def temporal(dim: str, count: int, step: int = 1) -> Loop:
    """A temporal loop (``Tp`` in the paper's notation)."""
    return Loop(dim, count, step, spatial=False)


def spatial(dim: str, count: int, step: int = 1) -> Loop:
    """A spatial loop (``Sp`` in the paper's notation)."""
    return Loop(dim, count, step, spatial=True)


def product_of_counts(loops: Iterable[Loop]) -> int:
    n = 1
    for lp in loops:
        n *= lp.count
    return n


def split_spatial(loops: Sequence[Loop]) -> Tuple[List[Loop], List[Loop]]:
    """Partition loops into (temporal, spatial), preserving order."""
    t = [lp for lp in loops if not lp.spatial]
    s = [lp for lp in loops if lp.spatial]
    return t, s


def auto_steps(level_loops: Sequence[Sequence[Tuple[str, int, bool]]]
               ) -> List[List[Loop]]:
    """Assign steps to a per-level loop specification.

    ``level_loops`` lists levels *outer to inner*; each level is a sequence
    of ``(dim, count, spatial)`` triples.  The step of each loop is the
    product of the counts of all loops over the same dim that appear at
    deeper levels (or later in the same level) — the natural perfect-tiling
    interpretation.  Returns loops per level, outer to inner.
    """
    multiplier: Dict[str, int] = {}
    out_rev: List[List[Loop]] = []
    for level in reversed(list(level_loops)):
        loops_rev: List[Loop] = []
        for dim, count, is_spatial in reversed(list(level)):
            step = multiplier.get(dim, 1)
            loops_rev.append(Loop(dim, count, step, spatial=is_spatial))
            multiplier[dim] = step * count
        out_rev.append(list(reversed(loops_rev)))
    return list(reversed(out_rev))
