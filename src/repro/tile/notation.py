"""Rendering analysis trees in the paper's tile-centric notation (§4.2).

A tile at memory level ``n`` is written ``T_n = {loops}(children)``; loops
are annotated ``Sp``/``Tp`` (intra-tile binding) and fusion nodes add the
inter-tile primitive.  :func:`render_notation` produces the textual form
used throughout the paper, grouped by level — handy for reports, examples,
and debugging mapper output.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, List, Tuple

from .bindings import Binding
from .tree import AnalysisTree, FusionNode, OpTile, TileNode


def _loop_text(node: TileNode) -> str:
    parts = []
    for lp in node.loops:
        mark = "'" if lp.spatial else ""
        step = f"*{lp.step}" if lp.step != 1 else ""
        parts.append(f"{lp.dim}{mark}:{lp.count}{step}")
    return "{" + ", ".join(parts) + "}"


def render_notation(tree: AnalysisTree) -> str:
    """Render the tree as tile definitions plus binding declarations.

    Tiles are numbered ``T{level}^{index}`` in pre-order per level.  Loops
    print as ``dim:count*step`` with a prime marking spatial loops.  The
    inter-tile section lists each fusion node's binding over its children's
    tile names; intra-tile (Sp) bindings are implied by the primes.
    """
    names: Dict[int, str] = {}
    per_level: Dict[int, List[int]] = defaultdict(list)
    order: List[TileNode] = list(tree.nodes())
    for node in order:
        idx = len(per_level[node.level])
        per_level[node.level].append(idx)
        names[id(node)] = f"T{node.level}^{idx}"

    def describe(node: TileNode) -> str:
        kids = node.children_nodes()
        child_part = ("(" + ", ".join(names[id(c)] for c in kids) + ")"
                      if kids else
                      (f"<{node.op.name}>" if isinstance(node, OpTile)
                       else "()"))
        return f"{names[id(node)]} = {_loop_text(node)}{child_part}"

    lines: List[str] = [f"# {tree.name}"]
    by_level: Dict[int, List[TileNode]] = defaultdict(list)
    for node in order:
        by_level[node.level].append(node)
    for level in sorted(by_level, reverse=True):
        lines.append(f"level {level}:")
        for node in by_level[level]:
            lines.append(f"  {describe(node)}")
    fusion_lines = []
    for node in order:
        if isinstance(node, FusionNode) and len(node.children) > 1:
            kids = ", ".join(names[id(c)] for c in node.children)
            fusion_lines.append(f"  {node.binding.value}({kids})")
    if fusion_lines:
        lines.append("inter-tile:")
        lines.extend(fusion_lines)
    spatial = [f"Sp({lp.dim}@{names[id(node)]})"
               for node in order for lp in node.loops if lp.spatial]
    if spatial:
        lines.append("intra-tile:")
        lines.append("  " + ", ".join(spatial))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_TILE_RE = re.compile(
    r"^\s*(T(?P<level>\d+)\^(?P<index>\d+))\s*=\s*"
    r"\{(?P<loops>[^}]*)\}"
    r"(?:\((?P<children>[^)]*)\)|<(?P<op>\w+)>)\s*$")
_LOOP_RE = re.compile(
    r"^(?P<dim>\w+)(?P<prime>')?:(?P<count>\d+)(?:\*(?P<step>\d+))?$")
_BINDING_RE = re.compile(r"^\s*(?P<binding>\w+)\((?P<tiles>[^)]*)\)\s*$")


def parse_notation(text: str, workload) -> AnalysisTree:
    """Parse a :func:`render_notation` string back into an analysis tree.

    The notation is self-contained up to operator bodies, which are
    resolved against ``workload`` by name.  Round-tripping is exact:
    ``parse_notation(render_notation(t), t.workload)`` reproduces the
    tree's loops, levels, children, and bindings.
    """
    from ..errors import NotationError
    from ..ir import Workload
    from .bindings import parse_binding
    from .loops import Loop

    specs: Dict[str, dict] = {}
    bindings: Dict[str, "Binding"] = {}
    section = "tiles"
    name = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            name = line.lstrip("# ").strip() or None
            continue
        if line.startswith("level "):
            section = "tiles"
            continue
        if line.startswith("inter-tile"):
            section = "inter"
            continue
        if line.startswith("intra-tile"):
            section = "intra"
            continue
        if section == "tiles":
            m = _TILE_RE.match(line)
            if not m:
                raise NotationError(f"cannot parse tile line: {line!r}")
            loops = []
            loop_text = m.group("loops").strip()
            if loop_text:
                for part in loop_text.split(","):
                    lm = _LOOP_RE.match(part.strip())
                    if not lm:
                        raise NotationError(
                            f"cannot parse loop {part.strip()!r}")
                    loops.append(Loop(
                        lm.group("dim"), int(lm.group("count")),
                        int(lm.group("step") or 1),
                        spatial=lm.group("prime") is not None))
            children_text = m.group("children")
            children = ([c.strip() for c in children_text.split(",")
                         if c.strip()] if children_text else [])
            specs[m.group(1)] = {
                "level": int(m.group("level")),
                "loops": loops,
                "children": children,
                "op": m.group("op"),
            }
        elif section == "inter":
            m = _BINDING_RE.match(line)
            if not m:
                raise NotationError(f"cannot parse binding line: {line!r}")
            binding = parse_binding(m.group("binding"))
            for tile_name in m.group("tiles").split(","):
                bindings[tile_name.strip()] = binding
        # intra-tile section is informational (primes carry Sp already)

    if not specs:
        raise NotationError("no tile definitions found")
    referenced = {c for spec in specs.values() for c in spec["children"]}
    roots = [t for t in specs if t not in referenced]
    if len(roots) != 1:
        raise NotationError(f"expected one root tile, found {roots}")

    built: Dict[str, TileNode] = {}

    def build(tile_name: str) -> TileNode:
        if tile_name in built:
            raise NotationError(f"tile {tile_name!r} used twice")
        spec = specs[tile_name]
        if spec["op"] is not None:
            node: TileNode = OpTile(workload.operator(spec["op"]),
                                    spec["loops"], spec["level"])
        else:
            kids = [build(c) for c in spec["children"]]
            if (len(kids) == 1 and isinstance(kids[0], OpTile)
                    and all(lp.dim in kids[0].op.dims
                            for lp in spec["loops"])):
                node = OpTile(kids[0].op, spec["loops"], spec["level"],
                              child=kids[0])
            else:
                first_child = specs[tile_name]["children"][0]
                binding = bindings.get(first_child, Binding.SEQ)
                node = FusionNode(spec["loops"], spec["level"], kids,
                                  binding=binding)
        built[tile_name] = node
        return node

    root = build(roots[0])
    return AnalysisTree(workload, root, name=name)
