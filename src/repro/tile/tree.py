"""The analysis tree: the tree form of the tile-centric notation (§4.2).

A fusion dataflow is a tree of *tile nodes*.  Two node kinds exist:

* :class:`OpTile` — one tiling level of a single operator.  Chains of
  OpTiles (each one memory level down) end in a *leaf* (no child), which
  is the innermost compute tile executed on the PE array.
* :class:`FusionNode` — a tile whose loops iterate over several children
  (sub-tiles of different operators, or nested fusion groups), carrying an
  inter-tile :class:`~repro.tile.bindings.Binding`.

Every node carries a memory ``level`` — an index into the architecture's
levels — identifying the buffer in which the node's per-iteration working
set is staged.  Levels never increase from the root (DRAM side) toward the
leaves (registers).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import TreeValidationError
from ..ir import Operator, Workload
from .bindings import Binding
from .loops import Loop, product_of_counts, split_spatial


class TileNode:
    """Base class for analysis-tree nodes."""

    def __init__(self, loops: Sequence[Loop], level: int,
                 name: Optional[str] = None):
        if level < 0:
            raise TreeValidationError(f"node level must be >= 0, got {level}")
        self._loops: Tuple[Loop, ...] = tuple(loops)
        self._split: Optional[Tuple[List[Loop], List[Loop], int, int]] = None
        self.level = int(level)
        self.name = name
        self.parent: Optional["TileNode"] = None

    @property
    def loops(self) -> Tuple[Loop, ...]:
        return self._loops

    @loops.setter
    def loops(self, loops: Sequence[Loop]) -> None:
        # Mutating a node's loops in place (mapper moves on a live tree)
        # must drop the cached temporal/spatial split.
        self._loops = tuple(loops)
        self._split = None

    # -- structure ------------------------------------------------------
    def children_nodes(self) -> Tuple["TileNode", ...]:
        raise NotImplementedError

    def is_leaf(self) -> bool:
        return not self.children_nodes()

    def walk(self) -> Iterator["TileNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children_nodes():
            yield from child.walk()

    def leaves(self) -> Iterator["OpTile"]:
        for node in self.walk():
            if node.is_leaf():
                assert isinstance(node, OpTile)
                yield node

    def ancestors(self) -> Iterator["TileNode"]:
        """Parent, grandparent, ... up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def subtree_ops(self) -> Tuple[Operator, ...]:
        """Distinct operators appearing in this subtree, leaf order."""
        seen: Dict[str, Operator] = {}
        for leaf in self.leaves():
            seen.setdefault(leaf.op.name, leaf.op)
        return tuple(seen.values())

    # -- loops ----------------------------------------------------------
    def _splits(self) -> Tuple[List[Loop], List[Loop], int, int]:
        """(temporal, spatial, temporal trip, spatial trip), memoized.

        The split is asked for by every analysis that touches the node
        (walk building, NumPE, executions); computing it once per loop
        assignment instead of per query is a measurable win on the
        mapper's hot path.  The ``loops`` setter clears the memo.
        """
        split = self._split
        if split is None:
            t, s = split_spatial(self._loops)
            split = self._split = (t, s, product_of_counts(t),
                                   product_of_counts(s))
        return split

    @property
    def temporal_loops(self) -> List[Loop]:
        return self._splits()[0]

    @property
    def spatial_loops(self) -> List[Loop]:
        return self._splits()[1]

    @property
    def temporal_trip_count(self) -> int:
        return self._splits()[2]

    @property
    def spatial_trip_count(self) -> int:
        return self._splits()[3]

    @property
    def trip_count(self) -> int:
        split = self._splits()
        return split[2] * split[3]

    def loops_over(self, dim: str) -> List[Loop]:
        return [lp for lp in self.loops if lp.dim == dim]

    def label(self) -> str:
        return self.name or self.__class__.__name__


class OpTile(TileNode):
    """A tiling level of a single operator.

    The ``child`` (if any) is the next tiling level down (a lower or equal
    memory level); a leaf OpTile represents the intrinsic compute tile
    whose loops are executed directly by the PE array.
    """

    def __init__(self, op: Operator, loops: Sequence[Loop], level: int,
                 child: Optional[TileNode] = None,
                 name: Optional[str] = None):
        super().__init__(loops, level, name)
        self.op = op
        self.child = child
        if child is not None:
            if child.parent is not None:
                raise TreeValidationError(
                    f"node {child.label()!r} already has a parent")
            child.parent = self
        for lp in self.loops:
            if lp.dim not in op.dims:
                raise TreeValidationError(
                    f"OpTile for {op.name!r}: loop dim {lp.dim!r} is not a "
                    f"dim of the operator")

    def children_nodes(self) -> Tuple[TileNode, ...]:
        return (self.child,) if self.child is not None else ()

    def label(self) -> str:
        return self.name or f"{self.op.name}@L{self.level}"

    def __repr__(self) -> str:
        return f"OpTile({self.label()}, loops={list(self.loops)})"


class FusionNode(TileNode):
    """A tile over several children with an inter-tile binding.

    Children execute in list order within each iteration of the node's
    loops (for ``Pipe`` the order is the pipeline order).  Loops at a
    fusion node iterate dims shared by the children's operators.
    """

    def __init__(self, loops: Sequence[Loop], level: int,
                 children: Sequence[TileNode],
                 binding: Binding = Binding.SEQ,
                 name: Optional[str] = None):
        super().__init__(loops, level, name)
        if len(children) < 1:
            raise TreeValidationError("FusionNode needs at least one child")
        self.children: Tuple[TileNode, ...] = tuple(children)
        self.binding = binding
        for child in self.children:
            if child.parent is not None:
                raise TreeValidationError(
                    f"node {child.label()!r} already has a parent")
            child.parent = self

    def children_nodes(self) -> Tuple[TileNode, ...]:
        return self.children

    def label(self) -> str:
        return self.name or f"{self.binding.value}@L{self.level}"

    def __repr__(self) -> str:
        kids = ", ".join(c.label() for c in self.children)
        return f"FusionNode({self.label()}, [{kids}])"


class AnalysisTree:
    """A complete fusion-dataflow description: workload + tile tree.

    Construction wires parent pointers (done by the nodes) and indexes the
    leaf of every operator.  Structural validation lives in
    :mod:`repro.tile.validate` and is invoked by the model before analysis;
    construct-then-validate keeps mappers free to build partial trees.
    """

    def __init__(self, workload: Workload, root: TileNode,
                 name: Optional[str] = None):
        self.workload = workload
        self.root = root
        self.name = name or f"tree({workload.name})"
        self._nodes: Optional[Tuple[TileNode, ...]] = None
        self._paths: Dict[str, List[TileNode]] = {}
        self._leaf_of: Dict[str, OpTile] = {}
        for leaf in root.leaves():
            if leaf.op.name in self._leaf_of:
                raise TreeValidationError(
                    f"operator {leaf.op.name!r} appears in more than one "
                    f"leaf tile")
            self._leaf_of[leaf.op.name] = leaf
        missing = [op.name for op in workload.operators
                   if op.name not in self._leaf_of]
        if missing:
            raise TreeValidationError(
                f"tree {self.name!r} is missing leaf tiles for operators "
                f"{missing}")

    # ------------------------------------------------------------------
    def nodes(self) -> Tuple[TileNode, ...]:
        """All nodes, pre-order.  Cached: tree *membership* is fixed at
        construction (loop/factor mutations change node contents, never
        the node set — splicing nodes requires a new AnalysisTree)."""
        if self._nodes is None:
            self._nodes = tuple(self.root.walk())
        return self._nodes

    def leaf(self, op_name: str) -> OpTile:
        try:
            return self._leaf_of[op_name]
        except KeyError:
            raise TreeValidationError(
                f"tree {self.name!r} has no leaf for operator {op_name!r}"
            ) from None

    def op_path(self, op_name: str) -> List[TileNode]:
        """Nodes from the root down to (and including) the op's leaf.

        The returned list is cached and shared — treat it as read-only.
        """
        path = self._paths.get(op_name)
        if path is None:
            leaf = self.leaf(op_name)
            path = [leaf] + list(leaf.ancestors())
            path.reverse()
            self._paths[op_name] = path
        return path

    def tensor_home(self, tensor_name: str) -> Optional[TileNode]:
        """The node whose buffer level an intermediate tensor lives at.

        This is the deepest node whose subtree contains the producer and
        every consumer of the tensor — the least-common-ancestor tile of
        §5.1.2.  Returns ``None`` for external inputs/outputs (their home
        is DRAM, above the tree).
        """
        producer = self.workload.producer(tensor_name)
        consumers = self.workload.consumers(tensor_name)
        if producer is None or not consumers:
            return None
        paths = [self.op_path(producer.name)]
        paths += [self.op_path(c.name) for c in consumers]
        home: Optional[TileNode] = None
        for nodes in zip(*paths):
            first = nodes[0]
            if all(n is first for n in nodes[1:]):
                home = first
            else:
                break
        return home

    def render(self) -> str:
        """An indented text rendering of the tree (for debugging/reports)."""
        lines: List[str] = []

        def visit(node: TileNode, depth: int) -> None:
            loops = " ".join(repr(lp) for lp in node.loops) or "-"
            binding = (f" [{node.binding.value}]"
                       if isinstance(node, FusionNode) else "")
            lines.append(f"{'  ' * depth}{node.label()}{binding}: {loops}")
            for child in node.children_nodes():
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"AnalysisTree({self.name})"
