"""Per-access energy tables (Accelergy substitute).

The paper delegates energy estimation to Accelergy/Timeloop lookup tables
(§5.3).  We embed representative 22 nm-class constants: register-file access
is cheap, SRAM access energy grows roughly with the square root of capacity
(longer bitlines/wordlines), and DRAM access dominates everything.  The
absolute values are not the point — the *ratios* drive every energy result
in the paper (Fig. 8b, Fig. 13) and these ratios match the published
Accelergy characterizations within a small factor.
"""

from __future__ import annotations

import math

#: Energy per word for a register-file access (pJ).
REGISTER_ENERGY_PJ = 0.12

#: Energy per word for a DRAM access (pJ).
DRAM_ENERGY_PJ = 200.0

#: Energy per MAC operation (pJ), 16-bit operands.
MAC_ENERGY_PJ = 0.56

#: Reference SRAM: a 32 KB buffer costs this much per word (pJ).
_SRAM_REF_BYTES = 32 * 1024
_SRAM_REF_ENERGY_PJ = 2.0


def sram_access_energy_pj(capacity_bytes: int) -> float:
    """Energy per word for an SRAM of the given capacity.

    Scales with the square root of capacity relative to a 32 KB reference
    array, the standard first-order CACTI/Accelergy behaviour.  This is what
    makes Fig. 13's observation reproducible: enlarging L1 from 200 KB to
    1 MB raises the per-access cost so L1 dominates the energy breakdown.
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    return _SRAM_REF_ENERGY_PJ * math.sqrt(capacity_bytes / _SRAM_REF_BYTES)


def level_energy_pj(name: str, capacity_bytes) -> float:
    """Default per-word access energy for a memory level.

    ``None`` capacity (DRAM) gets the DRAM constant; the innermost
    register-class level (capacity under 64 KB named "Reg"/"L0") gets the
    register constant; everything else is size-scaled SRAM.
    """
    if capacity_bytes is None:
        return DRAM_ENERGY_PJ
    if name.lower() in ("reg", "l0", "rf") :
        return REGISTER_ENERGY_PJ
    return sram_access_energy_pj(capacity_bytes)
