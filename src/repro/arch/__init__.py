"""Architecture specifications: memory hierarchies, PE pools, presets."""

from .energy import (DRAM_ENERGY_PJ, MAC_ENERGY_PJ, REGISTER_ENERGY_PJ,
                     level_energy_pj, sram_access_energy_pj)
from .presets import (PRESETS, by_name, cloud, edge, gpu_like,
                      validation_accelerator)
from .spec import Architecture, MemoryLevel

__all__ = [
    "Architecture", "MemoryLevel",
    "PRESETS", "by_name", "cloud", "edge", "gpu_like",
    "validation_accelerator",
    "DRAM_ENERGY_PJ", "MAC_ENERGY_PJ", "REGISTER_ENERGY_PJ",
    "level_energy_pj", "sram_access_energy_pj",
]
