"""Accelerator architecture specifications.

An :class:`Architecture` is a hierarchy of memory levels — index 0 is the
innermost on-chip buffer (registers / L0 next to the PEs) and the last index
is off-chip DRAM — plus compute resources (a pool of PEs, optionally a
separate vector unit pool for non-MAC operators, as in the paper's
TPU-derived validation accelerator).

Each memory level may be replicated spatially (``fanout``): the paper's
Cloud accelerator has one DRAM, 4 cores each with an L2, and 16 sub-cores
per core each with an L1 (fanout 1 / 4 / 64).  Capacities and bandwidths
are *per instance*; the analysis multiplies by the number of instances a
mapping actually occupies.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..errors import ArchitectureError


class MemoryLevel:
    """One level of the memory hierarchy.

    Parameters
    ----------
    name:
        Level name ("Reg", "L1", "L2", "DRAM", ...), unique per architecture.
    capacity_bytes:
        Usable capacity of one instance; ``None`` means unbounded (DRAM).
    bandwidth_gbs:
        Bandwidth of one instance in GB/s.
    fanout:
        Number of parallel instances of this level in the whole machine.
    read_energy_pj / write_energy_pj:
        Energy per *word* access (word size set by the workload's tensors).
    """

    __slots__ = ("name", "capacity_bytes", "bandwidth_gbs", "fanout",
                 "read_energy_pj", "write_energy_pj")

    def __init__(self, name: str, capacity_bytes: Optional[int],
                 bandwidth_gbs: float, fanout: int = 1,
                 read_energy_pj: float = 1.0,
                 write_energy_pj: Optional[float] = None):
        if not name:
            raise ArchitectureError("memory level name must be non-empty")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ArchitectureError(
                f"level {name!r}: capacity must be positive or None")
        if bandwidth_gbs <= 0:
            raise ArchitectureError(f"level {name!r}: bandwidth must be positive")
        if fanout <= 0:
            raise ArchitectureError(f"level {name!r}: fanout must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.bandwidth_gbs = float(bandwidth_gbs)
        self.fanout = int(fanout)
        self.read_energy_pj = float(read_energy_pj)
        self.write_energy_pj = float(
            write_energy_pj if write_energy_pj is not None else read_energy_pj)

    def bytes_per_cycle(self, frequency_ghz: float) -> float:
        """Per-instance bandwidth expressed in bytes per clock cycle."""
        return self.bandwidth_gbs / frequency_ghz

    def with_(self, **overrides) -> "MemoryLevel":
        """A copy of this level with some fields replaced."""
        fields = {
            "name": self.name,
            "capacity_bytes": self.capacity_bytes,
            "bandwidth_gbs": self.bandwidth_gbs,
            "fanout": self.fanout,
            "read_energy_pj": self.read_energy_pj,
            "write_energy_pj": self.write_energy_pj,
        }
        fields.update(overrides)
        return MemoryLevel(**fields)

    def __repr__(self) -> str:
        cap = ("inf" if self.capacity_bytes is None
               else f"{self.capacity_bytes / 1024:.0f}KB")
        return (f"MemoryLevel({self.name}: {cap} x{self.fanout}, "
                f"{self.bandwidth_gbs:g}GB/s)")


class Architecture:
    """A complete spatial accelerator specification.

    Parameters
    ----------
    name:
        Specification name ("Edge", "Cloud", ...).
    levels:
        Memory levels ordered innermost (index 0) to outermost (DRAM last).
        Fanouts must be non-increasing from inner to outer levels.
    pe_count:
        Total number of MAC PEs in the whole machine.
    vector_pe_count:
        Total vector lanes for non-MAC operators; defaults to ``pe_count``.
    frequency_ghz:
        Clock frequency used to convert bandwidths to bytes/cycle.
    mac_energy_pj:
        Energy per MAC operation.
    """

    def __init__(self, name: str, levels: Sequence[MemoryLevel],
                 pe_count: int, vector_pe_count: Optional[int] = None,
                 frequency_ghz: float = 1.0, mac_energy_pj: float = 0.56):
        if len(levels) < 2:
            raise ArchitectureError(
                f"architecture {name!r} needs at least an on-chip level "
                f"and DRAM")
        names = [lv.name for lv in levels]
        if len(set(names)) != len(names):
            raise ArchitectureError(
                f"architecture {name!r} has duplicate level names")
        for inner, outer in zip(levels, levels[1:]):
            if inner.fanout < outer.fanout:
                raise ArchitectureError(
                    f"architecture {name!r}: fanout must not increase "
                    f"outward ({inner.name}={inner.fanout} < "
                    f"{outer.name}={outer.fanout})")
        if levels[-1].capacity_bytes is not None:
            raise ArchitectureError(
                f"architecture {name!r}: outermost level must be unbounded "
                f"(DRAM)")
        if pe_count <= 0:
            raise ArchitectureError(f"architecture {name!r}: pe_count must "
                                    f"be positive")
        if frequency_ghz <= 0:
            raise ArchitectureError(f"architecture {name!r}: frequency must "
                                    f"be positive")
        self.name = name
        self.levels: Tuple[MemoryLevel, ...] = tuple(levels)
        self.pe_count = int(pe_count)
        self.vector_pe_count = int(
            vector_pe_count if vector_pe_count is not None else pe_count)
        self.frequency_ghz = float(frequency_ghz)
        self.mac_energy_pj = float(mac_energy_pj)
        self._index: Dict[str, int] = {lv.name: i for i, lv in
                                       enumerate(self.levels)}

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def dram(self) -> MemoryLevel:
        """The outermost (off-chip) level."""
        return self.levels[-1]

    @property
    def dram_index(self) -> int:
        return len(self.levels) - 1

    @property
    def innermost(self) -> MemoryLevel:
        return self.levels[0]

    def level(self, index: int) -> MemoryLevel:
        try:
            return self.levels[index]
        except IndexError:
            raise ArchitectureError(
                f"architecture {self.name!r} has no level {index}") from None

    def level_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ArchitectureError(
                f"architecture {self.name!r} has no level named {name!r}"
            ) from None

    def on_chip_levels(self) -> Tuple[MemoryLevel, ...]:
        """All levels except DRAM."""
        return self.levels[:-1]

    def compute_units(self, kind: str) -> int:
        """PE pool size for operators of ``kind`` ("mac" vs vector ops)."""
        return self.pe_count if kind == "mac" else self.vector_pe_count

    def with_(self, **overrides) -> "Architecture":
        """A copy with some top-level fields replaced (levels included)."""
        fields = {
            "name": self.name,
            "levels": self.levels,
            "pe_count": self.pe_count,
            "vector_pe_count": self.vector_pe_count,
            "frequency_ghz": self.frequency_ghz,
            "mac_energy_pj": self.mac_energy_pj,
        }
        fields.update(overrides)
        return Architecture(**fields)

    def with_level(self, name: str, **overrides) -> "Architecture":
        """A copy with one memory level's fields replaced."""
        idx = self.level_index(name)
        levels = list(self.levels)
        levels[idx] = levels[idx].with_(**overrides)
        return self.with_(levels=tuple(levels))

    def __repr__(self) -> str:
        lv = " > ".join(repr(l) for l in reversed(self.levels))
        return (f"Architecture({self.name}: {self.pe_count} PEs @ "
                f"{self.frequency_ghz:g}GHz; {lv})")
