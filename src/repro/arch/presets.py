"""Ready-made architecture specifications from the paper.

* :func:`edge` and :func:`cloud` — Table 4 of the paper.
* :func:`validation_accelerator` — the TPU-derived accelerator of §7.1
  (4 cores, 16x16 MM array + 16x3 vector array per core, 384 KB/core,
  25.6 GB/s DRAM, 400 MHz, 16-bit words).
* :func:`gpu_like` — an A100-class specification used for the Table 8
  substitution (see DESIGN.md).

All bandwidths listed as aggregate numbers in the paper are divided evenly
over the level's fanout, because each level instance serves one spatial
partition of the machine.
"""

from __future__ import annotations

from .energy import (DRAM_ENERGY_PJ, MAC_ENERGY_PJ, REGISTER_ENERGY_PJ,
                     sram_access_energy_pj)
from .spec import Architecture, MemoryLevel

KB = 1024
MB = 1024 * 1024


def _reg(fanout: int, capacity=64 * KB, bandwidth_gbs=3000.0) -> MemoryLevel:
    return MemoryLevel("Reg", capacity, bandwidth_gbs, fanout=fanout,
                       read_energy_pj=REGISTER_ENERGY_PJ)


def _sram(name: str, capacity: int, bandwidth_gbs: float,
          fanout: int) -> MemoryLevel:
    return MemoryLevel(name, capacity, bandwidth_gbs, fanout=fanout,
                       read_energy_pj=sram_access_energy_pj(capacity))


def _dram(bandwidth_gbs: float) -> MemoryLevel:
    return MemoryLevel("DRAM", None, bandwidth_gbs, fanout=1,
                       read_energy_pj=DRAM_ENERGY_PJ)


def edge() -> Architecture:
    """The Edge accelerator of Table 4.

    32x32 PEs, 4 cores each with a 4 MB L1 (aggregate L1 bandwidth
    1.2 TB/s per §7.2), 60 GB/s DRAM.
    """
    cores = 4
    return Architecture(
        name="Edge",
        levels=(
            _reg(fanout=cores),
            _sram("L1", 4 * MB, 1200.0 / cores, fanout=cores),
            _dram(60.0),
        ),
        pe_count=32 * 32,
        vector_pe_count=32 * 32 // 5,
        frequency_ghz=1.0,
        mac_energy_pj=MAC_ENERGY_PJ,
    )


def cloud() -> Architecture:
    """The Cloud accelerator of Table 4.

    256x256 PEs, 4 cores x 16 sub-cores.  Each core has a 40 MB L2; the
    20 MB of L1 per core is split over its 16 sub-cores.  Aggregate
    bandwidths (9.6 TB/s L1, 1.9 TB/s L2 per §7.3) are divided per
    instance; DRAM is 384 GB/s.
    """
    cores = 4
    sub_cores = cores * 16
    return Architecture(
        name="Cloud",
        levels=(
            _reg(fanout=sub_cores),
            _sram("L1", 20 * MB // 16, 9600.0 / sub_cores, fanout=sub_cores),
            _sram("L2", 40 * MB, 1900.0 / cores, fanout=cores),
            _dram(384.0),
        ),
        pe_count=256 * 256,
        vector_pe_count=256 * 256 // 5,
        frequency_ghz=1.0,
        mac_energy_pj=MAC_ENERGY_PJ,
    )


def validation_accelerator() -> Architecture:
    """The TPU-derived accelerator used for model validation (§7.1).

    Four cores; per core one 16x16 matrix array and one 16x3 vector array
    plus a 384 KB buffer.  25.6 GB/s DRAM, 400 MHz, 16-bit words.
    """
    cores = 4
    return Architecture(
        name="TPU-derived",
        levels=(
            _reg(fanout=cores, capacity=16 * KB, bandwidth_gbs=400.0),
            _sram("L1", 384 * KB, 102.4, fanout=cores),
            _dram(25.6),
        ),
        pe_count=cores * 16 * 16,
        vector_pe_count=cores * 16 * 3,
        frequency_ghz=0.4,
        mac_energy_pj=MAC_ENERGY_PJ,
    )


def gpu_like() -> Architecture:
    """An A100-class specification for the Table 8 substitution.

    108 SMs each with 192 KB of shared memory (the L1 role), a 40 MB L2,
    and ~1.5 TB/s HBM.  Compute is modeled as a large MAC pool matching
    A100's half-precision tensor throughput at 1.41 GHz.
    """
    sms = 108
    return Architecture(
        name="GPU-like",
        levels=(
            _reg(fanout=sms, capacity=256 * KB, bandwidth_gbs=2000.0),
            _sram("L1", 192 * KB, 19400.0 / sms, fanout=sms),
            _sram("L2", 40 * MB, 7000.0, fanout=1),
            _dram(1555.0),
        ),
        pe_count=sms * 2048,
        vector_pe_count=sms * 256,
        frequency_ghz=1.41,
        mac_energy_pj=MAC_ENERGY_PJ,
    )


PRESETS = {
    "edge": edge,
    "cloud": cloud,
    "validation": validation_accelerator,
    "gpu": gpu_like,
}


def by_name(name: str) -> Architecture:
    """Look up a preset architecture by registry name."""
    try:
        return PRESETS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown architecture preset {name!r}; "
            f"choose from {sorted(PRESETS)}") from None
