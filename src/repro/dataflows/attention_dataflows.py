"""Named self-attention dataflows (Table 5 and §7.5 of the paper).

Each dataflow is a *template*: ``build(workload, arch, factors)`` returns
an analysis tree.  The templates transcribe the paper's descriptions:

* **Layerwise** — no fusion; each operator mapped to the whole machine in
  turn, intermediates staged through DRAM.
* **Uni-pipe** — pipeline ``Q x K`` and the softmax without tiling
  batch/heads spatially (one core active); ``A = L x V`` runs separately.
* **FLAT-MGran/BGran/HGran/RGran** — fuse all stages and tile nothing /
  batch / batch+heads / batch+heads+rows (§7.5's granularity family; HGran
  and RGran are the Table 5 rows).
* **Chimera** — fuse all stages and tile every shared dim, including the
  key/column dimension, executing stages in turns on a shared buffer.
* **TileFlow** — the dataflow the paper's mapper discovers (§7.2): all
  three stages pipelined with all loops tiled.

Workloads may use the compact 3-operator attention (``softmax`` as one
operator) or the expanded 7-operator form (§7.2); the builders handle
both by classifying operators by kind.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..arch import Architecture
from ..errors import MappingError
from ..ir import Operator, Workload
from ..tile.bindings import Binding
from ..tile.loops import Loop, spatial, temporal
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from .builders import (check_divides, floor_divisor, leaf_extent,
                       leaf_loops, mid_loops, near_divisor, near_tile,
                       tile_choices)


@dataclass(frozen=True)
class AttentionGeometry:
    """Shape parameters extracted from an attention workload."""

    batch: int
    heads: int
    rows: int      # m (query sequence length)
    cols: int      # l (key sequence length)
    depth: int     # k / n (per-head feature dim)

    @staticmethod
    def of(workload: Workload) -> "AttentionGeometry":
        qk = workload.operator("qk")
        return AttentionGeometry(
            batch=qk.dims["b"], heads=qk.dims["h"], rows=qk.dims["m"],
            cols=qk.dims["l"], depth=qk.dims["k"])


def _is_attention(workload: Workload) -> bool:
    names = {op.name for op in workload.operators}
    return "qk" in names and "av" in names


def _leaf_config(op: Operator, ms: int, ls: int, ns: int, vs: int
                 ) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(spatial extents, temporal extents) of one PE-array tile."""
    if op.name == "qk":
        return {"m": ms, "l": ls}, {"k": op.dims["k"]}
    if op.name == "av":
        return {"m": ms, "n": ns}, {"l": ls}
    # softmax family (single-op or expanded): vector tiles over one
    # row-block, sweeping the key dimension temporally.
    sp = {"m": vs}
    tp = {"l": ls} if "l" in op.dims else {}
    return sp, tp


class _AttentionBuilder:
    """Shared machinery for the attention templates."""

    def __init__(self, workload: Workload, arch: Architecture,
                 concurrent_mac_chains: int = 1,
                 leaf_units: Optional[int] = None):
        if not _is_attention(workload):
            raise MappingError(
                f"workload {workload.name!r} is not a self-attention layer")
        self.workload = workload
        self.arch = arch
        self.geom = AttentionGeometry.of(workload)
        self.top_level = arch.num_levels - 2  # outermost on-chip level
        self.cores = arch.level(self.top_level).fanout
        self.sub_cores = (arch.level(1).fanout // self.cores
                          if self.top_level > 1 else 1)
        # PE budget for one matmul leaf: the pool divided over the spatial
        # units the dataflow occupies and the concurrently pipelined matmul
        # stages.  Uni-pipe passes leaf_units=cores: its one active
        # partition is a full core, however many sub-cores that spans.
        units = leaf_units if leaf_units is not None else arch.level(1).fanout
        budget = max(4, arch.pe_count // units // concurrent_mac_chains)
        side = max(2, int(math.sqrt(budget)))
        self.ms = floor_divisor(self.geom.rows, side)
        self.ls = floor_divisor(self.geom.cols, max(2, budget // self.ms))
        self.ns = floor_divisor(self.geom.depth, max(2, budget // self.ms))
        # Vector lanes for the softmax family: when the softmax operators
        # run concurrently (Pipe), each gets a slice of the vector pool.
        n_vec = max(1, sum(1 for op in workload.operators
                           if op.kind != "mac"))
        concurrent_vec = n_vec if concurrent_mac_chains > 1 else 1
        vec_budget = max(1, arch.vector_pe_count // units // concurrent_vec)
        self.vs = floor_divisor(self.ms, vec_budget)

    # ------------------------------------------------------------------
    def chain(self, op: Operator, tile: Mapping[str, int], level: int,
              inner_spatial: Optional[Tuple[str, int]] = None) -> OpTile:
        """Operator chain: one mid tile at ``level`` over PE-array leaves.

        ``inner_spatial=(dim, count)`` adds a spatial loop at the chain's
        top — the sub-core distribution on Cloud-like architectures.  The
        chain then covers ``count * tile[dim]`` along that dim.
        """
        sp, tp = _leaf_config(op, self.ms, self.ls, self.ns, self.vs)
        leaf = OpTile(op, leaf_loops(op, sp, tp), level=0)
        loops = mid_loops(op, tile, sp, tp)
        if inner_spatial is not None and inner_spatial[0] in op.dims:
            d, count = inner_spatial
            if count > 1:
                loops = [spatial(d, count, tile.get(d, op.dims[d]))] + loops
        return OpTile(op, loops, level=level, child=leaf)

    def full_tile(self, overrides: Mapping[str, int]) -> Dict[str, int]:
        """Per-fusion-iteration extents: full dims unless overridden."""
        g = self.geom
        tile = {"b": g.batch, "h": g.heads, "m": g.rows, "l": g.cols,
                "k": g.depth, "n": g.depth}
        tile.update(overrides)
        return tile

    def fusion_loops(self, tile: Mapping[str, int],
                     spatial_dim: Optional[str], spatial_count: int,
                     order: Tuple[str, ...] = ("b", "h", "m", "l")
                     ) -> List[Loop]:
        """Outer loops of a fusion node for the given tiling."""
        g = self.geom
        sizes = {"b": g.batch, "h": g.heads, "m": g.rows, "l": g.cols}
        loops: List[Loop] = []
        for d in order:
            size = sizes[d]
            if d == spatial_dim and spatial_count > 1:
                check_divides(spatial_count, size, f"spatial split of {d!r}")
                block = size // spatial_count
                loops.append(spatial(d, spatial_count, block))
                size = block
            step = tile.get(d, size)
            check_divides(step, size, f"fusion tiling of {d!r}")
            if size // step > 1:
                loops.append(temporal(d, size // step, step))
        return loops

    def pick_spatial(self, tileable: Tuple[str, ...], units: int,
                     tile: Mapping[str, int] = ()) -> Tuple[Optional[str], int]:
        """Choose a dim and split count to spread across ``units``.

        The split is a divisor of the dim's *block count* at the given
        tiling (so spatial and temporal loops compose exactly), chosen as
        close to the number of hardware units as the shape allows.
        """
        g = self.geom
        tile = dict(tile)
        sizes = {"b": g.batch, "h": g.heads, "m": g.rows, "l": g.cols}
        best: Tuple[Optional[str], int] = (None, 1)
        for d in tileable:
            blocks = sizes[d] // tile.get(d, sizes[d])
            if blocks <= 0:
                continue
            split = floor_divisor(blocks, units)
            if split > best[1]:
                best = (d, split)
        return best


# ----------------------------------------------------------------------
# Templates
# ----------------------------------------------------------------------
def layerwise(workload: Workload, arch: Architecture,
              factors: Mapping[str, int] = ()) -> AnalysisTree:
    """No fusion: map one operator to the hardware at a time.

    Every intermediate tensor's home is the DRAM-level root, so the
    softmax inputs/outputs stream through DRAM — the baseline all fusion
    dataflows are normalized against.
    """
    factors = dict(factors)
    b = _AttentionBuilder(workload, arch)
    g = b.geom
    m_t = factors.get("m_tile", near_tile(g.rows, b.ms, 4 * b.ms))
    l_t = factors.get("l_tile", near_tile(g.cols, b.ls, 4 * b.ls))
    chains: List[TileNode] = []
    for op in workload.operators:
        tile = b.full_tile({"b": 1, "h": 1, "m": m_t, "l": l_t})
        chain = b.chain(op, tile, level=1)
        sdim, scount = b.pick_spatial(("h", "m"), b.cores, tile)
        top_loops = b.fusion_loops(tile, sdim, scount)
        top = OpTile(op, _op_loops(op, top_loops), level=b.top_level,
                     child=chain)
        chains.append(top)
    root = FusionNode([], level=arch.dram_index, children=chains,
                      binding=Binding.SEQ, name="layerwise")
    return AnalysisTree(workload, root, name=f"layerwise[{workload.name}]")


def _op_loops(op: Operator, loops: List[Loop]) -> List[Loop]:
    """Restrict shared loops to the dims an operator actually has."""
    return [lp for lp in loops if lp.dim in op.dims]


def unipipe(workload: Workload, arch: Architecture,
            factors: Mapping[str, int] = ()) -> AnalysisTree:
    """Pipeline QK and softmax without spatial tiling of batch/heads.

    The fused group iterates (b, h) sequentially on a single spatial
    partition — the paper notes ~25% spatial utilization on Cloud — while
    ``av`` runs afterwards with the full machine.
    """
    factors = dict(factors)
    b = _AttentionBuilder(workload, arch, concurrent_mac_chains=1)
    g = b.geom
    fused_ops = [op for op in workload.operators if op.name != "av"]
    tile = b.full_tile({"b": 1, "h": 1})
    m_t = factors.get("m_tile", g.rows)
    tile["m"] = m_t
    children = [b.chain(op, tile, level=b.top_level - 1 or 1)
                for op in fused_ops]
    floops = b.fusion_loops(tile, spatial_dim=None, spatial_count=1)
    fused = FusionNode(floops, level=b.top_level, children=children,
                       binding=Binding.PIPE, name="unipipe-fused")
    av = workload.operator("av")
    av_tile = b.full_tile({"h": 1, "m": near_tile(g.rows, b.ms, 4 * b.ms)})
    av_chain = b.chain(av, av_tile, level=1)
    sdim, scount = b.pick_spatial(("h", "m"), b.cores, av_tile)
    av_top = OpTile(av, _op_loops(av, b.fusion_loops(av_tile, sdim, scount)),
                    level=b.top_level, child=av_chain)
    root = FusionNode([], level=arch.dram_index, children=[fused, av_top],
                      binding=Binding.SEQ, name="unipipe")
    return AnalysisTree(workload, root, name=f"unipipe[{workload.name}]")


def _fused_all_stages(workload: Workload, arch: Architecture, name: str,
                      binding: Binding, tile_over: Mapping[str, int],
                      concurrent_mac: int,
                      spatial_dims: Tuple[str, ...]) -> AnalysisTree:
    """Common shape of the FLAT / Chimera / TileFlow trees.

    One fusion node per on-chip staging level: the outer node distributes
    (b, h, m) blocks over cores; on architectures with an L2 a second
    fusion node distributes finer tiles over sub-cores.
    """
    b = _AttentionBuilder(workload, arch, concurrent_mac_chains=concurrent_mac)
    tile = b.full_tile(tile_over)
    # Snap row/column tiles to the leaf extents this builder chose (the
    # factor spaces quantize by a nominal PE width; the actual leaf width
    # depends on the PE budget).
    g = b.geom
    tile["m"] = near_tile(g.rows, b.ms, tile.get("m", g.rows))
    tile["l"] = near_tile(g.cols, b.ls, tile.get("l", g.cols))

    if b.top_level == 1:  # Edge-like: a single on-chip staging level
        children: List[TileNode] = [
            b.chain(op, tile, level=1) for op in workload.operators]
        sdim, scount = b.pick_spatial(spatial_dims, b.cores, tile)
        loops = b.fusion_loops(tile, sdim, scount)
        root = FusionNode(loops, level=1, children=children,
                          binding=binding, name=name)
    else:
        # Cloud-like: the fusion node lives at the L2 level and spreads
        # blocks over cores; a spatial loop at the top of each operator
        # chain spreads the remaining tileable blocks over the sub-cores
        # of a core.  The intermediates' home is therefore L2, matching
        # FLAT's row staging in the large shared buffer (Fig. 11b shows
        # the resulting L2 traffic).
        outer_sdim, outer_scount = b.pick_spatial(spatial_dims, b.cores, tile)
        remaining = dict(tile)
        if outer_sdim is not None:
            remaining[outer_sdim] = tile[outer_sdim] * outer_scount
        inner_sdim, inner_scount = b.pick_spatial(
            spatial_dims, b.sub_cores, remaining)
        effective_tile = dict(tile)
        inner_spatial = None
        if inner_sdim is not None and inner_scount > 1:
            inner_spatial = (inner_sdim, inner_scount)
            effective_tile[inner_sdim] = tile[inner_sdim] * inner_scount
        children = [b.chain(op, tile, level=1, inner_spatial=inner_spatial)
                    for op in workload.operators]
        loops = b.fusion_loops(effective_tile, outer_sdim, outer_scount)
        root = FusionNode(loops, level=b.top_level, children=children,
                          binding=binding, name=name)
    return AnalysisTree(workload, root, name=f"{name}[{workload.name}]")


def flat(workload: Workload, arch: Architecture,
         factors: Mapping[str, int] = (),
         granularity: str = "r") -> AnalysisTree:
    """The FLAT dataflow family (§7.5): fuse all stages, Shar binding.

    ``granularity`` selects what the fused loops tile: ``"m"`` nothing
    (MGran), ``"b"`` batch, ``"h"`` batch+heads, ``"r"`` batch+heads+rows.
    """
    factors = dict(factors)
    g = AttentionGeometry.of(workload)
    if granularity not in ("m", "b", "h", "r"):
        raise MappingError(f"unknown FLAT granularity {granularity!r}")
    over: Dict[str, int] = {}
    spatial_dims: Tuple[str, ...] = ()
    if granularity in ("b", "h", "r"):
        over["b"] = factors.get("b_tile", 1)
        spatial_dims = ("b",)
    if granularity in ("h", "r"):
        over["h"] = factors.get("h_tile", 1)
        spatial_dims = ("h", "b")
    if granularity == "r":
        ms = near_divisor(g.rows, 16)
        over["m"] = factors.get("m_tile", near_tile(g.rows, ms, 4 * ms))
        spatial_dims = ("m", "h", "b")
    name = {"m": "flat_mgran", "b": "flat_bgran", "h": "flat_hgran",
            "r": "flat_rgran"}[granularity]
    return _fused_all_stages(workload, arch, name, Binding.SHAR, over,
                             concurrent_mac=1, spatial_dims=spatial_dims)


def flat_hgran(workload, arch, factors=()):
    """FLAT-HGran: fuse all stages, tile batch and heads (Table 5)."""
    return flat(workload, arch, factors, granularity="h")


def flat_rgran(workload, arch, factors=()):
    """FLAT-RGran: fuse all stages, tile batch, heads, and rows."""
    return flat(workload, arch, factors, granularity="r")


def chimera(workload: Workload, arch: Architecture,
            factors: Mapping[str, int] = ()) -> AnalysisTree:
    """Chimera: fuse QK and softmax and tile all dimensions (Table 5).

    Like FLAT-RGran but the key/column dimension is tiled at the fusion
    node as well, shrinking the staged intermediate slices (the paper
    reports 14.8% of FLAT-HGran's L1 footprint).
    """
    factors = dict(factors)
    g = AttentionGeometry.of(workload)
    ms, ls = near_divisor(g.rows, 16), near_divisor(g.cols, 16)
    over = {
        "b": factors.get("b_tile", 1),
        "h": factors.get("h_tile", 1),
        "m": factors.get("m_tile", near_tile(g.rows, ms, 4 * ms)),
        "l": factors.get("l_tile", near_tile(g.cols, ls, 4 * ls)),
    }
    return _fused_all_stages(workload, arch, "chimera", Binding.SHAR, over,
                             concurrent_mac=1,
                             spatial_dims=("m", "h", "b"))


def tileflow(workload: Workload, arch: Architecture,
             factors: Mapping[str, int] = ()) -> AnalysisTree:
    """The TileFlow dataflow (§7.2): pipeline all stages, all loops tiled.

    Identical tiling space to Chimera but a ``Pipe`` binding, so the three
    stages overlap on disjoint compute partitions — the source of the
    paper's 1.85x mean speedup over FLAT-HGran on Edge.
    """
    factors = dict(factors)
    g = AttentionGeometry.of(workload)
    ms, ls = near_divisor(g.rows, 16), near_divisor(g.cols, 16)
    over = {
        "b": factors.get("b_tile", 1),
        "h": factors.get("h_tile", 1),
        "m": factors.get("m_tile", near_tile(g.rows, ms, 4 * ms)),
        "l": factors.get("l_tile", near_tile(g.cols, ls, 4 * ls)),
    }
    # The two pipelined matmul stages split the PE pool between them.
    return _fused_all_stages(workload, arch, "tileflow", Binding.PIPE, over,
                             concurrent_mac=2,
                             spatial_dims=("m", "h", "b"))


# ----------------------------------------------------------------------
# Registry and factor spaces
# ----------------------------------------------------------------------
ATTENTION_DATAFLOWS: Dict[str, Callable[..., AnalysisTree]] = {
    "layerwise": layerwise,
    "unipipe": unipipe,
    "flat_hgran": flat_hgran,
    "flat_rgran": flat_rgran,
    "chimera": chimera,
    "tileflow": tileflow,
}


def attention_dataflow(name: str, workload: Workload, arch: Architecture,
                       factors: Mapping[str, int] = ()) -> AnalysisTree:
    """Build a named attention dataflow ("layerwise", "flat_rgran", ...)."""
    try:
        template = ATTENTION_DATAFLOWS[name]
    except KeyError:
        raise MappingError(
            f"unknown attention dataflow {name!r}; choose from "
            f"{sorted(ATTENTION_DATAFLOWS)}") from None
    return template(workload, arch, factors)


def attention_factor_space(name: str,
                           workload: Workload) -> Dict[str, List[int]]:
    """Legal tiling-factor choices for a named template (mapper input)."""
    g = AttentionGeometry.of(workload)
    ms, ls = near_divisor(g.rows, 16), near_divisor(g.cols, 16)
    space: Dict[str, List[int]] = {}
    if name in ("layerwise", "unipipe", "flat_rgran", "chimera", "tileflow"):
        space["m_tile"] = tile_choices(g.rows, ms)
    if name in ("layerwise", "chimera", "tileflow"):
        space["l_tile"] = tile_choices(g.cols, ls)
    if g.batch > 1 and name != "layerwise":
        space["b_tile"] = tile_choices(g.batch)
    return space
