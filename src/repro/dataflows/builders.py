"""Shared utilities for constructing dataflow analysis trees.

The named dataflows (FLAT, Chimera, Fused-Layer, ...) are *templates*: a
function from (workload, architecture, tiling factors) to an analysis
tree.  This module holds the arithmetic helpers the templates share —
divisor selection, leaf/mid loop construction for operator chains — so
each template reads as a direct transcription of its paper description.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import MappingError
from ..ir import Operator
from ..tile.loops import Loop, spatial, temporal


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n``, ascending."""
    if n <= 0:
        raise ValueError(f"divisors of non-positive {n}")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def near_divisor(n: int, target: int) -> int:
    """The divisor of ``n`` closest to ``target`` (ties go larger)."""
    best = 1
    for d in divisors(n):
        if abs(d - target) < abs(best - target) or (
                abs(d - target) == abs(best - target) and d > best):
            best = d
    return best


def tile_choices(size: int, unit: int = 1) -> List[int]:
    """Divisors of ``size`` that are multiples of ``unit``.

    These are the legal tile extents for a dimension whose innermost tile
    (PE-array extent) is ``unit``; mappers draw tiling factors from this
    set so every constructed tree is exactly divisible.
    """
    return [d for d in divisors(size) if d % unit == 0] or [size]


def floor_divisor(n: int, cap: int) -> int:
    """The largest divisor of ``n`` that is <= ``cap`` (at least 1).

    Used for spatial splits: a dim may be spread over at most the number
    of hardware instances available.
    """
    best = 1
    for d in divisors(n):
        if d <= cap and d > best:
            best = d
    return best


def near_tile(size: int, unit: int, target: int) -> int:
    """The tile in :func:`tile_choices`(size, unit) closest to ``target``."""
    choices = tile_choices(size, unit)
    return min(choices, key=lambda c: (abs(c - target), -c))


def fit_rect(size_a: int, size_b: int, budget: int) -> Tuple[int, int]:
    """Divisor pair (a of size_a, b of size_b) maximizing a*b <= budget.

    Used to shape a 2-D spatial PE tile; ties prefer the more balanced
    rectangle.
    """
    best = (1, 1)
    best_key = (1, 0.0)
    for a in divisors(size_a):
        if a > budget:
            break
        b = floor_divisor(size_b, budget // a)
        area = a * b
        balance = -abs(a - b)
        if (area, balance) > best_key:
            best_key = (area, balance)
            best = (a, b)
    return best


def check_divides(tile: int, size: int, what: str) -> None:
    if size % tile:
        raise MappingError(f"{what}: tile {tile} does not divide {size}")


# ----------------------------------------------------------------------
# Loop construction
# ----------------------------------------------------------------------
def leaf_loops(op: Operator, spatial_ext: Mapping[str, int],
               temporal_ext: Mapping[str, int]) -> List[Loop]:
    """Loops of an innermost compute tile: temporal outer, spatial inner."""
    loops: List[Loop] = []
    for d, n in temporal_ext.items():
        if d not in op.dims:
            raise MappingError(f"leaf temporal dim {d!r} not in {op.name!r}")
        if n > 1:
            loops.append(temporal(d, n, 1))
    for d, n in spatial_ext.items():
        if d not in op.dims:
            raise MappingError(f"leaf spatial dim {d!r} not in {op.name!r}")
        if n > 1:
            loops.append(spatial(d, n, 1))
    return loops


def leaf_extent(spatial_ext: Mapping[str, int],
                temporal_ext: Mapping[str, int], dim_name: str) -> int:
    """Index-space extent one leaf execution covers along ``dim_name``."""
    return (spatial_ext.get(dim_name, 1) * temporal_ext.get(dim_name, 1))


def mid_loops(op: Operator, tile: Mapping[str, int],
              spatial_ext: Mapping[str, int],
              temporal_ext: Mapping[str, int],
              order: Optional[Sequence[str]] = None,
              allow_ceil: bool = False) -> List[Loop]:
    """Loops iterating leaf tiles so the chain covers ``tile`` per dim.

    ``tile`` gives the per-fusion-iteration extents the chain must cover
    (dims absent default to the full operator dim).  With ``allow_ceil``
    the count rounds up (over-coverage — the halo recompute of fused
    convolutions); otherwise exact divisibility is required.
    """
    loops: List[Loop] = []
    dims = list(order) if order is not None else list(op.dims)
    for d in dims:
        want = tile.get(d, op.dims[d])
        leaf = leaf_extent(spatial_ext, temporal_ext, d)
        if want % leaf and not allow_ceil:
            raise MappingError(
                f"{op.name!r}: tile {want} along {d!r} not a multiple of "
                f"leaf extent {leaf}")
        count = math.ceil(want / leaf)
        if count > 1:
            loops.append(temporal(d, count, leaf))
    return loops


def tiling_loops(sizes: Mapping[str, int], tile: Mapping[str, int],
                 order: Sequence[str],
                 spatial_dims: Mapping[str, int] = (),
                 ) -> List[Loop]:
    """Outer tiling loops over shared dims (fusion-node loops).

    For each dim in ``order``: an optional spatial split into
    ``spatial_dims[d]`` blocks (each block ``sizes[d] / splits`` wide)
    followed by a temporal loop stepping by ``tile[d]``.  Loops with a
    single iteration are omitted.
    """
    loops: List[Loop] = []
    spatial_dims = dict(spatial_dims)
    for d in order:
        size = sizes[d]
        split = spatial_dims.get(d, 1)
        if split > 1:
            check_divides(split, size, f"spatial split of {d!r}")
            block = size // split
            loops.append(spatial(d, split, block))
            size = block
        step = tile.get(d, size)
        check_divides(step, size, f"tiling of {d!r}")
        count = size // step
        if count > 1:
            loops.append(temporal(d, count, step))
    return loops
