"""Named convolution-chain dataflows (Table 5, conv section).

* **Layerwise** — no fusion; each convolution maps to the whole machine
  in turn and ``Act`` streams through DRAM.
* **Fused-Layer** (Alwani et al.) — fuse the two convolutions with the
  height and width dimensions tiled, alternating per tile on a shared
  buffer (``Shar``); the producer recomputes a ``kernel - 1`` halo per
  tile.  PEs parallelize over the tile's pixels (the original design's
  2-D arrangement).
* **ISOS** (ISOSceles) — fuse with only the width dimension tiled (the
  paper runs the originally-sparse design on dense chains, where it fails
  to provide speedup).
* **TileFlow** — the mapper-discovered dataflow of §7.2: pipeline the two
  convolutions with their channel dimensions tiled.  Each stage gets a
  work-proportional share of the machine, tiles *all* dims (3-D
  rows x columns x channels PE tiles), and overlaps with the other stage
  under ``Pipe``.

Convolution extents (110, 147, 225, ...) rarely factor nicely, so these
templates use *imperfect* tiling throughout: loop counts round up and the
final partial tile is padded — exactly what real mappers emit.  The
producer chains additionally over-cover by the halo (recompute).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..arch import Architecture
from ..errors import MappingError
from ..ir import Operator, Workload
from ..tile.bindings import Binding
from ..tile.loops import Loop, spatial, temporal
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from .builders import floor_divisor, leaf_loops, mid_loops


@dataclass(frozen=True)
class ConvChainGeometry:
    """Shape parameters extracted from a conv-chain workload."""

    height: int        # intermediate (Act) rows, conv1's p extent
    width: int
    out_h: int         # output rows, conv2's p extent
    out_w: int
    c0: int
    c1: int
    c2: int
    kernel: int

    @staticmethod
    def of(workload: Workload) -> "ConvChainGeometry":
        c1op = workload.operator("conv1")
        c2op = workload.operator("conv2")
        return ConvChainGeometry(
            height=c1op.dims["p"], width=c1op.dims["q"],
            out_h=c2op.dims["p"], out_w=c2op.dims["q"],
            c0=c1op.dims["c0"], c1=c1op.dims["c1"], c2=c2op.dims["c2"],
            kernel=c1op.dims["r"])


def _is_conv_chain(workload: Workload) -> bool:
    names = {op.name for op in workload.operators}
    return "conv1" in names and "conv2" in names


def _cout(op: Operator) -> str:
    return "c1" if op.name == "conv1" else "c2"


def _cin(op: Operator) -> str:
    return "c0" if op.name == "conv1" else "c1"


def _window(op: Operator) -> Tuple[str, str]:
    return ("r", "s") if op.name == "conv1" else ("u", "v")


def _ceil(a: int, b: int) -> int:
    return -(-a // b)


class _ConvBuilder:
    """Shared machinery for the convolution-chain templates."""

    def __init__(self, workload: Workload, arch: Architecture,
                 pipelined: bool = False):
        if not _is_conv_chain(workload):
            raise MappingError(
                f"workload {workload.name!r} is not a convolution chain")
        self.workload = workload
        self.arch = arch
        self.geom = ConvChainGeometry.of(workload)
        self.top_level = arch.num_levels - 2
        self.cores = arch.level(self.top_level).fanout
        self.sub_cores = (arch.level(1).fanout // self.cores
                          if self.top_level > 1 else 1)
        self.unit_budget = max(4, arch.pe_count // arch.level(1).fanout)
        w1 = workload.operator("conv1").total_ops
        w2 = workload.operator("conv2").total_ops
        self.shares = {"conv1": w1 / (w1 + w2), "conv2": w2 / (w1 + w2)}
        self.pipelined = pipelined

    # ------------------------------------------------------------------
    def pixel_chain(self, op: Operator, tile: Mapping[str, int],
                    budget: Optional[int] = None,
                    inner_spatial: Optional[Tuple[str, int, int]] = None
                    ) -> OpTile:
        """Chain with a 2-D (rows x columns) PE tile, imperfect tiling."""
        budget = budget if budget is not None else self.unit_budget
        p_ref = min(tile.get("p", op.dims["p"]), op.dims["p"])
        q_ref = min(tile.get("q", op.dims["q"]), op.dims["q"])
        ps = min(p_ref, max(2, int(math.sqrt(budget))))
        qs = min(q_ref, max(2, budget // ps))
        sp = {"p": ps, "q": qs}
        return self._chain(op, tile, sp, inner_spatial)

    def channel_chain(self, op: Operator, tile: Mapping[str, int],
                      budget: Optional[int] = None,
                      inner_spatial: Optional[Tuple[str, int, int]] = None
                      ) -> OpTile:
        """Chain with a 3-D (rows x columns x channels) PE tile."""
        budget = budget if budget is not None else self.unit_budget
        cdim = _cout(op)
        c_ref = min(tile.get(cdim, op.dims[cdim]), op.dims[cdim])
        cs = floor_divisor(c_ref, max(2, budget // 16))
        rest = max(1, budget // cs)
        p_ref = min(tile.get("p", op.dims["p"]), op.dims["p"])
        q_ref = min(tile.get("q", op.dims["q"]), op.dims["q"])
        ps = min(p_ref, max(1, int(math.sqrt(rest))))
        qs = min(q_ref, max(1, rest // ps))
        sp = {"p": ps, "q": qs, cdim: cs}
        return self._chain(op, tile, sp, inner_spatial)

    def _chain(self, op: Operator, tile: Mapping[str, int],
               sp: Dict[str, int],
               inner_spatial: Optional[Tuple[str, int, int]]) -> OpTile:
        win = _window(op)
        tp = {win[0]: self.geom.kernel, win[1]: self.geom.kernel,
              _cin(op): op.dims[_cin(op)]}
        leaf = OpTile(op, leaf_loops(op, sp, tp), level=0)
        loops = mid_loops(op, tile, sp, tp, allow_ceil=True)
        if inner_spatial is not None and inner_spatial[0] in op.dims:
            d, count, step = inner_spatial
            if count > 1:
                loops = [spatial(d, count, step)] + loops
        return OpTile(op, loops, level=1, child=leaf)

    def producer_tile(self, consumer_tile: Mapping[str, int]
                      ) -> Dict[str, int]:
        """conv1's per-iteration extents for a conv2 tile (adds the halo)."""
        halo = self.geom.kernel - 1
        tile = dict(consumer_tile)
        if "p" in tile:
            tile["p"] = tile["p"] + halo
        if "q" in tile:
            tile["q"] = tile["q"] + halo
        tile.pop("c2", None)
        return tile

    def outer_loops(self, tile: Mapping[str, int],
                    spatial_dim: Optional[str]) -> List[Loop]:
        """Fusion-node loops tiling conv2's output space (imperfect)."""
        sizes = {"p": self.geom.out_h, "q": self.geom.out_w}
        loops: List[Loop] = []
        for d in ("p", "q"):
            if d not in tile:
                continue
            size = sizes[d]
            step = tile[d]
            blocks = _ceil(size, step)
            if d == spatial_dim and blocks > 1:
                split = min(self.cores, blocks)
                per = _ceil(blocks, split)
                loops.append(spatial(d, split, per * step))
                blocks = per
            if blocks > 1:
                loops.append(temporal(d, blocks, step))
        return loops


# ----------------------------------------------------------------------
# Templates
# ----------------------------------------------------------------------
def conv_layerwise(workload: Workload, arch: Architecture,
                   factors: Mapping[str, int] = ()) -> AnalysisTree:
    """No fusion: each convolution mapped to hardware in turn."""
    factors = dict(factors)
    b = _ConvBuilder(workload, arch)
    chains: List[TileNode] = []
    for op in workload.operators:
        p_sz, q_sz = op.dims["p"], op.dims["q"]
        tile = {"p": min(p_sz, factors.get("p_tile", _ceil(p_sz, 8))),
                "q": min(q_sz, factors.get("q_tile", _ceil(q_sz, 2)))}
        inner = None
        if b.sub_cores > 1:
            cdim = _cout(op)
            split = floor_divisor(op.dims[cdim], b.sub_cores)
            if split > 1:
                tile[cdim] = op.dims[cdim] // split
                inner = (cdim, split, tile[cdim])
        chain = b.pixel_chain(op, tile, inner_spatial=inner)
        top_loops: List[Loop] = []
        for d, size in (("p", p_sz), ("q", q_sz)):
            blocks = _ceil(size, tile[d])
            if d == "p" and blocks > 1:
                split = min(b.cores, blocks)
                per = _ceil(blocks, split)
                top_loops.append(spatial(d, split, per * tile[d]))
                blocks = per
            if blocks > 1:
                top_loops.append(temporal(d, blocks, tile[d]))
        chains.append(OpTile(op, top_loops, level=b.top_level, child=chain))
    root = FusionNode([], level=arch.dram_index, children=chains,
                      binding=Binding.SEQ, name="conv-layerwise")
    return AnalysisTree(workload, root,
                        name=f"conv_layerwise[{workload.name}]")


def fused_layer(workload: Workload, arch: Architecture,
                factors: Mapping[str, int] = ()) -> AnalysisTree:
    """Fused-Layer: fuse both convs with height and width tiled."""
    factors = dict(factors)
    b = _ConvBuilder(workload, arch)
    g = b.geom
    tile = {"p": min(g.out_h, factors.get("p_tile", _ceil(g.out_h, 8))),
            "q": min(g.out_w, factors.get("q_tile", _ceil(g.out_w, 2)))}
    children = []
    for op, op_tile in ((workload.operator("conv1"), b.producer_tile(tile)),
                        (workload.operator("conv2"), dict(tile))):
        inner = None
        if b.sub_cores > 1:
            cdim = _cout(op)
            split = floor_divisor(op.dims[cdim], b.sub_cores)
            if split > 1:
                op_tile[cdim] = op.dims[cdim] // split
                inner = (cdim, split, op_tile[cdim])
        children.append(b.pixel_chain(op, op_tile, inner_spatial=inner))
    root = FusionNode(b.outer_loops(tile, spatial_dim="p"),
                      level=b.top_level, children=children,
                      binding=Binding.SHAR, name="fused_layer")
    return AnalysisTree(workload, root,
                        name=f"fused_layer[{workload.name}]")


def isos(workload: Workload, arch: Architecture,
         factors: Mapping[str, int] = ()) -> AnalysisTree:
    """ISOS: fuse both convs with only the width dimension tiled."""
    factors = dict(factors)
    b = _ConvBuilder(workload, arch)
    g = b.geom
    tile = {"q": min(g.out_w, factors.get("q_tile", _ceil(g.out_w, 8)))}
    children = []
    for op, op_tile in ((workload.operator("conv1"), b.producer_tile(tile)),
                        (workload.operator("conv2"), dict(tile))):
        inner = None
        if b.sub_cores > 1:
            cdim = _cout(op)
            split = floor_divisor(op.dims[cdim], b.sub_cores)
            if split > 1:
                op_tile = dict(op_tile)
                op_tile[cdim] = op.dims[cdim] // split
                inner = (cdim, split, op_tile[cdim])
        children.append(b.pixel_chain(op, op_tile, inner_spatial=inner))
    root = FusionNode(b.outer_loops(tile, spatial_dim="q"),
                      level=b.top_level, children=children,
                      binding=Binding.SHAR, name="isos")
    return AnalysisTree(workload, root, name=f"isos[{workload.name}]")


def conv_tileflow(workload: Workload, arch: Architecture,
                  factors: Mapping[str, int] = ()) -> AnalysisTree:
    """TileFlow's conv dataflow: pipeline both convs, all dims tiled.

    Each stage takes a work-proportional share of the machine (a PE share
    of each core on single-level machines, a sub-core share otherwise),
    uses a 3-D rows x columns x channels PE tile, and spreads channel
    blocks over its sub-cores.  The two stages overlap under ``Pipe``.
    """
    factors = dict(factors)
    b = _ConvBuilder(workload, arch, pipelined=True)
    g = b.geom
    tile = {"p": min(g.out_h, factors.get("p_tile", _ceil(g.out_h, 8))),
            "q": min(g.out_w, factors.get("q_tile", _ceil(g.out_w, 2))),
            "c1": min(g.c1, factors.get("c1_tile", max(1, g.c1 // 2)))}

    children = []
    for op, halo in ((workload.operator("conv1"), True),
                     (workload.operator("conv2"), False)):
        share = b.shares[op.name]
        op_tile = b.producer_tile(tile) if halo else dict(tile)
        if op.name == "conv2":
            op_tile.pop("c1", None)  # c1 is conv2's reduction; leaf sweeps it
        if b.sub_cores > 1:
            units = max(1, round(b.sub_cores * share))
            budget = b.unit_budget
        else:
            units = 1
            budget = max(4, int(b.unit_budget * share))
        inner = None
        cdim = _cout(op)
        avail = op_tile.get(cdim, op.dims[cdim])
        split = floor_divisor(avail, units) if units > 1 else 1
        if split > 1:
            op_tile[cdim] = avail // split
            inner = (cdim, split, op_tile[cdim])
        children.append(b.channel_chain(op, op_tile, budget=budget,
                                        inner_spatial=inner))

    loops = b.outer_loops(tile, spatial_dim="p")
    c1_blocks = _ceil(g.c1, tile["c1"])
    if c1_blocks > 1:
        loops.append(temporal("c1", c1_blocks, tile["c1"]))
    root = FusionNode(loops, level=b.top_level, children=children,
                      binding=Binding.PIPE, name="conv_tileflow")
    return AnalysisTree(workload, root,
                        name=f"conv_tileflow[{workload.name}]")


# ----------------------------------------------------------------------
CONV_DATAFLOWS: Dict[str, Callable[..., AnalysisTree]] = {
    "layerwise": conv_layerwise,
    "fused_layer": fused_layer,
    "isos": isos,
    "tileflow": conv_tileflow,
}


def conv_dataflow(name: str, workload: Workload, arch: Architecture,
                  factors: Mapping[str, int] = ()) -> AnalysisTree:
    """Build a named conv-chain dataflow ("layerwise", "fused_layer", ...)."""
    try:
        template = CONV_DATAFLOWS[name]
    except KeyError:
        raise MappingError(
            f"unknown conv dataflow {name!r}; choose from "
            f"{sorted(CONV_DATAFLOWS)}") from None
    return template(workload, arch, factors)


def conv_factor_space(name: str, workload: Workload) -> Dict[str, List[int]]:
    """Legal tiling-factor choices for a named conv template.

    Tiling is imperfect (partial tiles are padded), so any tile size up
    to the extent is legal; the spaces enumerate a log-spaced ladder.
    """
    g = ConvChainGeometry.of(workload)

    def ladder(size: int) -> List[int]:
        out, v = [], 1
        while v < size:
            out.append(v)
            v *= 2
        out.append(size)
        return out

    space: Dict[str, List[int]] = {}
    if name in ("layerwise", "fused_layer", "tileflow"):
        space["p_tile"] = ladder(g.out_h)
        space["q_tile"] = ladder(g.out_w)
    if name == "isos":
        space["q_tile"] = ladder(g.out_w)
    if name == "tileflow":
        space["c1_tile"] = ladder(g.c1)
    return space
