"""Named dataflow templates from the paper's evaluation (Table 5)."""

from .attention_dataflows import (ATTENTION_DATAFLOWS, AttentionGeometry,
                                  attention_dataflow, attention_factor_space,
                                  chimera, flat, flat_hgran, flat_rgran,
                                  layerwise, tileflow, unipipe)
from .builders import (divisors, fit_rect, floor_divisor, near_divisor,
                       near_tile, tile_choices)
from .conv_dataflows import (CONV_DATAFLOWS, ConvChainGeometry,
                             conv_dataflow, conv_factor_space,
                             conv_layerwise, conv_tileflow, fused_layer,
                             isos)

__all__ = [
    "ATTENTION_DATAFLOWS", "attention_dataflow", "attention_factor_space",
    "AttentionGeometry",
    "layerwise", "unipipe", "flat", "flat_hgran", "flat_rgran",
    "chimera", "tileflow",
    "CONV_DATAFLOWS", "conv_dataflow", "conv_factor_space",
    "ConvChainGeometry",
    "conv_layerwise", "fused_layer", "isos", "conv_tileflow",
    "divisors", "near_divisor", "floor_divisor", "near_tile",
    "tile_choices", "fit_rect",
]
