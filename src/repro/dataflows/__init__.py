"""Named dataflow templates from the paper's evaluation (Table 5)."""

from .attention_dataflows import (ATTENTION_DATAFLOWS, AttentionGeometry,
                                  attention_dataflow, attention_factor_space,
                                  chimera, flat, flat_hgran, flat_rgran,
                                  layerwise, tileflow, unipipe)
from .builders import (divisors, fit_rect, floor_divisor, near_divisor,
                       near_tile, tile_choices)
from .conv_dataflows import (CONV_DATAFLOWS, ConvChainGeometry,
                             conv_dataflow, conv_factor_space,
                             conv_layerwise, conv_tileflow, fused_layer,
                             isos)


def dataflow_names(workload) -> tuple:
    """The named dataflows applicable to ``workload`` (by family)."""
    if "conv1" in {op.name for op in workload.operators}:
        return tuple(CONV_DATAFLOWS)
    return tuple(ATTENTION_DATAFLOWS)


def dataflow_for(workload, name: str, spec):
    """Build dataflow ``name`` for ``workload`` on ``spec``, picking the
    attention or conv-chain family from the workload's operators — one
    dispatch shared by the CLI, the evaluation service, and ledger
    manifest resolution."""
    if "conv1" in {op.name for op in workload.operators}:
        return conv_dataflow(name, workload, spec)
    return attention_dataflow(name, workload, spec)


__all__ = [
    "dataflow_for", "dataflow_names",
    "ATTENTION_DATAFLOWS", "attention_dataflow", "attention_factor_space",
    "AttentionGeometry",
    "layerwise", "unipipe", "flat", "flat_hgran", "flat_rgran",
    "chimera", "tileflow",
    "CONV_DATAFLOWS", "conv_dataflow", "conv_factor_space",
    "ConvChainGeometry",
    "conv_layerwise", "fused_layer", "isos", "conv_tileflow",
    "divisors", "near_divisor", "floor_divisor", "near_tile",
    "tile_choices", "fit_rect",
]
