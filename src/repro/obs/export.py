"""Trace exporters: render recorded spans for external viewers.

:func:`chrome_trace` converts the tracer's :class:`SpanRecord` list into
the Chrome Trace Event JSON format (the ``trace_event`` "X" complete
events), loadable in ``chrome://tracing`` and https://ui.perfetto.dev —
the CLI's ``--trace FILE --trace-format chrome`` path.  The exporter is
a pure function of the already-recorded spans, so JSONL and Chrome
outputs of the same run describe identical timings.

Metric counter values ride along in ``otherData`` (Perfetto shows them
in the trace info dialog); span attributes become per-event ``args``.
"""

from __future__ import annotations

import json
from typing import (IO, Any, Dict, Iterable, Mapping, Optional, Sequence,
                    Union)

from .trace import SpanRecord


def chrome_trace(spans: Iterable[SpanRecord],
                 metrics: Optional[Mapping[str, Mapping[str, Any]]] = None,
                 process_name: str = "repro") -> Dict[str, Any]:
    """The Chrome Trace Event representation of a recorded session.

    Spans map to ``ph="X"`` complete events with microsecond
    timestamps relative to the earliest span start (Perfetto prefers
    small positive timestamps over raw ``perf_counter`` epochs).
    """
    spans = list(spans)
    t0 = min((s.start_s for s in spans), default=0.0)
    events = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for s in spans:
        args: Dict[str, Any] = {"span_id": s.span_id, "depth": s.depth}
        for key, value in s.attrs.items():
            args[key] = (value if isinstance(value, (int, float, str, bool))
                         or value is None else repr(value))
        events.append({
            "name": s.name,
            "cat": s.category or "default",
            "ph": "X",
            "pid": 0,
            "tid": 0,
            "ts": (s.start_s - t0) * 1e6,
            "dur": s.duration_s * 1e6,
            "args": args,
        })
    other: Dict[str, Any] = {}
    for name, snap in sorted((metrics or {}).items()):
        value = snap.get("value", snap.get("count"))
        if value is not None:
            other[name] = value
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def dump_chrome(path_or_file: Union[str, IO[str]],
                spans: Sequence[SpanRecord],
                metrics: Optional[Mapping[str, Mapping[str, Any]]] = None
                ) -> None:
    """Write :func:`chrome_trace` output as one JSON document."""
    own = isinstance(path_or_file, str)
    fh = open(path_or_file, "w") if own else path_or_file
    try:
        json.dump(chrome_trace(spans, metrics), fh)
        fh.write("\n")
    finally:
        if own:
            fh.close()
