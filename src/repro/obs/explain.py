"""``repro explain``: where one evaluation's time and artifacts come from.

Given a tiling tree, :func:`explain_tree` answers three questions the
profile report can only hint at:

* **per-pass self-time** — how long each analysis pass takes, measured
  twice: a *cold* evaluation (empty subtree artifact cache) and a *warm*
  repeat of the identical tree (every subtree artifact cached);
* **artifact provenance** — for each artifact kind (slice geometry,
  NumPE, data-movement volumes, validation verdicts), how many lookups
  were served by the persistent :class:`SubtreeArtifactCache` versus
  computed fresh, plus how many repeat lookups the per-evaluation
  :class:`~repro.analysis.context.AnalysisContext` memo absorbed;
* **the exact pre-screen bound** — which machine-readable reason code
  (``compute.mac``, ``compute.vector``, ``memory.capacity:<level>``)
  would reject the mapping before full analysis, if any.

The cold/warm pair runs through the *engine* (distinct memo keys force
two real evaluations sharing one subtree cache), so the reported
per-kind hit/miss deltas are exactly the engine's own
``subtree_hits``/``subtree_misses`` counter movement — the unit tests
assert that equality.  This module imports the engine, so it must never
be imported from ``repro.obs.__init__`` (cycle); the CLI loads it
lazily.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .. import obs
from ..arch import Architecture
from ..tile.tree import AnalysisTree

#: Span-name prefix of analysis passes (see ``repro.analysis.pipeline``).
_PASS_PREFIX = "model.pass."


def _pass_times(spans) -> Dict[str, float]:
    """Per-pass self time (seconds) from one evaluation's span slice."""
    child_time: Dict[int, float] = {}
    for s in spans:
        if s.parent_id is not None:
            child_time[s.parent_id] = (child_time.get(s.parent_id, 0.0)
                                       + s.duration_s)
    out: Dict[str, float] = {}
    for s in spans:
        if s.name.startswith(_PASS_PREFIX):
            name = s.name[len(_PASS_PREFIX):]
            out[name] = (out.get(name, 0.0) + s.duration_s
                         - child_time.get(s.span_id, 0.0))
    return out


def _kind_delta(after: Dict[str, tuple], before: Dict[str, tuple]
                ) -> Dict[str, Dict[str, int]]:
    out: Dict[str, Dict[str, int]] = {}
    for kind in sorted(after):
        h, m, e = after[kind]
        bh, bm, be = before.get(kind, (0, 0, 0))
        if h > bh or m > bm or e > be:
            out[kind] = {"hits": h - bh, "misses": m - bm,
                         "evictions": e - be}
    return out


def _tier_delta(after: Dict[str, tuple], before: Dict[str, tuple]
                ) -> Dict[str, Dict[str, int]]:
    """Per-kind (l2_hits, l3_hits) movement between two tier snapshots —
    which artifact kinds the shared/disk tiers actually served."""
    out: Dict[str, Dict[str, int]] = {}
    for kind in sorted(after):
        l2, l3 = after[kind]
        b2, b3 = before.get(kind, (0, 0))
        if l2 > b2 or l3 > b3:
            out[kind] = {"l2_hits": l2 - b2, "l3_hits": l3 - b3}
    return out


def explain_tree(tree: AnalysisTree, arch: Architecture, *,
                 engine=None, respect_memory: bool = True
                 ) -> Dict[str, Any]:
    """The provenance/timing report of evaluating ``tree`` (see module
    docstring).  Pass a fresh ``engine`` (or none) for a true cold
    round; a shared engine reports *its* current cache state instead.
    """
    from ..engine import EvaluationEngine
    from ..engine.prescreen import prescreen

    if engine is None:
        engine = EvaluationEngine(tree.workload, arch,
                                  respect_memory=respect_memory)

    own_obs = not obs.is_enabled()
    if own_obs:
        obs.enable()
    tracer = obs.active_tracer()

    def template(_wl, _arch, _factors):
        return tree

    subtree = engine.subtree_cache
    rounds: Dict[str, Dict[str, Any]] = {}
    results = {}
    for label, factors in (("cold", {"round": 1}), ("warm", {"round": 2})):
        span_mark = len(tracer.spans) if tracer is not None else 0
        kinds_before = (subtree.counts_by_kind()
                        if subtree is not None else {})
        tiers_before = (subtree.tier_counts_by_kind()
                        if subtree is not None else {})
        stats_before = engine.stats.to_dict()
        results[label] = engine.evaluate_template(template, factors,
                                                  full=True)
        stats_after = engine.stats.to_dict()
        rounds[label] = {
            "pass_seconds": _pass_times(tracer.spans[span_mark:]
                                        if tracer is not None else ()),
            "subtree_by_kind": _kind_delta(
                subtree.counts_by_kind() if subtree is not None else {},
                kinds_before),
            "tiers_by_kind": _tier_delta(
                subtree.tier_counts_by_kind()
                if subtree is not None else {}, tiers_before),
            "engine_delta": {k: stats_after[k] - stats_before[k]
                             for k in stats_after
                             if stats_after[k] != stats_before[k]},
        }

    # Context-memo absorption: a cache-free evaluation of the same tree
    # counts how many repeat artifact lookups the per-evaluation context
    # memo serves (work neither the subtree cache nor fresh computation
    # sees).
    ctx = engine.model.context(tree, artifact_cache=None)
    engine.model.evaluate(tree, context=ctx)
    context_memo_hits = ctx.memo_hits

    # The pre-screen verdict, on its own cache-free context so its
    # counters stay out of the cold/warm provenance above.
    pre_ctx = engine.model.context(tree, artifact_cache=None)
    violations = prescreen(tree, arch,
                           check_memory=engine.respect_memory,
                           context=pre_ctx)
    codes = list(pre_ctx.get("bound_violation_codes") or ())

    if own_obs:
        obs.disable()

    # Batched-sweep attribution over the engine's lifetime: single-tree
    # evaluations never sweep, so these counters are zero on a fresh
    # engine and only move when a shared engine's MCTS tuners priced
    # factor cohorts through the array-native batched kernels.
    stats_now = engine.stats.to_dict()
    batched = {name: stats_now.get(name, 0)
               for name in ("batched_evaluations", "batch_fill",
                            "batch_fallbacks")}

    result = results["warm"]
    return {
        "tree": tree.name,
        "workload": tree.workload.name,
        "arch": arch.name,
        "rounds": rounds,
        "batched": batched,
        "provenance": {
            "context_memo_hits": context_memo_hits,
            "cold": rounds["cold"]["subtree_by_kind"],
            "warm": rounds["warm"]["subtree_by_kind"],
            # Which kinds the shared (L2) / disk (L3) tiers served —
            # empty unless the engine has tiers attached (e.g. a warm
            # --cache-dir): tier hits mean "not recomputed, loaded".
            "tiers": {
                "cold": rounds["cold"]["tiers_by_kind"],
                "warm": rounds["warm"]["tiers_by_kind"],
            },
        },
        "prescreen": {
            "feasible": not violations,
            "violations": list(violations),
            "codes": codes,
        },
        "result": result.to_dict(),
    }


def tree_from_manifest(manifest: Dict[str, Any]):
    """Rebuild a ledger run's champion tree: ``(tree, arch)``.

    Works on both manifest flavours the CLI and the evaluation service
    record: ``search`` manifests carry the champion's JSON genome
    ``encoding`` plus its tiling ``factors``; ``evaluate`` manifests
    carry the ``dataflow`` name.  Workload/arch come from the registry
    by name, cross-checked against the manifest's fingerprints so a
    drifted registry (different shapes than when the run was recorded)
    fails loudly instead of explaining the wrong mapping.
    """
    from .. import arch as arch_mod
    from .. import workloads as workloads_mod
    from ..dataflows import dataflow_for
    from ..engine.signature import (arch_fingerprint, digest,
                                    workload_fingerprint)
    from ..mapper.encoding import Genome, build_genome_tree
    from .ledger import LedgerError

    workload_info = dict(manifest.get("workload") or {})
    arch_info = dict(manifest.get("arch") or {})
    try:
        workload = workloads_mod.by_name(str(workload_info.get("name")))
    except KeyError as exc:
        raise LedgerError(f"manifest workload not in the registry: "
                          f"{exc.args[0] if exc.args else exc}")
    try:
        arch = arch_mod.by_name(str(arch_info.get("name")))
    except KeyError as exc:
        raise LedgerError(f"manifest arch not in the registry: "
                          f"{exc.args[0] if exc.args else exc}")
    for label, info, fp in (
            ("workload", workload_info,
             digest(workload_fingerprint(workload))),
            ("arch", arch_info, digest(arch_fingerprint(arch)))):
        recorded = info.get("fingerprint")
        if recorded is not None and recorded != fp:
            raise LedgerError(
                f"{label} {info.get('name')!r} has fingerprint {fp} in "
                f"this build but {recorded} in the manifest; the "
                f"registry shape has changed since the run was recorded")

    champion = dict(manifest.get("champion") or {})
    if champion.get("encoding") is not None:
        genome = Genome.from_encoding(champion["encoding"])
        factors = {str(k): int(v)
                   for k, v in dict(champion.get("factors") or {}).items()}
        return build_genome_tree(workload, arch, genome, factors), arch
    if champion.get("dataflow"):
        return dataflow_for(workload, str(champion["dataflow"]),
                            arch), arch
    raise LedgerError(
        f"run {manifest.get('run_id')!r} has no explainable champion: "
        f"the manifest carries neither a genome encoding nor a dataflow "
        f"name (recorded by an older build?)")


def render_explain(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`explain_tree` output."""
    lines: List[str] = [
        f"explain: tree {report['tree']!r} "
        f"(workload {report['workload']}, arch {report['arch']})",
        "",
        "== per-pass self-time (cold vs warm subtree cache) ==",
    ]
    cold = report["rounds"]["cold"]["pass_seconds"]
    warm = report["rounds"]["warm"]["pass_seconds"]
    names = [n for n in cold] + [n for n in warm if n not in cold]
    if names:
        lines.append(f"{'pass':16s} {'cold':>12s} {'warm':>12s} "
                     f"{'speedup':>8s}")
        for name in names:
            c, w = cold.get(name, 0.0), warm.get(name, 0.0)
            ratio = f"{c / w:7.2f}x" if w > 0 else "       -"
            lines.append(f"{name:16s} {c * 1e3:10.3f}ms {w * 1e3:10.3f}ms "
                         f"{ratio}")
    else:
        lines.append("  (no pass spans recorded)")

    lines.append("")
    lines.append("== artifact provenance ==")
    prov = report["provenance"]
    kinds = sorted(set(prov["cold"]) | set(prov["warm"]))
    if kinds:
        lines.append(f"{'kind':10s} {'cold hit/miss':>16s} "
                     f"{'warm hit/miss':>16s}")
        for kind in kinds:
            c = prov["cold"].get(kind, {})
            w = prov["warm"].get(kind, {})
            lines.append(
                f"{kind:10s} "
                f"{c.get('hits', 0):>7d}/{c.get('misses', 0):<8d} "
                f"{w.get('hits', 0):>7d}/{w.get('misses', 0):<8d}")
    tiers = prov.get("tiers") or {}
    tier_kinds = sorted(set(tiers.get("cold") or {})
                        | set(tiers.get("warm") or {}))
    for kind in tier_kinds:
        c = (tiers.get("cold") or {}).get(kind, {})
        w = (tiers.get("warm") or {}).get(kind, {})
        lines.append(
            f"{kind:10s} tier-served: cold L2={c.get('l2_hits', 0)} "
            f"L3={c.get('l3_hits', 0)}, warm L2={w.get('l2_hits', 0)} "
            f"L3={w.get('l3_hits', 0)}")
    lines.append(f"context-memo repeat lookups absorbed : "
                 f"{prov['context_memo_hits']}")
    batched = report.get("batched") or {}
    if batched.get("batch_fill"):
        lines.append(
            f"batched cohort pricing (engine lifetime): "
            f"{batched.get('batched_evaluations', 0)} of "
            f"{batched['batch_fill']} swept candidates committed, "
            f"{batched.get('batch_fallbacks', 0)} scalar fallbacks")

    lines.append("")
    pre = report["prescreen"]
    if pre["feasible"]:
        lines.append("prescreen: mapping passes every cheap bound")
    else:
        lines.append("prescreen: REJECTED — bounds that fired:")
        for code, text in zip(pre["codes"], pre["violations"]):
            lines.append(f"  [{code}] {text}")
    return "\n".join(lines)
