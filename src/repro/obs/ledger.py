"""Persistent run ledger: one manifest per search/evaluation run.

A *run* is one mapper search (or template tune) the user wants to be
able to audit, compare, and regress against later.  The ledger stores
one directory per run::

    runs/
      20260808T101500-1a2b3c4d/
        manifest.json

``manifest.json`` carries everything needed to compare two runs without
re-executing them: the workload/arch namespace fingerprints (the same
digests the engine's caches key on), the seeds and search
configuration, a counters snapshot (engine effectiveness + metrics),
the champion's canonical signature and scores, and wall-clock.

The CLI verbs sit on top (``repro runs list|show|diff``);
:func:`diff_manifests` is the cross-run regression check CI smoke-runs
(a champion-cost regression between two ledger entries is flagged, and
``--fail-on-regression`` turns it into a nonzero exit).

This module is deliberately stdlib-only and engine-agnostic: callers
(the CLI, bench drivers, a future evaluation server) assemble the
manifest dict via :func:`build_manifest`; nothing here imports the
engine, so ``repro.obs`` stays import-cycle-free.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Mapping, Optional

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
DEFAULT_RUNS_ROOT = "runs"


class LedgerError(Exception):
    """A ledger directory or manifest is missing or malformed."""


def build_manifest(*, run_id: str, command: str,
                   workload: Mapping[str, Any],
                   arch: Mapping[str, Any],
                   config: Mapping[str, Any],
                   seeds: Mapping[str, int],
                   champion: Mapping[str, Any],
                   counters: Mapping[str, Any],
                   wall_s: float,
                   started: Optional[str] = None,
                   namespace: Optional[str] = None,
                   extra: Optional[Mapping[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble a schema-versioned manifest dict.

    ``workload``/``arch`` are ``{"name": ..., "fingerprint": <digest>}``
    mappings; ``champion`` carries at least ``cost`` (finite number or
    None for infeasible) and ``signature`` (the canonical mapping
    digest); ``counters`` is a flat name->number mapping (engine stats,
    optionally merged metric counter values).
    """
    manifest: Dict[str, Any] = {
        "version": MANIFEST_VERSION,
        "run_id": run_id,
        "command": command,
        "started": started if started is not None else _now_iso(),
        "wall_s": float(wall_s),
        "workload": dict(workload),
        "arch": dict(arch),
        "namespace": namespace,
        "config": dict(config),
        "seeds": {k: int(v) for k, v in seeds.items()},
        "champion": dict(champion),
        "counters": dict(counters),
    }
    if extra:
        manifest.update(dict(extra))
    return manifest


def _now_iso() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime())


class RunLedger:
    """The on-disk ledger rooted at ``root`` (created on first record)."""

    def __init__(self, root: str = DEFAULT_RUNS_ROOT):
        self.root = root

    # -- writing ---------------------------------------------------------
    def new_run_id(self, salt: str = "") -> str:
        """A collision-free ``<timestamp>-<salt>`` run id."""
        stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime())
        base = f"{stamp}-{salt}" if salt else stamp
        run_id, n = base, 1
        while os.path.exists(self._dir(run_id)):
            n += 1
            run_id = f"{base}-{n}"
        return run_id

    def record(self, manifest: Mapping[str, Any]) -> str:
        """Write ``manifest`` under its ``run_id``; returns the path."""
        run_id = str(manifest.get("run_id") or "")
        if not run_id or os.sep in run_id or run_id in (".", ".."):
            raise LedgerError(f"bad run_id {run_id!r}")
        run_dir = self._dir(run_id)
        os.makedirs(run_dir, exist_ok=True)
        path = os.path.join(run_dir, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True,
                      allow_nan=False)
            fh.write("\n")
        os.replace(tmp, path)  # readers never see a half-written manifest
        return path

    # -- reading ---------------------------------------------------------
    def _dir(self, run_id: str) -> str:
        return os.path.join(self.root, run_id)

    def run_ids(self) -> List[str]:
        """Recorded run ids, sorted (timestamps sort chronologically)."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name for name in os.listdir(self.root)
            if os.path.isfile(os.path.join(self.root, name, MANIFEST_NAME)))

    def load(self, run_id: str) -> Dict[str, Any]:
        path = os.path.join(self._dir(run_id), MANIFEST_NAME)
        try:
            with open(path) as fh:
                manifest = json.load(fh)
        except OSError:
            known = ", ".join(self.run_ids()) or "(ledger is empty)"
            raise LedgerError(f"no run {run_id!r} under {self.root!r}; "
                              f"known runs: {known}") from None
        except json.JSONDecodeError as exc:
            raise LedgerError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(manifest, dict):
            raise LedgerError(f"{path} does not hold a manifest object")
        return manifest

    def manifests(self) -> List[Dict[str, Any]]:
        return [self.load(run_id) for run_id in self.run_ids()]


# ---------------------------------------------------------------------------
# Cross-run comparison.

def diff_manifests(a: Mapping[str, Any], b: Mapping[str, Any],
                   tolerance: float = 0.0) -> Dict[str, Any]:
    """Structured comparison of two run manifests (A = baseline).

    ``champion.regressed`` is True when B's champion cost is worse than
    A's by more than ``tolerance`` (relative), or when B lost
    feasibility A had.  Counter and config changes are reported
    per-key; identical keys are omitted.
    """
    champ_a = dict(a.get("champion") or {})
    champ_b = dict(b.get("champion") or {})
    cost_a = champ_a.get("cost")
    cost_b = champ_b.get("cost")
    if cost_a is None and cost_b is None:
        regressed = False
    elif cost_a is None:
        regressed = False  # baseline infeasible; anything finite improves
    elif cost_b is None:
        regressed = True
    else:
        regressed = float(cost_b) > float(cost_a) * (1.0 + tolerance)
    ratio = (float(cost_b) / float(cost_a)
             if cost_a not in (None, 0) and cost_b is not None else None)

    counters: Dict[str, Dict[str, Any]] = {}
    counters_a = dict(a.get("counters") or {})
    counters_b = dict(b.get("counters") or {})
    for name in sorted(set(counters_a) | set(counters_b)):
        va, vb = counters_a.get(name), counters_b.get(name)
        if va != vb:
            counters[name] = {"a": va, "b": vb}

    config: Dict[str, Dict[str, Any]] = {}
    config_a = dict(a.get("config") or {})
    config_b = dict(b.get("config") or {})
    for name in sorted(set(config_a) | set(config_b)):
        va, vb = config_a.get(name), config_b.get(name)
        if va != vb:
            config[name] = {"a": va, "b": vb}

    return {
        "run_a": a.get("run_id"),
        "run_b": b.get("run_id"),
        "comparable": (a.get("workload") == b.get("workload")
                       and a.get("arch") == b.get("arch")),
        "champion": {
            "cost_a": cost_a, "cost_b": cost_b, "ratio": ratio,
            "regressed": regressed,
            "same_signature": (champ_a.get("signature") is not None
                               and champ_a.get("signature")
                               == champ_b.get("signature")),
        },
        "wall_s": {"a": a.get("wall_s"), "b": b.get("wall_s")},
        "counters": counters,
        "config": config,
    }


# ---------------------------------------------------------------------------
# Renderers (pure functions, shared by CLI text mode and tests).

def render_run_list(manifests: List[Mapping[str, Any]]) -> str:
    if not manifests:
        return "(no runs recorded)"
    lines = [f"{'run id':28s} {'command':10s} {'workload':12s} "
             f"{'arch':8s} {'champion cost':>14s} {'wall':>8s}"]
    for m in manifests:
        cost = (m.get("champion") or {}).get("cost")
        lines.append(
            f"{str(m.get('run_id')):28s} {str(m.get('command')):10s} "
            f"{str((m.get('workload') or {}).get('name')):12s} "
            f"{str((m.get('arch') or {}).get('name')):8s} "
            f"{'infeasible' if cost is None else format(cost, '14.6g'):>14s} "
            f"{m.get('wall_s', 0.0):7.2f}s")
    return "\n".join(lines)


def render_manifest(m: Mapping[str, Any]) -> str:
    champ = dict(m.get("champion") or {})
    lines = [
        f"run       : {m.get('run_id')} ({m.get('command')}, "
        f"started {m.get('started')}, {m.get('wall_s', 0.0):.2f}s)",
        f"workload  : {(m.get('workload') or {}).get('name')} "
        f"[{(m.get('workload') or {}).get('fingerprint')}]",
        f"arch      : {(m.get('arch') or {}).get('name')} "
        f"[{(m.get('arch') or {}).get('fingerprint')}]",
        f"namespace : {m.get('namespace')}",
        f"config    : " + ", ".join(
            f"{k}={v}" for k, v in sorted((m.get('config') or {}).items())),
        f"seeds     : " + ", ".join(
            f"{k}={v}" for k, v in sorted((m.get('seeds') or {}).items())),
        f"champion  : cost="
        f"{'infeasible' if champ.get('cost') is None else champ.get('cost')}"
        f" signature={champ.get('signature')}",
    ]
    for key in ("genome", "factors", "latency_cycles", "energy_pj"):
        if key in champ:
            lines.append(f"  {key:14s}: {champ[key]}")
    counters = dict(m.get("counters") or {})
    if counters:
        lines.append("counters  :")
        for name in sorted(counters):
            lines.append(f"  {name:30s} {counters[name]:>12g}")
    return "\n".join(lines)


def render_diff(diff: Mapping[str, Any]) -> str:
    champ = dict(diff.get("champion") or {})
    lines = [f"runs diff: {diff.get('run_a')} (A) vs {diff.get('run_b')} (B)"]
    if not diff.get("comparable", True):
        lines.append("  WARNING: runs have different workload/arch "
                     "fingerprints; cost comparison is apples-to-oranges")

    def cost_s(c: Any) -> str:
        return "infeasible" if c is None else format(c, "g")

    verdict = "REGRESSION" if champ.get("regressed") else "ok"
    ratio = champ.get("ratio")
    lines.append(f"  champion cost : A={cost_s(champ.get('cost_a'))} "
                 f"B={cost_s(champ.get('cost_b'))}"
                 + (f" (B/A = {ratio:.4f})" if ratio is not None else "")
                 + f" -> {verdict}")
    lines.append(f"  same champion : "
                 f"{'yes' if champ.get('same_signature') else 'no'}")
    wall = dict(diff.get("wall_s") or {})
    if wall.get("a") is not None and wall.get("b") is not None:
        lines.append(f"  wall clock    : A={wall['a']:.2f}s "
                     f"B={wall['b']:.2f}s")
    counters = dict(diff.get("counters") or {})
    if counters:
        lines.append("  counters (changed):")
        for name in sorted(counters):
            pair = counters[name]
            lines.append(f"    {name:30s} A={pair.get('a')} "
                         f"B={pair.get('b')}")
    config = dict(diff.get("config") or {})
    if config:
        lines.append("  config (changed):")
        for name in sorted(config):
            pair = config[name]
            lines.append(f"    {name:30s} A={pair.get('a')} "
                         f"B={pair.get('b')}")
    if len(lines) == 1:
        lines.append("  (no differences)")
    return "\n".join(lines)
