"""Observability: structured tracing, metrics, and profile reporting.

One import point for instrumented code::

    from .. import obs

    with obs.span("model.evaluate"):
        obs.count("model.evaluations")
        ...

Everything is **zero-cost when disabled** (the default): ``obs.span``
returns a shared no-op object and the metric helpers early-return after
one flag check, so the analytical model's benchmark numbers are
unaffected.  ``obs.enable()`` switches on both tracing and metrics (the
CLI does this for ``--trace``/``--profile``); ``obs.disable()`` returns
the tracer so callers can export or render it.

See ``docs/OBSERVABILITY.md`` for the span/metric taxonomy and the
trace-file format.
"""

from __future__ import annotations

from typing import Optional

# NOTE: ``explain`` is deliberately NOT imported here — it depends on
# the evaluation engine, which imports this package (cycle); the CLI
# imports it lazily.
from . import events, export, ledger, metrics, trace
from .events import (CallbackSink, Event, EventBus, JsonlSink, RingSink,
                     jsonable_cost)
from .export import chrome_trace, dump_chrome
from .ledger import RunLedger, build_manifest, diff_manifests
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      MetricsScope, count, gauge, observe)
from .metrics import registry as metrics_registry
from .metrics import snapshot as metrics_snapshot
from .report import (SpanStat, aggregate_spans, engine_effectiveness,
                     incremental_effectiveness, profile_dict,
                     render_profile, summarize_trace_file)
from .trace import (NOOP_SPAN, SpanRecord, Tracer, load_jsonl, span, traced)


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Turn on tracing *and* metrics; returns the active tracer.

    By default starts from a clean slate (fresh tracer, reset registry)
    so successive sessions don't bleed into each other.
    """
    metrics.enable(reset=True)
    return trace.enable(tracer)


def disable() -> Optional[Tracer]:
    """Turn off tracing and metrics; returns the tracer for export."""
    metrics.disable()
    return trace.disable()


def is_enabled() -> bool:
    return trace.is_enabled()


def active_tracer() -> Optional[Tracer]:
    return trace.active()


__all__ = [
    "Tracer", "SpanRecord", "NOOP_SPAN", "span", "traced", "load_jsonl",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsScope",
    "count", "gauge", "observe", "metrics_registry", "metrics_snapshot",
    "SpanStat", "aggregate_spans", "render_profile", "profile_dict",
    "engine_effectiveness", "incremental_effectiveness",
    "summarize_trace_file",
    "enable", "disable", "is_enabled", "active_tracer",
    "events", "export", "ledger",
    "Event", "EventBus", "JsonlSink", "RingSink", "CallbackSink",
    "jsonable_cost", "chrome_trace", "dump_chrome",
    "RunLedger", "build_manifest", "diff_manifests",
]
