"""Structured tracing: nestable timed spans with JSONL export.

A :class:`Tracer` records :class:`SpanRecord` entries for every timed
span.  Spans nest through a *thread-local* context stack, so concurrent
explorations (future sharded mappers) trace independently while sharing
one record list; appends to the shared list are lock-protected.

The module-level API is designed to be **zero-cost when disabled**:
:func:`span` reads a single module global and, with no tracer installed,
returns a shared no-op context manager without allocating anything.
Instrumented hot paths therefore call ``with obs.span("stage"):``
unconditionally.

Trace files are JSON Lines: one object per finished span (plus metric
lines appended by :func:`dump_jsonl`), replayable with :func:`load_jsonl`
and the ``repro stats`` CLI subcommand.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import (IO, Any, Callable, Dict, Iterable, List, Mapping,
                    Optional, Tuple, Union)


@dataclass
class SpanRecord:
    """One finished span: a named, timed slice of work."""

    #: Unique id within the tracer (assigned at span *start*).
    span_id: int
    #: ``span_id`` of the enclosing span, or ``None`` for a root span.
    parent_id: Optional[int]
    name: str
    category: str
    start_s: float
    end_s: float
    #: Nesting depth at start (0 for a root span).
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "t0": self.start_s,
            "t1": self.end_s,
            "depth": self.depth,
            "attrs": self.attrs,
        }

    @classmethod
    def from_json(cls, obj: Mapping[str, Any]) -> "SpanRecord":
        return cls(span_id=int(obj["id"]),
                   parent_id=(None if obj.get("parent") is None
                              else int(obj["parent"])),
                   name=str(obj["name"]),
                   category=str(obj.get("cat", "")),
                   start_s=float(obj["t0"]),
                   end_s=float(obj["t1"]),
                   depth=int(obj.get("depth", 0)),
                   attrs=dict(obj.get("attrs") or {}))


class _NoopSpan:
    """Shared do-nothing span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _Span:
    """Live span handle; becomes a :class:`SpanRecord` on exit."""

    __slots__ = ("_tracer", "name", "category", "attrs",
                 "span_id", "parent_id", "depth", "start_s")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes to the span while it is running."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        self.span_id = tracer._next_id()
        stack.append(self)
        self.start_s = tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        end_s = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        tracer._record(SpanRecord(
            span_id=self.span_id, parent_id=self.parent_id,
            name=self.name, category=self.category,
            start_s=self.start_s, end_s=end_s,
            depth=self.depth, attrs=self.attrs))
        return False


class Tracer:
    """Collects spans; one instance per enabled tracing session.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.perf_counter`).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = 0
        self.spans: List[SpanRecord] = []

    # -- internal ------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    # -- public --------------------------------------------------------
    def span(self, name: str, category: str = "", **attrs: Any) -> _Span:
        """A context manager timing one named slice of work."""
        return _Span(self, name, category, attrs)

    def dump_jsonl(self, path_or_file: Union[str, IO[str]],
                   metrics: Optional[Mapping[str, Mapping[str, Any]]] = None
                   ) -> None:
        """Write spans (and an optional metrics snapshot) as JSON Lines."""
        own = isinstance(path_or_file, str)
        fh = open(path_or_file, "w") if own else path_or_file
        try:
            with self._lock:
                spans = list(self.spans)
            for record in spans:
                fh.write(json.dumps(record.to_json()) + "\n")
            for name, snap in sorted((metrics or {}).items()):
                line = {"type": "metric", "name": name}
                line.update(snap)
                fh.write(json.dumps(line) + "\n")
        finally:
            if own:
                fh.close()


def load_jsonl(path_or_file: Union[str, IO[str]]
               ) -> Tuple[List[SpanRecord], Dict[str, Dict[str, Any]]]:
    """Read a trace file back into ``(spans, metrics_snapshot)``."""
    own = isinstance(path_or_file, str)
    fh = open(path_or_file) if own else path_or_file
    spans: List[SpanRecord] = []
    metrics: Dict[str, Dict[str, Any]] = {}
    try:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "span":
                spans.append(SpanRecord.from_json(obj))
            elif kind == "metric":
                name = str(obj["name"])
                metrics[name] = {k: v for k, v in obj.items()
                                 if k not in ("type", "name")}
    finally:
        if own:
            fh.close()
    return spans, metrics


# ---------------------------------------------------------------------------
# Module-level enable/disable + the zero-cost `span` entry point.

_active: Optional[Tracer] = None


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global _active
    _active = tracer if tracer is not None else Tracer()
    return _active


def disable() -> Optional[Tracer]:
    """Remove the active tracer; returns it so callers can export."""
    global _active
    tracer, _active = _active, None
    return tracer


def active() -> Optional[Tracer]:
    return _active


def is_enabled() -> bool:
    return _active is not None


def span(name: str, category: str = "", **attrs: Any):
    """Timed span against the active tracer; no-op when disabled."""
    tracer = _active
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, category, **attrs)


def traced(name: Optional[str] = None, category: str = ""):
    """Decorator wrapping a callable in a span (zero-cost when disabled).

    Used by the experiment drivers so every figure/table regeneration
    emits one top-level timing span named ``experiment.<function>``.
    """
    def decorate(fn: Callable) -> Callable:
        label = name or f"experiment.{fn.__name__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = _active
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(label, category):
                return fn(*args, **kwargs)
        return wrapper
    return decorate
