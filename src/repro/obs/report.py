"""Profile reporting: aggregate spans + metrics into a summary.

The renderers are pure functions of ``(spans, metrics_snapshot)`` so the
live ``--profile`` path and the offline ``repro stats trace.jsonl``
replay produce byte-identical summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from .trace import SpanRecord, load_jsonl


@dataclass
class SpanStat:
    """Aggregate timing of all spans sharing one name."""

    name: str
    count: int
    total_s: float
    #: Total minus time spent in direct child spans.
    self_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def aggregate_spans(spans: Iterable[SpanRecord]) -> List[SpanStat]:
    """Per-name stats, sorted by self-time (descending)."""
    spans = list(spans)
    child_time: Dict[int, float] = {}
    for record in spans:
        if record.parent_id is not None:
            child_time[record.parent_id] = (
                child_time.get(record.parent_id, 0.0) + record.duration_s)
    stats: Dict[str, List[float]] = {}
    selfs: Dict[str, float] = {}
    for record in spans:
        stats.setdefault(record.name, []).append(record.duration_s)
        selfs[record.name] = (selfs.get(record.name, 0.0)
                              + record.duration_s
                              - child_time.get(record.span_id, 0.0))
    out = [SpanStat(name=name, count=len(durs), total_s=sum(durs),
                    self_s=selfs[name], min_s=min(durs), max_s=max(durs))
           for name, durs in stats.items()]
    out.sort(key=lambda s: (-s.self_s, s.name))
    return out


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.1f}us"


def engine_effectiveness(metrics: Optional[Mapping[str, Mapping[str, Any]]]
                         ) -> Optional[Dict[str, float]]:
    """Derived evaluation-engine rates from the ``engine.*`` counters.

    Returns None when the run never touched the engine.  ``hit_rate`` is
    cache hits over lookups; ``prescreen_reject_rate`` is the fraction of
    cache *misses* (candidates actually analysed) the cheap pre-screen
    rejected before the full model ran.
    """
    def value(name: str) -> float:
        snap = (metrics or {}).get(name, {})
        return float(snap.get("value") or 0.0)

    hits = value("engine.cache_hits")
    misses = value("engine.cache_misses")
    rejects = value("engine.prescreen_rejects")
    evaluations = value("engine.evaluations")
    early = value("engine.early_exits")
    lookups = hits + misses
    if lookups == 0 and evaluations == 0:
        return None
    return {
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
        "prescreen_rejects": rejects,
        "prescreen_reject_rate": rejects / misses if misses else 0.0,
        "full_evaluations": evaluations,
        "early_exits": early,
        "early_exit_rate": early / evaluations if evaluations else 0.0,
    }


def incremental_effectiveness(metrics: Optional[Mapping[str, Mapping[str,
                                                                     Any]]]
                              ) -> Optional[Dict[str, float]]:
    """Derived incremental-analysis rates from the ``engine.*`` counters.

    Returns None when the run never touched the subtree artifact cache
    (incremental evaluation off, or no engine in the loop).
    ``subtree_hit_rate`` is the fraction of per-subtree artifact lookups
    (slice geometry, NumPE, data-movement flows) served from the
    persistent cross-evaluation store instead of being recomputed.
    """
    def value(name: str) -> float:
        snap = (metrics or {}).get(name, {})
        return float(snap.get("value") or 0.0)

    hits = value("engine.subtree_hits")
    misses = value("engine.subtree_misses")
    skipped = value("engine.edp_energy_skipped")
    evictions = value("engine.subtree_evictions")
    batched = value("engine.batched_evaluations")
    batch_fill = value("engine.batch_fill")
    lookups = hits + misses
    if lookups == 0 and skipped == 0 and batch_fill == 0:
        return None
    out: Dict[str, float] = {
        "subtree_hits": hits,
        "subtree_misses": misses,
        "subtree_hit_rate": hits / lookups if lookups else 0.0,
        "edp_energy_skipped": skipped,
        "subtree_evictions": evictions,
        # L1 misses served by the shared (L2) / disk (L3) tiers of the
        # artifact store; zero when no tiers are attached.
        "subtree_l2_hits": value("engine.subtree_l2_hits"),
        "subtree_l3_hits": value("engine.subtree_l3_hits"),
        # Batched cohort sweeps: candidates priced by the array-native
        # kernels (committed / attempted) and members bounced back to
        # the scalar path.  ``batch_yield`` is committed over attempted.
        "batched_evaluations": batched,
        "batch_fill": batch_fill,
        "batch_fallbacks": value("engine.batch_fallbacks"),
        "batch_yield": batched / batch_fill if batch_fill else 0.0,
    }
    prefix = "engine.subtree_evictions."
    for name in sorted(metrics or {}):
        if name.startswith(prefix):
            out[f"evictions.{name[len(prefix):]}"] = value(name)
    return out


def render_profile(spans: Sequence[SpanRecord],
                   metrics: Optional[Mapping[str, Mapping[str, Any]]] = None,
                   top: int = 20) -> str:
    """Human-readable summary: top spans by self-time + metric tables."""
    lines: List[str] = []
    stats = aggregate_spans(spans)
    lines.append("== profile: spans by self-time ==")
    if stats:
        lines.append(f"{'span':32s} {'count':>7s} {'total':>10s} "
                     f"{'self':>10s} {'mean':>10s}")
        for stat in stats[:top]:
            lines.append(
                f"{stat.name:32s} {stat.count:7d} "
                f"{_fmt_seconds(stat.total_s)} {_fmt_seconds(stat.self_s)} "
                f"{_fmt_seconds(stat.mean_s)}")
        if len(stats) > top:
            lines.append(f"  ... {len(stats) - top} more span name(s)")
    else:
        lines.append("  (no spans recorded)")

    counters = {n: s for n, s in (metrics or {}).items()
                if s.get("kind") == "counter"}
    gauges = {n: s for n, s in (metrics or {}).items()
              if s.get("kind") == "gauge"}
    histograms = {n: s for n, s in (metrics or {}).items()
                  if s.get("kind") == "histogram"}
    if counters:
        lines.append("")
        lines.append("== counters ==")
        for name in sorted(counters):
            lines.append(f"{name:40s} {counters[name].get('value', 0):>12g}")
    if gauges:
        lines.append("")
        lines.append("== gauges (last / high-water) ==")
        for name in sorted(gauges):
            snap = gauges[name]
            value = snap.get("value")
            high = snap.get("max")
            lines.append(f"{name:40s} "
                         f"{'-' if value is None else format(value, '>12g')}"
                         f" / "
                         f"{'-' if high is None else format(high, 'g')}")
    if histograms:
        lines.append("")
        lines.append("== histograms (count / mean / max) ==")
        for name in sorted(histograms):
            snap = histograms[name]
            mean = snap.get("mean", 0.0)
            lines.append(f"{name:40s} {snap.get('count', 0):>8d} / "
                         f"{mean:g} / {snap.get('max')}")
    eng = engine_effectiveness(metrics)
    if eng is not None:
        lines.append("")
        lines.append("== evaluation engine ==")
        lines.append(
            f"{'cache hit rate':40s} {eng['hit_rate'] * 100:11.1f}% "
            f"({eng['cache_hits']:g} of "
            f"{eng['cache_hits'] + eng['cache_misses']:g} lookups)")
        lines.append(
            f"{'prescreen rejection rate':40s} "
            f"{eng['prescreen_reject_rate'] * 100:11.1f}% "
            f"({eng['prescreen_rejects']:g} of {eng['cache_misses']:g} "
            f"analysed, {eng['full_evaluations']:g} full evaluations)")
        if eng["early_exits"]:
            lines.append(
                f"{'pipeline early-exit rate':40s} "
                f"{eng['early_exit_rate'] * 100:11.1f}% "
                f"({eng['early_exits']:g} of {eng['full_evaluations']:g} "
                f"evaluations stopped at first violation)")
    inc = incremental_effectiveness(metrics)
    if inc is not None:
        lines.append("")
        lines.append("== incremental analysis ==")
        lines.append(
            f"{'subtree artifact hit rate':40s} "
            f"{inc['subtree_hit_rate'] * 100:11.1f}% "
            f"({inc['subtree_hits']:g} of "
            f"{inc['subtree_hits'] + inc['subtree_misses']:g} lookups "
            f"served from the cross-evaluation cache)")
        if inc.get("subtree_l2_hits") or inc.get("subtree_l3_hits"):
            lines.append(
                f"{'misses served by cache tiers':40s} "
                f"{inc['subtree_l2_hits'] + inc['subtree_l3_hits']:>12g}"
                f"  (L2 shared={inc['subtree_l2_hits']:g}, "
                f"L3 disk={inc['subtree_l3_hits']:g})")
        if inc["edp_energy_skipped"]:
            lines.append(
                f"{'energy passes skipped (EDP objective)':40s} "
                f"{inc['edp_energy_skipped']:>12g}")
        if inc.get("subtree_evictions"):
            by_kind = ", ".join(
                f"{key[len('evictions.'):]}={inc[key]:g}"
                for key in sorted(inc) if key.startswith("evictions."))
            lines.append(
                f"{'subtree cache evictions':40s} "
                f"{inc['subtree_evictions']:>12g}"
                + (f"  ({by_kind})" if by_kind else ""))
        if inc.get("batch_fill"):
            lines.append(
                f"{'batched candidate pricing':40s} "
                f"{inc['batch_yield'] * 100:11.1f}% "
                f"({inc['batched_evaluations']:g} of "
                f"{inc['batch_fill']:g} swept candidates committed, "
                f"{inc['batch_fallbacks']:g} scalar fallbacks)")
    return "\n".join(lines)


def profile_dict(spans: Sequence[SpanRecord],
                 metrics: Optional[Mapping[str, Mapping[str, Any]]] = None
                 ) -> Dict[str, Any]:
    """Machine-readable profile (CLI ``stats --json``)."""
    payload: Dict[str, Any] = {
        "spans": [{"name": s.name, "count": s.count, "total_s": s.total_s,
                   "self_s": s.self_s, "mean_s": s.mean_s,
                   "min_s": s.min_s, "max_s": s.max_s}
                  for s in aggregate_spans(spans)],
        "metrics": {name: dict(snap)
                    for name, snap in sorted((metrics or {}).items())},
    }
    eng = engine_effectiveness(metrics)
    if eng is not None:
        payload["engine"] = eng
    inc = incremental_effectiveness(metrics)
    if inc is not None:
        payload["incremental"] = inc
    return payload


def summarize_trace_file(path: str, top: int = 20) -> str:
    """Replay a JSONL trace file into the same summary ``--profile`` prints."""
    spans, metrics = load_jsonl(path)
    return render_profile(spans, metrics, top=top)
