"""Structured event bus: typed, subscribable search/engine telemetry.

Spans (:mod:`repro.obs.trace`) answer *where does time go* and metrics
(:mod:`repro.obs.metrics`) answer *how much*; events answer *what
happened, in order*: GA generation summaries, MCTS sample outcomes,
pre-screen rejections with machine-readable reason codes, engine
memo-cache and subtree-artifact-cache activity.  A long-lived
evaluation server streams search progress by subscribing a callback
sink to this bus; the CLI writes the same stream to a JSONL file
(``--events FILE``).

Like the rest of ``repro.obs`` the bus is **zero-cost when disabled**:
instrumented sites guard payload construction behind
:func:`is_enabled` (a single module-global read), so with no bus
installed a hot path pays one function call and one branch per site.

Every event kind is registered in :data:`EVENT_TYPES` with its payload
field types; :func:`event_schema` renders the registry as a JSON Schema
(draft-07 subset) that is checked in at ``tests/data/event_schema.json``
and enforced by CI on a smoke run (``python -m repro.obs.events
--validate events.jsonl --schema tests/data/event_schema.json``).

Determinism contract (property-tested in
``tests/property/test_prop_engine.py``): events in the ``search``
category are a pure function of the search trajectory, so a serial run
and a ``--workers N`` run of the same seed emit the *same sequence* of
search events — worker processes record their events locally and the
parent replays each task's stream in submission order.  ``cache``
events describe per-process cache effectiveness and legitimately differ
with the worker count (each worker owns private caches).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import (IO, Any, Callable, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Tuple, Union)

#: Bumped whenever an event kind or payload field changes shape.
EVENT_SCHEMA_VERSION = 1

#: Event categories: ``search`` events are worker-count deterministic,
#: ``cache`` events are per-process effectiveness detail, ``run``
#: events frame a CLI/service invocation (and carry wall-clock).
CATEGORIES = ("run", "search", "cache")

#: kind -> (category, {payload field: JSON type}).  ``cost`` is the
#: pseudo-type of a search objective: a finite number, or null for
#: infeasible (JSON has no Infinity).
EVENT_TYPES: Dict[str, Tuple[str, Dict[str, str]]] = {
    "run.start": ("run", {"command": "string", "label": "string"}),
    "run.end": ("run", {"command": "string", "outcome": "string",
                        "wall_s": "number"}),
    "search.progress": ("search", {"phase": "string", "step": "integer",
                                   "total": "integer", "best_cost": "cost"}),
    "ga.generation": ("search", {"generation": "integer",
                                 "best_cost": "cost", "mean_cost": "cost",
                                 "evaluated": "integer",
                                 "reused": "integer"}),
    "mcts.sample": ("search", {"sample": "integer", "cost": "cost",
                               "best_cost": "cost"}),
    "prescreen.reject": ("search", {"mapping": "string", "codes": "array"}),
    "engine.memo": ("cache", {"outcome": "string", "mapping": "string",
                              "full": "boolean"}),
    "engine.subtree": ("cache", {"kind": "string", "hits": "integer",
                                 "misses": "integer",
                                 "evictions": "integer"}),
}


def jsonable_cost(cost: Optional[float]) -> Optional[float]:
    """Map a search cost to strict JSON: infinities/NaN become null."""
    if cost is None:
        return None
    cost = float(cost)
    if cost != cost or cost in (float("inf"), float("-inf")):
        return None
    return cost


class Event:
    """One emitted event: a kind, a deterministic payload, a timestamp."""

    __slots__ = ("kind", "category", "payload", "t", "seq")

    def __init__(self, kind: str, category: str, payload: Dict[str, Any],
                 t: float, seq: int):
        self.kind = kind
        self.category = category
        self.payload = payload
        self.t = t
        self.seq = seq

    def to_json(self) -> Dict[str, Any]:
        return {"type": "event", "seq": self.seq, "t": self.t,
                "kind": self.kind, "cat": self.category,
                "payload": self.payload}

    def __repr__(self) -> str:
        return f"Event({self.kind!r}, seq={self.seq}, {self.payload!r})"


# ---------------------------------------------------------------------------
# Sinks.

class Sink:
    """Receives every emitted event; subclasses override :meth:`handle`."""

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by :func:`disable`."""


class JsonlSink(Sink):
    """Appends one JSON object per event to a file (or open stream)."""

    def __init__(self, path_or_file: Union[str, IO[str]]):
        self._own = isinstance(path_or_file, str)
        self._fh = (open(path_or_file, "w") if self._own
                    else path_or_file)

    def handle(self, event: Event) -> None:
        self._fh.write(json.dumps(event.to_json(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._fh.flush()
        if self._own:
            self._fh.close()


class RingSink(Sink):
    """Bounded in-memory buffer of the most recent events.

    ``capacity=None`` keeps everything (test capture, worker-side
    recording); a bound makes it a live "recent activity" window a
    server can surface without unbounded growth.
    """

    def __init__(self, capacity: Optional[int] = 4096):
        self.events: "deque[Event]" = deque(maxlen=capacity)
        self.dropped = 0

    def handle(self, event: Event) -> None:
        if (self.events.maxlen is not None
                and len(self.events) == self.events.maxlen):
            self.dropped += 1
        self.events.append(event)


class CallbackSink(Sink):
    """Invokes ``fn(event)`` per event — the streaming hook a server
    subscribes to.  Exceptions are swallowed after ``max_errors``
    strikes (a broken subscriber must not kill the search)."""

    def __init__(self, fn: Callable[[Event], None], max_errors: int = 3):
        self.fn = fn
        self.errors = 0
        self.max_errors = max_errors

    def handle(self, event: Event) -> None:
        if self.errors >= self.max_errors:
            return
        try:
            self.fn(event)
        except Exception:
            self.errors += 1


# ---------------------------------------------------------------------------
# The bus.

class EventBus:
    """Fans emitted events out to its sinks, stamping a global order.

    ``seq`` is assigned under a lock at emit time, so one bus gives one
    total order even with threaded emitters; :meth:`replay` re-emits
    worker-recorded events through the same stamping, which is how
    cross-process runs keep a deterministic parent-side order.
    """

    def __init__(self, sinks: Sequence[Sink] = ()):
        self._sinks: List[Sink] = list(sinks)
        self._lock = threading.Lock()
        self._seq = 0
        self.emitted = 0

    def add_sink(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        self._sinks.remove(sink)

    def emit(self, _kind: str, _t: Optional[float] = None,
             **payload: Any) -> Event:
        # Positional-style first parameter (``_kind``) so payload fields
        # may themselves be named ``kind`` (e.g. ``engine.subtree``).
        try:
            category = EVENT_TYPES[_kind][0]
        except KeyError:
            raise ValueError(f"unknown event kind {_kind!r}; register it in "
                             f"EVENT_TYPES") from None
        with self._lock:
            seq = self._seq
            self._seq += 1
            self.emitted += 1
        event = Event(_kind, category, payload,
                      time.time() if _t is None else _t, seq)
        for sink in self._sinks:
            sink.handle(event)
        return event

    def replay(self, records: Iterable[Tuple[str, Dict[str, Any], float]]
               ) -> int:
        """Re-emit worker-recorded ``(kind, payload, t)`` tuples in order.

        Original timestamps are preserved; fresh ``seq`` numbers place
        the replayed events deterministically in the parent's stream.
        """
        n = 0
        for kind, payload, t in records:
            self.emit(kind, _t=t, **payload)
            n += 1
        return n

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


# ---------------------------------------------------------------------------
# Module-level enable/disable + the zero-cost emit guard.
#
# Two installation scopes: the process-global bus (the CLI's ``--events``
# path) and a per-thread bus (``local=True``) that takes precedence in
# the installing thread only.  The evaluation service runs concurrent
# jobs on worker threads, each with its own local bus, so job event
# streams never interleave; code emitting events is oblivious to the
# distinction.

_bus: Optional[EventBus] = None
_local = threading.local()


def enable(bus: Optional[EventBus] = None,
           sinks: Sequence[Sink] = (), *, local: bool = False) -> EventBus:
    """Install ``bus`` (or a fresh one over ``sinks``) as the active bus.

    ``local=True`` scopes the installation to the calling thread; a
    thread-local bus shadows the global one for that thread.
    """
    installed = bus if bus is not None else EventBus(sinks)
    if local:
        _local.bus = installed
    else:
        global _bus
        _bus = installed
    return installed


def disable(*, local: bool = False) -> Optional[EventBus]:
    """Remove the active (global or thread-local) bus; returns it."""
    if local:
        bus = getattr(_local, "bus", None)
        _local.bus = None
        return bus
    global _bus
    bus, _bus = _bus, None
    return bus


def active() -> Optional[EventBus]:
    bus = getattr(_local, "bus", None)
    return bus if bus is not None else _bus


def is_enabled() -> bool:
    return (_bus is not None
            or getattr(_local, "bus", None) is not None)


def emit(_kind: str, **payload: Any) -> Optional[Event]:
    """Emit against the active bus; no-op (returns None) when disabled.

    Hot paths should guard with ``if events.is_enabled():`` *before*
    building the payload so disabled-mode cost stays at one call+branch.
    """
    bus = active()
    if bus is None:
        return None
    return bus.emit(_kind, **payload)


def record(records: Iterable[Tuple[str, Dict[str, Any], float]]) -> int:
    """Replay worker-recorded events into the active bus (0 if disabled)."""
    bus = active()
    if bus is None:
        return 0
    return bus.replay(records)


def as_records(events: Iterable[Event]
               ) -> List[Tuple[str, Dict[str, Any], float]]:
    """Picklable ``(kind, payload, t)`` tuples for cross-process shipping."""
    return [(e.kind, dict(e.payload), e.t) for e in events]


# ---------------------------------------------------------------------------
# Schema generation + validation (CI gate).

def event_schema() -> Dict[str, Any]:
    """The JSON Schema (draft-07 subset) of one event-stream line.

    Generated from :data:`EVENT_TYPES`; the checked-in copy at
    ``tests/data/event_schema.json`` must match byte-for-byte
    (``tests/unit/test_events.py`` enforces it).
    """
    def field_schema(ftype: str) -> Dict[str, Any]:
        if ftype == "cost":
            return {"type": ["number", "null"]}
        return {"type": ftype}

    conditionals = []
    for kind in sorted(EVENT_TYPES):
        _category, fields = EVENT_TYPES[kind]
        conditionals.append({
            "if": {"properties": {"kind": {"const": kind}}},
            "then": {"properties": {"payload": {
                "type": "object",
                "required": sorted(fields),
                "properties": {name: field_schema(ftype)
                               for name, ftype in sorted(fields.items())},
                "additionalProperties": False,
            }}},
        })
    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "title": "repro structured event stream (one object per line)",
        "version": EVENT_SCHEMA_VERSION,
        "type": "object",
        "required": ["type", "seq", "t", "kind", "cat", "payload"],
        "properties": {
            "type": {"const": "event"},
            "seq": {"type": "integer", "minimum": 0},
            "t": {"type": "number"},
            "kind": {"enum": sorted(EVENT_TYPES)},
            "cat": {"enum": sorted(set(c for c, _ in EVENT_TYPES.values()))},
            "payload": {"type": "object"},
        },
        "additionalProperties": False,
        "allOf": conditionals,
    }


_JSON_TYPES = {
    "string": str, "integer": int, "number": (int, float),
    "boolean": bool, "array": list, "object": dict,
}


def validate_record(obj: Mapping[str, Any]) -> List[str]:
    """Problems with one decoded event line against :data:`EVENT_TYPES`.

    An empty list means the record is valid.  This is the same contract
    :func:`event_schema` renders as JSON Schema, enforced without a
    third-party validator dependency.
    """
    problems: List[str] = []
    for field in ("type", "seq", "t", "kind", "cat", "payload"):
        if field not in obj:
            problems.append(f"missing field {field!r}")
    if problems:
        return problems
    if obj["type"] != "event":
        problems.append(f"type is {obj['type']!r}, expected 'event'")
    if not isinstance(obj["seq"], int) or isinstance(obj["seq"], bool) \
            or obj["seq"] < 0:
        problems.append(f"seq {obj['seq']!r} is not a non-negative integer")
    if not isinstance(obj["t"], (int, float)) or isinstance(obj["t"], bool):
        problems.append(f"t {obj['t']!r} is not a number")
    kind = obj["kind"]
    spec = EVENT_TYPES.get(kind)
    if spec is None:
        problems.append(f"unknown event kind {kind!r}")
        return problems
    category, fields = spec
    if obj["cat"] != category:
        problems.append(f"{kind}: cat {obj['cat']!r} != {category!r}")
    payload = obj["payload"]
    if not isinstance(payload, dict):
        problems.append(f"{kind}: payload is not an object")
        return problems
    for name, ftype in fields.items():
        if name not in payload:
            problems.append(f"{kind}: payload missing {name!r}")
            continue
        value = payload[name]
        if ftype == "cost":
            ok = value is None or (isinstance(value, (int, float))
                                   and not isinstance(value, bool))
        else:
            ok = (isinstance(value, _JSON_TYPES[ftype])
                  and not (ftype in ("integer", "number")
                           and isinstance(value, bool)))
        if not ok:
            problems.append(f"{kind}: payload field {name!r} = {value!r} "
                            f"is not a {ftype}")
    extra = sorted(set(payload) - set(fields))
    if extra:
        problems.append(f"{kind}: unexpected payload fields {extra}")
    return problems


def validate_jsonl(path_or_file: Union[str, IO[str]]) -> List[str]:
    """Validate a whole ``--events`` JSONL file; returns all problems."""
    own = isinstance(path_or_file, str)
    fh = open(path_or_file) if own else path_or_file
    problems: List[str] = []
    try:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: not JSON ({exc})")
                continue
            problems.extend(f"line {lineno}: {p}"
                            for p in validate_record(obj))
    finally:
        if own:
            fh.close()
    return problems


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """CI entry point: ``python -m repro.obs.events --validate F [...]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="validate --events JSONL files / print the schema")
    parser.add_argument("--validate", nargs="*", default=None,
                        metavar="FILE", help="event files to validate")
    parser.add_argument("--schema", default=None, metavar="FILE",
                        help="checked-in schema that must match the "
                             "generated one")
    parser.add_argument("--print-schema", action="store_true",
                        help="print the generated JSON Schema and exit")
    args = parser.parse_args(argv)
    if args.print_schema:
        print(json.dumps(event_schema(), indent=2, sort_keys=True))
        return 0
    rc = 0
    if args.schema is not None:
        with open(args.schema) as fh:
            checked_in = json.load(fh)
        if checked_in != event_schema():
            print(f"{args.schema} does not match the generated schema; "
                  f"regenerate with --print-schema")
            rc = 1
        else:
            print(f"{args.schema}: matches EVENT_TYPES")
    for path in args.validate or ():
        problems = validate_jsonl(path)
        if problems:
            rc = 1
            for p in problems:
                print(f"{path}: {p}")
        else:
            print(f"{path}: OK")
    return rc


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(main())
