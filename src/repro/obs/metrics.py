"""Metrics registry: counters, gauges, and histograms.

Complements :mod:`repro.obs.trace`: spans answer *where does time go*,
metrics answer *how often / how much* (mapping evaluations, infeasible
rate, best-cost-so-far, simulator events, buffer high-water marks).

The module-level helpers (:func:`count`, :func:`gauge`, :func:`observe`)
check a single enable flag and return immediately when disabled, so
instrumented hot paths pay one global read + one branch.  Metric
creation is lock-protected; in-place updates rely on the GIL (the
pipeline is single-threaded today; counters tolerate benign races).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-set value, with automatic high/low-water tracking."""

    __slots__ = ("value", "max", "min")
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.max: Optional[float] = None
        self.min: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.max is None or value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value,
                "max": self.max, "min": self.min}


class Histogram:
    """Streaming summary (count/sum/min/max) of observed values."""

    __slots__ = ("count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "count": self.count, "sum": self.sum,
                "mean": self.mean, "min": self.min, "max": self.max}


class MetricsScope:
    """Delta view of a registry between scope entry and now.

    Counters and histograms are process-global and accumulate across
    sequential runs in one process; a scope snapshots the registry at
    entry and :meth:`delta` subtracts that baseline, so profile
    sections (``engine.*`` rates, mapper counters) can report *per-run*
    numbers without resetting state other observers may be watching.

    Counter values and histogram count/sum/mean are true deltas;
    histogram min/max and gauges are reported as-is (extrema cannot be
    un-merged).  Metrics untouched inside the scope are omitted.
    """

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._baseline: Dict[str, Dict[str, Any]] = {}

    def __enter__(self) -> "MetricsScope":
        self._baseline = self._registry.snapshot()
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def delta(self) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for name, snap in self._registry.snapshot().items():
            base = self._baseline.get(name)
            kind = snap.get("kind")
            if kind == "counter":
                value = snap["value"] - (base or {}).get("value", 0.0)
                if value:
                    out[name] = {"kind": "counter", "value": value}
            elif kind == "histogram":
                count = snap["count"] - (base or {}).get("count", 0)
                if count:
                    total = snap["sum"] - (base or {}).get("sum", 0.0)
                    out[name] = {"kind": "histogram", "count": count,
                                 "sum": total, "mean": total / count,
                                 "min": snap.get("min"),
                                 "max": snap.get("max")}
            elif snap != base:
                out[name] = dict(snap)
        return out


class MetricsRegistry:
    """Named metrics, created on first touch."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, cls())
        if not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, "
                            f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-friendly state of every metric, sorted by name."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}

    def scope(self) -> MetricsScope:
        """A per-run delta view (see :class:`MetricsScope`)."""
        return MetricsScope(self)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


# ---------------------------------------------------------------------------
# Module-level registry + zero-cost-when-disabled helpers.

_enabled = False
_registry = MetricsRegistry()


def enable(reset: bool = True) -> MetricsRegistry:
    global _enabled
    if reset:
        _registry.reset()
    _enabled = True
    return _registry


def disable() -> None:
    """Stop recording; the registry stays readable for reporting."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def registry() -> MetricsRegistry:
    return _registry


def count(name: str, n: float = 1.0) -> None:
    if _enabled:
        _registry.counter(name).inc(n)


def gauge(name: str, value: float) -> None:
    if _enabled:
        _registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    if _enabled:
        _registry.histogram(name).observe(value)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return _registry.snapshot()
