"""TileFlow reproduction: modeling fusion dataflows via tree-based analysis.

This package reproduces the system described in *TileFlow: A Framework for
Modeling Fusion Dataflow via Tree-based Analysis* (MICRO 2023): a
tile-centric notation for fusion dataflows, a tree-based analytical
performance model (data movement, resource usage, latency, energy), baseline
models, a cycle-approximate simulated accelerator, and a GA+MCTS mapper.

Quickstart::

    from repro import workloads, arch, dataflows
    from repro.analysis import TileFlowModel

    wl = workloads.self_attention(num_heads=8, seq_len=512, hidden=512)
    spec = arch.edge()
    tree = dataflows.attention_dataflow("flat_rgran", wl, spec)
    result = TileFlowModel(spec).evaluate(tree)
    print(result.latency_cycles, result.energy_pj)

See DESIGN.md for the package map and EXPERIMENTS.md for the reproduction
of every table and figure in the paper's evaluation.
"""

__version__ = "1.0.0"

from . import (analysis, arch, baselines, dataflows, engine, ir, mapper,
               obs, sim, tile, workloads)

__all__ = ["analysis", "arch", "baselines", "dataflows", "engine", "ir",
           "mapper", "obs", "sim", "tile", "workloads", "__version__"]
