"""Self-attention workloads.

The self-attention layer of Fig. 1b is two batched matrix multiplications
around a softmax:

    S = Q x K          (scores)
    L = Softmax(S)     (row-wise over the key dimension)
    A = L x V          (context)

Per §7.2 the non-linear softmax is expanded into five small operators —
``max``, ``sub``, ``exp``, ``sum``, ``div`` — each a perfect loop nest, so
the whole layer becomes a seven-operator chain the tree analysis can handle
uniformly.  :func:`self_attention` builds either the expanded (default) or
the compact three-operator form.

Dimension names (shared across operators, which is what lets fused tiles
iterate them jointly):

    ``b`` batch, ``h`` heads, ``m`` query rows, ``l`` key rows (the softmax
    reduction dim), ``k`` per-head feature dim of Q/K, ``n`` per-head
    feature dim of V/output.
"""

from __future__ import annotations

from typing import Optional

from ..ir import Operator, Tensor, TensorAccess, Workload, dim, simple_access
from .shapes import AttentionShape


def self_attention(num_heads: int, seq_len: int, hidden: int,
                   batch: int = 1, expand_softmax: bool = True,
                   name: Optional[str] = None,
                   word_bytes: int = 2) -> Workload:
    """Build a self-attention workload.

    Parameters
    ----------
    num_heads, seq_len, hidden:
        Table 2 parameters; the per-head dim is ``hidden // num_heads``.
    batch:
        Mini-batch size (Table 7 uses 128; the dataflow comparisons use 1).
    expand_softmax:
        Expand softmax into max/sub/exp/sum/div (the paper's treatment).
        When False a single "softmax" operator with no reduction dims is
        used, which is convenient for small unit tests.
    """
    if hidden % num_heads:
        raise ValueError(f"hidden {hidden} not divisible by heads {num_heads}")
    d = hidden // num_heads
    wname = name or f"attention(h={num_heads},s={seq_len},d={hidden})"

    q = Tensor("Q", (batch, num_heads, seq_len, d), word_bytes)
    kt = Tensor("K", (batch, num_heads, d, seq_len), word_bytes)
    v = Tensor("V", (batch, num_heads, seq_len, d), word_bytes)
    s = Tensor("S", (batch, num_heads, seq_len, seq_len), word_bytes)
    lt = Tensor("L", (batch, num_heads, seq_len, seq_len), word_bytes)
    a = Tensor("A", (batch, num_heads, seq_len, d), word_bytes)

    qk = Operator(
        name="qk",
        dims={"b": batch, "h": num_heads, "m": seq_len, "l": seq_len, "k": d},
        inputs=[simple_access(q, "b", "h", "m", "k"),
                simple_access(kt, "b", "h", "k", "l")],
        output=simple_access(s, "b", "h", "m", "l"),
        kind="mac",
    )

    if expand_softmax:
        mx = Tensor("Mx", (batch, num_heads, seq_len), word_bytes)
        sub = Tensor("Sub", (batch, num_heads, seq_len, seq_len), word_bytes)
        ex = Tensor("E", (batch, num_heads, seq_len, seq_len), word_bytes)
        sm = Tensor("Sm", (batch, num_heads, seq_len), word_bytes)
        row_dims = {"b": batch, "h": num_heads, "m": seq_len, "l": seq_len}
        softmax_ops = [
            Operator("smax_max", row_dims,
                     [simple_access(s, "b", "h", "m", "l")],
                     simple_access(mx, "b", "h", "m"), kind="max"),
            Operator("smax_sub", row_dims,
                     [simple_access(s, "b", "h", "m", "l"),
                      simple_access(mx, "b", "h", "m")],
                     simple_access(sub, "b", "h", "m", "l"), kind="sub"),
            Operator("smax_exp", row_dims,
                     [simple_access(sub, "b", "h", "m", "l")],
                     simple_access(ex, "b", "h", "m", "l"), kind="exp"),
            Operator("smax_sum", row_dims,
                     [simple_access(ex, "b", "h", "m", "l")],
                     simple_access(sm, "b", "h", "m"), kind="sum"),
            Operator("smax_div", row_dims,
                     [simple_access(ex, "b", "h", "m", "l"),
                      simple_access(sm, "b", "h", "m")],
                     simple_access(lt, "b", "h", "m", "l"), kind="div"),
        ]
    else:
        softmax_ops = [
            Operator("softmax",
                     {"b": batch, "h": num_heads, "m": seq_len, "l": seq_len},
                     [simple_access(s, "b", "h", "m", "l")],
                     simple_access(lt, "b", "h", "m", "l"),
                     ops_per_point=5.0, kind="softmax"),
        ]

    av = Operator(
        name="av",
        dims={"b": batch, "h": num_heads, "m": seq_len, "n": d, "l": seq_len},
        inputs=[simple_access(lt, "b", "h", "m", "l"),
                simple_access(v, "b", "h", "l", "n")],
        output=simple_access(a, "b", "h", "m", "n"),
        kind="mac",
    )

    return Workload(wname, [qk, *softmax_ops, av])


def from_shape(shape: AttentionShape, batch: int = 1,
               expand_softmax: bool = True) -> Workload:
    """Build a self-attention workload from a Table 2 row."""
    return self_attention(shape.num_heads, shape.seq_len, shape.hidden,
                          batch=batch, expand_softmax=expand_softmax,
                          name=shape.name)
