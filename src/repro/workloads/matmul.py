"""Matrix-multiplication workloads (used for the Fig. 8a/8b validation)."""

from __future__ import annotations

from ..ir import Operator, Tensor, Workload, simple_access


def matmul(m: int, n: int, k: int, name: str = "matmul",
           word_bytes: int = 2) -> Workload:
    """``C[i, j] += A[i, k] * B[k, j]`` as a one-operator workload.

    Dimension names follow the paper's examples: ``i`` and ``j`` index the
    output, ``k`` is the reduction dimension.
    """
    a = Tensor("A", (m, k), word_bytes)
    b = Tensor("B", (k, n), word_bytes)
    c = Tensor("C", (m, n), word_bytes)
    op = Operator(
        name="mm",
        dims={"i": m, "j": n, "k": k},
        inputs=[simple_access(a, "i", "k"), simple_access(b, "k", "j")],
        output=simple_access(c, "i", "j"),
        kind="mac",
    )
    return Workload(name, [op])


def batched_matmul(batch: int, m: int, n: int, k: int,
                   name: str = "bmm", word_bytes: int = 2) -> Workload:
    """``C[b, i, j] += A[b, i, k] * B[b, k, j]``."""
    a = Tensor("A", (batch, m, k), word_bytes)
    b = Tensor("B", (batch, k, n), word_bytes)
    c = Tensor("C", (batch, m, n), word_bytes)
    op = Operator(
        name="bmm",
        dims={"b": batch, "i": m, "j": n, "k": k},
        inputs=[simple_access(a, "b", "i", "k"),
                simple_access(b, "b", "k", "j")],
        output=simple_access(c, "b", "i", "j"),
        kind="mac",
    )
    return Workload(name, [op])
