"""Workload builders and the paper's shape tables."""

from . import attention, convchain, matmul, mlp
from .attention import self_attention
from .convchain import conv_chain
from .matmul import batched_matmul, matmul
from .mlp import mlp
from .shapes import (ATTENTION_SHAPES, CLOUD_ATTENTION_NAMES,
                     CONV_CHAIN_SHAPES, EDGE_ATTENTION_NAMES,
                     AttentionShape, ConvChainShape)

attention_from_shape = attention.from_shape
conv_chain_from_shape = convchain.from_shape

__all__ = [
    "self_attention", "conv_chain", "matmul", "batched_matmul", "mlp",
    "attention_from_shape", "conv_chain_from_shape",
    "ATTENTION_SHAPES", "CONV_CHAIN_SHAPES",
    "EDGE_ATTENTION_NAMES", "CLOUD_ATTENTION_NAMES",
    "AttentionShape", "ConvChainShape",
]
