"""Workload builders and the paper's shape tables."""

from . import attention, convchain, matmul, mlp
from .attention import self_attention
from .convchain import conv_chain
from .matmul import batched_matmul, matmul
from .mlp import mlp
from .shapes import (ATTENTION_SHAPES, CLOUD_ATTENTION_NAMES,
                     CONV_CHAIN_SHAPES, EDGE_ATTENTION_NAMES,
                     AttentionShape, ConvChainShape)

attention_from_shape = attention.from_shape
conv_chain_from_shape = convchain.from_shape


def by_name(name: str):
    """Build the registry workload named ``name`` (Bert-S, CC1, ...).

    One lookup shared by the CLI, the evaluation service, and ledger
    manifest resolution; raises :class:`KeyError` (listing the known
    names) for anything outside the shape tables.
    """
    if name in ATTENTION_SHAPES:
        return attention_from_shape(ATTENTION_SHAPES[name])
    if name in CONV_CHAIN_SHAPES:
        return conv_chain_from_shape(CONV_CHAIN_SHAPES[name])
    raise KeyError(
        f"unknown workload {name!r}; choose an attention shape "
        f"{sorted(ATTENTION_SHAPES)} or conv chain "
        f"{sorted(CONV_CHAIN_SHAPES)}")


__all__ = [
    "self_attention", "conv_chain", "matmul", "batched_matmul", "mlp",
    "attention_from_shape", "conv_chain_from_shape", "by_name",
    "ATTENTION_SHAPES", "CONV_CHAIN_SHAPES",
    "EDGE_ATTENTION_NAMES", "CLOUD_ATTENTION_NAMES",
    "AttentionShape", "ConvChainShape",
]
