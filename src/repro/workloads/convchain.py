"""Convolution-chain workloads (Fig. 1c / Table 3).

Two chained valid convolutions with square filters:

    Act[p, q, c1] += Im[p + r, q + s, c0] * W1[r, s, c0, c1]
    Out[p, q, c2] += Act[p + u, q + v, c1] * W2[u, v, c1, c2]

The spatial dims of *both* convolutions are named ``p``/``q`` (with
different extents: the producer computes ``kernel - 1`` more rows/columns
than the consumer needs per position).  Sharing the names is what lets a
fused tile iterate both operators jointly: a fusion loop stepping ``p`` by
``T`` advances the consumer's output tile and the producer's intermediate
tile in lockstep, and the producer's leaf covering ``T + kernel - 1`` rows
expresses the Fused-Layer halo/recompute.

Table 3's ``Height x Width`` is interpreted as the spatial size of the
intermediate tensor ``Act`` (the tensor whose staging the fusion dataflows
are about); the image is padded accordingly and the final output loses
``kernel - 1`` rows/columns, as in a valid convolution.
"""

from __future__ import annotations

from typing import Optional

from ..ir import Operator, Tensor, TensorAccess, Workload, dim
from .shapes import ConvChainShape


def conv_chain(in_channels: int, height: int, width: int,
               out_channels1: int, out_channels2: int, kernel: int = 3,
               name: Optional[str] = None, word_bytes: int = 2) -> Workload:
    """Build a two-convolution chain.

    ``height``/``width`` are the spatial extents of the intermediate
    tensor; the chain output is ``(height - kernel + 1)`` by
    ``(width - kernel + 1)``.
    """
    if kernel < 1:
        raise ValueError(f"kernel must be >= 1, got {kernel}")
    if height < kernel or width < kernel:
        raise ValueError("intermediate must be at least one filter window")
    pad = kernel - 1
    out_h, out_w = height - pad, width - pad
    wname = name or (f"convchain(c={in_channels},{height}x{width},"
                     f"{out_channels1}->{out_channels2},k={kernel})")

    im = Tensor("Im", (height + pad, width + pad, in_channels), word_bytes)
    w1 = Tensor("W1", (kernel, kernel, in_channels, out_channels1), word_bytes)
    act = Tensor("Act", (height, width, out_channels1), word_bytes)
    w2 = Tensor("W2", (kernel, kernel, out_channels1, out_channels2),
                word_bytes)
    out = Tensor("Out", (out_h, out_w, out_channels2), word_bytes)

    conv1 = Operator(
        name="conv1",
        dims={"p": height, "q": width, "c1": out_channels1,
              "r": kernel, "s": kernel, "c0": in_channels},
        inputs=[
            TensorAccess(im, (dim("p") + dim("r"), dim("q") + dim("s"),
                              dim("c0"))),
            TensorAccess(w1, (dim("r"), dim("s"), dim("c0"), dim("c1"))),
        ],
        output=TensorAccess(act, (dim("p"), dim("q"), dim("c1"))),
        kind="mac",
    )
    conv2 = Operator(
        name="conv2",
        dims={"p": out_h, "q": out_w, "c2": out_channels2,
              "u": kernel, "v": kernel, "c1": out_channels1},
        inputs=[
            TensorAccess(act, (dim("p") + dim("u"), dim("q") + dim("v"),
                               dim("c1"))),
            TensorAccess(w2, (dim("u"), dim("v"), dim("c1"), dim("c2"))),
        ],
        output=TensorAccess(out, (dim("p"), dim("q"), dim("c2"))),
        kind="mac",
    )
    return Workload(wname, [conv1, conv2])


def from_shape(shape: ConvChainShape) -> Workload:
    """Build a convolution chain from a Table 3 row."""
    return conv_chain(shape.in_channels, shape.height, shape.width,
                      shape.out_channels1, shape.out_channels2,
                      kernel=shape.kernel, name=shape.name)
