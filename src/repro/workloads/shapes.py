"""Workload shape tables from the paper's evaluation section.

:data:`ATTENTION_SHAPES` reproduces Table 2 (self-attention shapes) and
:data:`CONV_CHAIN_SHAPES` reproduces Table 3 (convolution-chain shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class AttentionShape:
    """One row of Table 2."""

    name: str
    model: str
    num_heads: int
    seq_len: int
    hidden: int

    @property
    def head_dim(self) -> int:
        """Per-head feature dimension (hidden / num_heads)."""
        if self.hidden % self.num_heads:
            raise ValueError(
                f"{self.name}: hidden {self.hidden} not divisible by "
                f"num_heads {self.num_heads}")
        return self.hidden // self.num_heads


@dataclass(frozen=True)
class ConvChainShape:
    """One row of Table 3 (two chained convolutions, 3x3 filters)."""

    name: str
    in_channels: int
    height: int
    width: int
    out_channels1: int
    out_channels2: int
    kernel: int = 3


_ATTENTION_ROWS: Tuple[AttentionShape, ...] = (
    AttentionShape("Bert-S", "Bert", 8, 512, 512),
    AttentionShape("Bert-B", "Bert", 12, 512, 768),
    AttentionShape("Bert-L", "Bert", 16, 512, 1024),
    AttentionShape("ViT/14-B", "ViT", 12, 256, 768),
    AttentionShape("ViT/14-L", "ViT", 16, 256, 1024),
    AttentionShape("ViT/14-H", "ViT", 16, 256, 1280),
    AttentionShape("ViT/16-B", "ViT", 12, 196, 768),
    AttentionShape("ViT/16-L", "ViT", 16, 196, 1024),
    AttentionShape("ViT/16-H", "ViT", 16, 196, 1280),
    AttentionShape("T5", "T5", 16, 1024, 1024),
    AttentionShape("XLM", "XLM", 12, 1024, 768),
)

#: Table 2, keyed by shape name.
ATTENTION_SHAPES: Dict[str, AttentionShape] = {
    s.name: s for s in _ATTENTION_ROWS}

_CONV_ROWS: Tuple[ConvChainShape, ...] = (
    ConvChainShape("CC1", 64, 112, 112, 192, 128),
    ConvChainShape("CC2", 32, 147, 147, 64, 80),
    ConvChainShape("CC3", 64, 56, 56, 128, 64),
    ConvChainShape("CC4", 128, 28, 28, 256, 128),
    ConvChainShape("CC5", 16, 227, 227, 64, 16),
)

#: Table 3, keyed by shape name.
CONV_CHAIN_SHAPES: Dict[str, ConvChainShape] = {s.name: s for s in _CONV_ROWS}

#: Shapes used in the attention evaluation on the Edge accelerator (Fig. 10).
EDGE_ATTENTION_NAMES: Tuple[str, ...] = tuple(s.name for s in _ATTENTION_ROWS)

#: Shapes used on the Cloud accelerator (Fig. 11 drops T5 and XLM).
CLOUD_ATTENTION_NAMES: Tuple[str, ...] = tuple(
    s.name for s in _ATTENTION_ROWS if s.model not in ("T5", "XLM"))
