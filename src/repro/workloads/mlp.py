"""MLP / GEMM-chain workloads (beyond the paper's two families).

A two-layer feed-forward block — ``H = X x W1``, ``Y = H x W2`` — is the
other fusion-friendly pattern transformers are made of.  The paper's
framework handles it unchanged: ``H`` is the intermediate whose staging
fusion dataflows optimize, the hidden dimension ``h`` is the second
GEMM's reduction (so tiling it above the fusion point is legal per
§4.1), and the generic mapper explores the 3-D space directly.
"""

from __future__ import annotations

from typing import Optional

from ..ir import Operator, Tensor, Workload, simple_access


def mlp(batch_tokens: int, model_dim: int, hidden_dim: int,
        name: Optional[str] = None, word_bytes: int = 2) -> Workload:
    """Two chained GEMMs: ``H[i,h] += X[i,k] W1[k,h]``,
    ``Y[i,o] += H[i,h] W2[h,o]``.

    Dimension names: ``i`` tokens, ``k`` model dim (first reduction),
    ``h`` hidden dim (intermediate columns / second reduction), ``o``
    output model dim.
    """
    wname = name or f"mlp({batch_tokens}x{model_dim}->{hidden_dim})"
    x = Tensor("X", (batch_tokens, model_dim), word_bytes)
    w1 = Tensor("W1", (model_dim, hidden_dim), word_bytes)
    h = Tensor("H", (batch_tokens, hidden_dim), word_bytes)
    w2 = Tensor("W2", (hidden_dim, model_dim), word_bytes)
    y = Tensor("Y", (batch_tokens, model_dim), word_bytes)
    fc1 = Operator("fc1", {"i": batch_tokens, "h": hidden_dim,
                           "k": model_dim},
                   [simple_access(x, "i", "k"),
                    simple_access(w1, "k", "h")],
                   simple_access(h, "i", "h"), kind="mac")
    fc2 = Operator("fc2", {"i": batch_tokens, "o": model_dim,
                           "h": hidden_dim},
                   [simple_access(h, "i", "h"),
                    simple_access(w2, "h", "o")],
                   simple_access(y, "i", "o"), kind="mac")
    return Workload(wname, [fc1, fc2])
