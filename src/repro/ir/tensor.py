"""Tensors in the workload IR.

A :class:`Tensor` is a named, shaped multi-dimensional array of fixed-width
words.  Tensors carry no data — the model is analytical — but their shapes
and word widths drive footprint and data-movement volume computations.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import WorkloadError

#: Default word width in bytes (the paper's accelerator uses 16-bit words).
DEFAULT_WORD_BYTES = 2


class Tensor:
    """A named dense tensor.

    Parameters
    ----------
    name:
        Unique name within a workload.
    shape:
        Extent of each dimension; all extents must be positive.
    word_bytes:
        Bytes per element, used to convert element counts to bytes when
        checking buffer capacities and computing bandwidth-limited latency.
    """

    __slots__ = ("name", "shape", "word_bytes")

    def __init__(self, name: str, shape: Tuple[int, ...],
                 word_bytes: int = DEFAULT_WORD_BYTES):
        if not name:
            raise WorkloadError("tensor name must be non-empty")
        shape = tuple(int(s) for s in shape)
        if not shape or any(s <= 0 for s in shape):
            raise WorkloadError(
                f"tensor {name!r} must have positive extents, got {shape}")
        if word_bytes <= 0:
            raise WorkloadError(
                f"tensor {name!r} word_bytes must be positive, got {word_bytes}")
        self.name = name
        self.shape = shape
        self.word_bytes = int(word_bytes)

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def volume(self) -> int:
        """Total number of elements."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def bytes(self) -> int:
        """Total size in bytes."""
        return self.volume * self.word_bytes

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Tensor)
                and self.name == other.name
                and self.shape == other.shape
                and self.word_bytes == other.word_bytes)

    def __hash__(self) -> int:
        return hash((self.name, self.shape, self.word_bytes))

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"Tensor({self.name}: {dims})"
