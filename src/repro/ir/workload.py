"""Workloads: directed acyclic graphs of operators.

A :class:`Workload` owns an ordered list of operators (the order is a valid
topological order of the producer/consumer graph) and classifies its tensors
into external inputs, intermediates, and outputs.  The analysis uses this
classification to decide which tensors can be kept on-chip by fusion and
which must cross the DRAM boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from .operator import Operator
from .tensor import Tensor


class Workload:
    """An ordered DAG of operators.

    Parameters
    ----------
    name:
        Workload name, used in reports.
    operators:
        Operators in execution (topological) order.  Each tensor may be
        produced (appear as an output) by at most one operator, and every
        consumer must come after the producer.
    """

    def __init__(self, name: str, operators: Sequence[Operator]):
        if not operators:
            raise WorkloadError(f"workload {name!r} needs at least one operator")
        self.name = name
        self.operators: Tuple[Operator, ...] = tuple(operators)
        names = [op.name for op in self.operators]
        if len(set(names)) != len(names):
            raise WorkloadError(f"workload {name!r} has duplicate operator names")
        self._producer: Dict[str, Operator] = {}
        self._tensors: Dict[str, Tensor] = {}
        for op in self.operators:
            for t in op.tensors():
                existing = self._tensors.setdefault(t.name, t)
                if existing != t:
                    raise WorkloadError(
                        f"workload {name!r}: tensor {t.name!r} redeclared "
                        f"with a different shape")
        position = {op.name: i for i, op in enumerate(self.operators)}
        for op in self.operators:
            out = op.output.tensor.name
            if out in self._producer:
                raise WorkloadError(
                    f"workload {name!r}: tensor {out!r} produced by both "
                    f"{self._producer[out].name!r} and {op.name!r}")
            self._producer[out] = op
        for op in self.operators:
            for t in op.input_tensors():
                prod = self._producer.get(t.name)
                if prod is not None and position[prod.name] >= position[op.name]:
                    raise WorkloadError(
                        f"workload {name!r}: {op.name!r} consumes "
                        f"{t.name!r} before {prod.name!r} produces it")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def operator(self, name: str) -> Operator:
        for op in self.operators:
            if op.name == name:
                return op
        raise WorkloadError(f"workload {self.name!r} has no operator {name!r}")

    def tensor(self, name: str) -> Tensor:
        try:
            return self._tensors[name]
        except KeyError:
            raise WorkloadError(
                f"workload {self.name!r} has no tensor {name!r}") from None

    def tensors(self) -> Tuple[Tensor, ...]:
        return tuple(self._tensors.values())

    def producer(self, tensor_name: str) -> Optional[Operator]:
        """The operator producing ``tensor_name``, or None for an input."""
        return self._producer.get(tensor_name)

    def consumers(self, tensor_name: str) -> Tuple[Operator, ...]:
        """Operators reading ``tensor_name`` as an input."""
        return tuple(op for op in self.operators
                     if any(a.tensor.name == tensor_name for a in op.inputs))

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def input_tensors(self) -> Tuple[Tensor, ...]:
        """Tensors consumed but never produced (external inputs)."""
        return tuple(t for t in self._tensors.values()
                     if t.name not in self._producer)

    def output_tensors(self) -> Tuple[Tensor, ...]:
        """Produced tensors never consumed by another operator."""
        return tuple(t for t in self._tensors.values()
                     if t.name in self._producer and not self.consumers(t.name))

    def intermediate_tensors(self) -> Tuple[Tensor, ...]:
        """Tensors both produced and consumed inside the workload."""
        return tuple(t for t in self._tensors.values()
                     if t.name in self._producer and self.consumers(t.name))

    def is_intermediate(self, tensor_name: str) -> bool:
        return (tensor_name in self._producer
                and bool(self.consumers(tensor_name)))

    # ------------------------------------------------------------------
    # Aggregate properties
    # ------------------------------------------------------------------
    @property
    def total_ops(self) -> float:
        """Arithmetic operations for one full execution of every operator."""
        return sum(op.total_ops for op in self.operators)

    def dependency_chain(self) -> List[Tuple[str, str, str]]:
        """(producer, tensor, consumer) triples, in operator order."""
        chain = []
        for op in self.operators:
            for a in op.inputs:
                prod = self._producer.get(a.tensor.name)
                if prod is not None:
                    chain.append((prod.name, a.tensor.name, op.name))
        return chain

    def __repr__(self) -> str:
        ops = ", ".join(op.name for op in self.operators)
        return f"Workload({self.name}: [{ops}])"
