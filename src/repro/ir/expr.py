"""Affine index expressions over named iteration dimensions.

Operators in the workload IR describe how each tensor dimension is indexed
as a linear combination of iteration dimensions plus a constant, e.g. the
first dimension of a convolution input is ``h + r`` (output row plus filter
row).  :class:`AffineExpr` is an immutable value type supporting the small
amount of arithmetic the analysis needs: addition, scaling, evaluation at a
point, and extent computation over a box of iteration values.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple


class AffineExpr:
    """An immutable linear expression ``sum(coeff_d * d) + const``.

    Instances are hashable and comparable by value.  Construct them with the
    :func:`dim` and :func:`const` helpers or by arithmetic on existing
    expressions::

        h, r = dim("h"), dim("r")
        row = h + r            # conv input row index
        col = 2 * dim("w")     # strided access
    """

    __slots__ = ("_terms", "_const", "_hash")

    def __init__(self, terms: Mapping[str, int] = (), const: int = 0):
        cleaned = {d: int(c) for d, c in dict(terms).items() if int(c) != 0}
        self._terms: Tuple[Tuple[str, int], ...] = tuple(sorted(cleaned.items()))
        self._const = int(const)
        self._hash = hash((self._terms, self._const))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def terms(self) -> Dict[str, int]:
        """Mapping of dimension name to coefficient (non-zero entries only)."""
        return dict(self._terms)

    @property
    def const(self) -> int:
        """The constant offset of the expression."""
        return self._const

    @property
    def dims(self) -> Tuple[str, ...]:
        """Names of the dimensions with non-zero coefficient, sorted."""
        return tuple(d for d, _ in self._terms)

    def coeff(self, name: str) -> int:
        """Coefficient of dimension ``name`` (0 if absent)."""
        for d, c in self._terms:
            if d == name:
                return c
        return 0

    def is_constant(self) -> bool:
        return not self._terms

    def is_single_dim(self) -> bool:
        """True when the expression is exactly ``1 * d + 0`` for some dim."""
        return len(self._terms) == 1 and self._terms[0][1] == 1 and self._const == 0

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "AffineExpr | int") -> "AffineExpr":
        if isinstance(other, int):
            return AffineExpr(dict(self._terms), self._const + other)
        if isinstance(other, AffineExpr):
            merged = dict(self._terms)
            for d, c in other._terms:
                merged[d] = merged.get(d, 0) + c
            return AffineExpr(merged, self._const + other._const)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: "AffineExpr | int") -> "AffineExpr":
        if isinstance(other, int):
            return self + (-other)
        if isinstance(other, AffineExpr):
            return self + (other * -1)
        return NotImplemented

    def __mul__(self, factor: int) -> "AffineExpr":
        if not isinstance(factor, int):
            return NotImplemented
        return AffineExpr({d: c * factor for d, c in self._terms},
                          self._const * factor)

    __rmul__ = __mul__

    def __neg__(self) -> "AffineExpr":
        return self * -1

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, point: Mapping[str, int]) -> int:
        """Value of the expression at a concrete iteration point.

        Dimensions missing from ``point`` are treated as zero, which matches
        the analysis convention of anchoring slices at the loop origin.
        """
        value = self._const
        for d, c in self._terms:
            value += c * point.get(d, 0)
        return value

    def extent_over(self, extents: Mapping[str, int]) -> int:
        """Extent of the expression's value range over a box of iterations.

        ``extents`` maps each dimension to the number of values it takes
        (``d`` in ``[0, extents[d])``); missing dims contribute a single
        value.  The result is ``max - min + 1`` of the expression over the
        box, i.e. the length of the covered tensor-index interval assuming
        density (true for the stride patterns used by DNN operators).
        """
        span = 0
        for d, c in self._terms:
            n = max(1, int(extents.get(d, 1)))
            span += abs(c) * (n - 1)
        return span + 1

    def displacement(self, steps: Mapping[str, int]) -> int:
        """Shift of the expression's value when dims move by ``steps``."""
        shift = 0
        for d, c in self._terms:
            shift += c * steps.get(d, 0)
        return shift

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AffineExpr)
                and self._terms == other._terms
                and self._const == other._const)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for d, c in self._terms:
            if c == 1:
                parts.append(d)
            else:
                parts.append(f"{c}*{d}")
        if self._const or not parts:
            parts.append(str(self._const))
        return " + ".join(parts)


def dim(name: str) -> AffineExpr:
    """Expression consisting of a single dimension with coefficient 1."""
    return AffineExpr({name: 1})


def const(value: int) -> AffineExpr:
    """A constant expression."""
    return AffineExpr({}, value)


def exprs(*names: str) -> Tuple[AffineExpr, ...]:
    """Tuple of single-dim expressions — convenient for plain accesses."""
    return tuple(dim(n) for n in names)


def union_dims(expressions: Iterable[AffineExpr]) -> Tuple[str, ...]:
    """Sorted union of the dims referenced by ``expressions``."""
    seen = set()
    for e in expressions:
        seen.update(e.dims)
    return tuple(sorted(seen))
