"""Workload intermediate representation.

The IR describes DNN workloads as DAGs of dense operators with affine tensor
accesses over named iteration dimensions.  See :mod:`repro.workloads` for
ready-made builders (self-attention, convolution chains, matmul).
"""

from .expr import AffineExpr, const, dim, exprs, union_dims
from .operator import Operator, TensorAccess, simple_access
from .tensor import DEFAULT_WORD_BYTES, Tensor
from .workload import Workload

__all__ = [
    "AffineExpr", "const", "dim", "exprs", "union_dims",
    "Operator", "TensorAccess", "simple_access",
    "DEFAULT_WORD_BYTES", "Tensor",
    "Workload",
]
