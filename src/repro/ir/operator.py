"""Operators in the workload IR.

An operator is a perfectly nested iteration space (a polyhedron, in the
paper's terminology) over named dimensions.  Each iteration point reads one
element per input access and updates one element of the output access; the
accesses are affine in the iteration dims, which covers matrix
multiplication, convolution (via windowed expressions like ``h + r``),
reductions, broadcasts, and element-wise maps — everything the paper's
workloads need, including the five small operators the softmax is expanded
into (§7.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..errors import WorkloadError
from .expr import AffineExpr, dim, union_dims
from .tensor import Tensor


class TensorAccess:
    """An affine access of a tensor: one expression per tensor dimension."""

    __slots__ = ("tensor", "exprs", "_info")

    def __init__(self, tensor: Tensor, exprs: Sequence[AffineExpr]):
        exprs = tuple(exprs)
        if len(exprs) != tensor.rank:
            raise WorkloadError(
                f"access to {tensor.name!r} needs {tensor.rank} index "
                f"expressions, got {len(exprs)}")
        self.tensor = tensor
        self.exprs = exprs
        self._info: Optional[Tuple[str, frozenset]] = None

    @property
    def dims(self) -> Tuple[str, ...]:
        """All iteration dims referenced by this access."""
        return union_dims(self.exprs)

    def signature(self) -> Tuple[str, frozenset]:
        """(stable repr, referenced-dim set), cached on the access.

        Accesses are immutable and live as long as their workload, so
        the incremental cache keys built from them
        (:mod:`repro.analysis.datamovement`) can reuse one computed
        signature across every evaluation of that workload.
        """
        info = self._info
        if info is None:
            info = self._info = (repr(self), frozenset(self.dims))
        return info

    def extents_over(self, dim_extents: Mapping[str, int]) -> Tuple[int, ...]:
        """Slice extents per tensor dim when iteration dims span a box."""
        return tuple(e.extent_over(dim_extents) for e in self.exprs)

    def displacement(self, steps: Mapping[str, int]) -> Tuple[int, ...]:
        """Slice displacement per tensor dim when dims shift by ``steps``."""
        return tuple(e.displacement(steps) for e in self.exprs)

    def footprint_over(self, dim_extents: Mapping[str, int]) -> int:
        """Number of distinct elements touched over a box of iterations."""
        n = 1
        for e in self.extents_over(dim_extents):
            n *= e
        return n

    def __repr__(self) -> str:
        idx = ", ".join(repr(e) for e in self.exprs)
        return f"{self.tensor.name}[{idx}]"


class Operator:
    """A single dense operator over a perfectly nested iteration space.

    Parameters
    ----------
    name:
        Unique name within the workload.
    dims:
        Ordered mapping of iteration-dimension name to trip count.
    inputs / output:
        Affine tensor accesses.  Every dim referenced by an access must be
        declared in ``dims``.
    reduction_dims:
        Dims that do not appear in the output access (accumulation dims).
        Inferred from the output access when omitted.
    ops_per_point:
        Arithmetic operations performed per iteration point (1 MAC for
        matmul/conv; element-wise ops also count 1).
    kind:
        Informal tag ("mac", "exp", "max", "sub", "sum", "div", ...) used by
        the energy model and the simulator to pick a compute unit.
    """

    __slots__ = ("name", "dims", "reduction_dims", "inputs", "output",
                 "ops_per_point", "kind")

    def __init__(self, name: str, dims: Mapping[str, int],
                 inputs: Sequence[TensorAccess], output: TensorAccess,
                 reduction_dims: Optional[Iterable[str]] = None,
                 ops_per_point: float = 1.0, kind: str = "mac"):
        if not name:
            raise WorkloadError("operator name must be non-empty")
        self.name = name
        self.dims: Dict[str, int] = {d: int(s) for d, s in dims.items()}
        for d, s in self.dims.items():
            if s <= 0:
                raise WorkloadError(
                    f"operator {name!r}: dim {d!r} must be positive, got {s}")
        self.inputs = tuple(inputs)
        self.output = output
        for access in self.all_accesses():
            for d in access.dims:
                if d not in self.dims:
                    raise WorkloadError(
                        f"operator {name!r}: access {access!r} references "
                        f"undeclared dim {d!r}")
        if reduction_dims is None:
            out_dims = set(output.dims)
            reduction_dims = [d for d in self.dims if d not in out_dims]
        self.reduction_dims = frozenset(reduction_dims)
        unknown = self.reduction_dims - set(self.dims)
        if unknown:
            raise WorkloadError(
                f"operator {name!r}: unknown reduction dims {sorted(unknown)}")
        if ops_per_point <= 0:
            raise WorkloadError(
                f"operator {name!r}: ops_per_point must be positive")
        self.ops_per_point = float(ops_per_point)
        self.kind = kind
        self._check_shapes()

    # ------------------------------------------------------------------
    def _check_shapes(self) -> None:
        """Verify every access stays within its tensor's shape."""
        for access in self.all_accesses():
            extents = access.extents_over(self.dims)
            for axis, (need, have) in enumerate(
                    zip(extents, access.tensor.shape)):
                if need > have:
                    raise WorkloadError(
                        f"operator {self.name!r}: access {access!r} covers "
                        f"{need} elements on axis {axis} but tensor "
                        f"{access.tensor.name!r} only has {have}")

    # ------------------------------------------------------------------
    def all_accesses(self) -> Tuple[TensorAccess, ...]:
        """Input accesses followed by the output access."""
        return self.inputs + (self.output,)

    def tensors(self) -> Tuple[Tensor, ...]:
        """All distinct tensors touched, inputs first, output last."""
        seen: Dict[str, Tensor] = {}
        for access in self.all_accesses():
            seen.setdefault(access.tensor.name, access.tensor)
        return tuple(seen.values())

    def input_tensors(self) -> Tuple[Tensor, ...]:
        seen: Dict[str, Tensor] = {}
        for access in self.inputs:
            seen.setdefault(access.tensor.name, access.tensor)
        return tuple(seen.values())

    def access(self, tensor_name: str) -> TensorAccess:
        """The access for ``tensor_name`` (output access wins on conflict)."""
        if self.output.tensor.name == tensor_name:
            return self.output
        for a in self.inputs:
            if a.tensor.name == tensor_name:
                return a
        raise WorkloadError(
            f"operator {self.name!r} does not touch tensor {tensor_name!r}")

    def uses(self, tensor_name: str) -> bool:
        return any(a.tensor.name == tensor_name for a in self.all_accesses())

    def is_reduction(self, dim_name: str) -> bool:
        return dim_name in self.reduction_dims

    @property
    def iteration_volume(self) -> int:
        """Total number of iteration points."""
        n = 1
        for s in self.dims.values():
            n *= s
        return n

    @property
    def total_ops(self) -> float:
        """Total arithmetic operations for a full execution."""
        return self.iteration_volume * self.ops_per_point

    def __repr__(self) -> str:
        ins = ", ".join(repr(a) for a in self.inputs)
        return (f"Operator({self.name}: {self.output!r} <- {ins} "
                f"over {self.dims})")


def simple_access(tensor: Tensor, *dim_names: str) -> TensorAccess:
    """Access where each tensor dim is indexed by a single iteration dim."""
    return TensorAccess(tensor, tuple(dim(n) for n in dim_names))
