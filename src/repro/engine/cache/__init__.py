"""Tiered subtree artifact store.

The persistent half of the incremental evaluation layer, split across
three tiers (each its own module, composed by
:class:`~repro.engine.cache.l1.SubtreeArtifactCache`):

* :mod:`~repro.engine.cache.l1` — in-process bounded dicts with
  segmented (probationary/protected) eviction; the lock-free hot path.
* :mod:`~repro.engine.cache.l2` — cross-process mmap-backed shared
  store consulted on L1 miss by ``tune_population`` pool workers.
* :mod:`~repro.engine.cache.l3` — disk-backed schema-versioned shards
  keyed by namespace fingerprints; warm-starts reruns.

This package replaces the former flat ``engine/cache.py`` module; the
public surface (``LRUCache``, ``KindStore``, ``SubtreeArtifactCache``,
``DEFAULT_SUBTREE_CACHE_SIZE``) is unchanged and re-exported here.
"""

from .l1 import (DEFAULT_SUBTREE_CACHE_SIZE, TIERED_KINDS, KindStore,
                 LRUCache, SubtreeArtifactCache)
from .l2 import DEFAULT_L2_BYTES, SharedArtifactStore
from .l3 import L3_SCHEMA, DiskArtifactStore

__all__ = [
    "DEFAULT_SUBTREE_CACHE_SIZE",
    "DEFAULT_L2_BYTES",
    "L3_SCHEMA",
    "TIERED_KINDS",
    "LRUCache",
    "KindStore",
    "SubtreeArtifactCache",
    "SharedArtifactStore",
    "DiskArtifactStore",
]
