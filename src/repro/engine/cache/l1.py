"""L1 of the tiered subtree artifact store: in-process bounded dicts.

:class:`LRUCache` is a thin :class:`collections.OrderedDict` wrapper with
move-to-end-on-hit semantics and a hard entry bound.  ``maxsize <= 0``
disables the cache entirely (every ``get`` misses, ``put`` is a no-op) so
callers can switch memoization off — the benchmark's uncached baseline —
without branching at every call site.

:class:`SubtreeArtifactCache` holds per-*subtree* analysis artifacts
(slice geometry, NumPE demands, boundary-recursion volumes, validation
verdicts) that survive across ``evaluate()`` calls — the persistent half
of the incremental evaluation layer (docs/ARCHITECTURE.md).  Its probes
sit on the hottest path in the system (several dozen per candidate
evaluation), so entries live in plain per-``(namespace, kind)`` dicts
(:class:`KindStore`) that callers bind once and then probe with a single
``dict.get`` — no namespaced key tuples, no ordering bookkeeping per
hit.  The entry bound is global across stores.

Eviction is *segmented* (probationary/protected, an SLRU variant): every
insert lands in a store's probationary segment, a re-hit (reported via
:meth:`KindStore.touch`) promotes the entry to protected, and the victim
search drains probationary entries across all stores before it touches
protected ones.  High-reuse artifact kinds (``walkvol``, ``groupflows``)
therefore survive pressure from churny one-shot slice geometry, which the
old insertion-order policy evicted them to make room for.  Pass
``policy="insertion"`` to get the old behaviour back (the benchmark's
baseline arm).

The cache optionally fronts two lower tiers (attached, not owned):

* **L2** — a cross-process shared read-mostly store
  (:class:`~repro.engine.cache.l2.SharedArtifactStore`) consulted on L1
  miss so ``tune_population`` pool workers stop recomputing subtrees
  their siblings already analysed.
* **L3** — disk-backed persistence
  (:class:`~repro.engine.cache.l3.DiskArtifactStore`) consulted after
  L2, and written back by :meth:`flush_l3`, so reruns warm-start.

Only :data:`TIERED_KINDS` travel through L2/L3: ``slices`` values hold
``(leaf, access)`` object pairs referencing live trees, so they stay
L1-only.  Tier-served values re-enter L1 through the normal insert path
(probationary) and are byte-identical to fresh computation — they are
exact ints/strings or floats pickled round-trip, never re-derived.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from ... import obs

__all__ = [
    "DEFAULT_SUBTREE_CACHE_SIZE",
    "TIERED_KINDS",
    "LRUCache",
    "KindStore",
    "SubtreeArtifactCache",
]


class LRUCache:
    """Least-recently-used mapping with a fixed capacity."""

    def __init__(self, maxsize: int = 4096):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed as most-recently-used; None on miss."""
        if not self.enabled:
            self.misses += 1
            return None
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled or value is None:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()


#: Default bound for the subtree artifact cache.  Entries are small
#: (slice dicts, flow dicts, a few floats each); a search over a
#: handful of genomes visits a few thousand distinct subtrees.
DEFAULT_SUBTREE_CACHE_SIZE = 8192

#: Artifact kinds whose values are picklable pure data (exact ints,
#: strings, float tuples) and therefore safe to serve from the L2/L3
#: tiers byte-identically.  ``slices`` is deliberately absent: its
#: values carry ``(leaf, access)`` object pairs into live trees.
TIERED_KINDS = frozenset({"walkvol", "groupflows", "num_pe", "valid", "cov"})


class KindStore:
    """One ``(namespace, kind)`` family of the subtree artifact cache.

    ``data`` is the live entry dict — hot analysis loops bind a store
    once (via :meth:`AnalysisContext.shared_store
    <repro.analysis.context.AnalysisContext.shared_store>`) and probe it
    with ``store.data.get(key)`` directly, recording outcomes through
    :meth:`touch` (hit: counts and promotes probation → protected) /
    :meth:`miss_through` (miss: counts, then consults the L2/L3 tiers);
    :meth:`put` goes through the owner to maintain the cache-wide entry
    bound.  The bare :meth:`hit` / :meth:`miss` counter bumps remain for
    callers that track keys themselves.  ``None`` is not a storable
    value (it is the miss sentinel).

    Counter updates are guarded by the store's lock: the evaluation
    service probes one shared cache from several worker threads at
    once, and un-guarded ``+=`` read-modify-write cycles would lose
    increments — ``GET /stats`` and the ``== incremental analysis ==``
    profile section must stay exact.  The lock is uncontended in
    single-threaded use and costs well under a microsecond per probe.

    Lock order is owner.lock → store.lock, never the reverse:
    ``probation`` membership changes take the store lock; ``data``
    membership / ``owner.total`` / eviction bookkeeping take the owner
    lock (and may then take a victim's store lock).
    """

    __slots__ = ("data", "probation", "kind", "namespace",
                 "hits", "misses", "evictions",
                 "l2_hits", "l3_hits", "lock", "_owner")

    def __init__(self, owner: "SubtreeArtifactCache", kind: str = "",
                 namespace: str = ""):
        self.data: Dict[Hashable, Any] = {}
        #: Keys inserted but not yet re-hit; always a subset of ``data``.
        #: A plain dict used as an insertion-ordered set.
        self.probation: Dict[Hashable, None] = {}
        #: Artifact family name; lets eviction be attributed per kind.
        self.kind = kind
        self.namespace = namespace
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: L1 misses served by the shared / disk tier (subset of
        #: ``misses`` — a tier hit still counts as an L1 miss, so the
        #: existing ``hits + misses == probe count`` invariants hold).
        self.l2_hits = 0
        self.l3_hits = 0
        self.lock = threading.Lock()
        self._owner = owner

    def hit(self, n: int = 1) -> None:
        """Record ``n`` hits (counter only; no promotion)."""
        with self.lock:
            self.hits += n

    def miss(self, n: int = 1) -> None:
        """Record ``n`` misses (counter only; no tier consultation)."""
        with self.lock:
            self.misses += n

    def touch(self, key: Hashable) -> None:
        """Record a hit on ``key`` and promote it out of probation."""
        with self.lock:
            self.hits += 1
            if self._owner.segmented:
                self.probation.pop(key, None)

    def miss_through(self, key: Hashable) -> Optional[Any]:
        """Record a miss on ``key``, then consult the lower tiers.

        Returns the tier-served value (re-admitted into L1) or ``None``
        when no tier holds it.  Kinds outside :data:`TIERED_KINDS` never
        reach the tiers.
        """
        with self.lock:
            self.misses += 1
        owner = self._owner
        if self.kind not in TIERED_KINDS:
            return None
        l2 = owner.l2
        if l2 is not None:
            value = l2.get(self.namespace, self.kind, key)
            if value is not None:
                with self.lock:
                    self.l2_hits += 1
                owner._admit(self, key, value)
                return value
        if owner.l3 is not None:
            value = owner._l3_lookup(self.namespace, self.kind, key)
            if value is not None:
                with self.lock:
                    self.l3_hits += 1
                owner._admit(self, key, value)
                if l2 is not None:
                    l2.put(self.namespace, self.kind, key, value)
                return value
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a freshly computed value (L1 + the shared L2 tier)."""
        owner = self._owner
        if value is None:
            return
        if owner.maxsize > 0:
            owner._admit(self, key, value)
        l2 = owner.l2
        if l2 is not None and self.kind in TIERED_KINDS:
            l2.put(self.namespace, self.kind, key, value)


class SubtreeArtifactCache:
    """Cross-evaluation cache of per-subtree analysis artifacts.

    Entries live in per-``(namespace, kind)`` :class:`KindStore` dicts:
    ``kind`` names the artifact family (``"slices"``, ``"num_pe"``,
    ``"walkvol"``, ``"groupflows"``, ``"valid"``, ``"cov"``) and the
    namespace pins the workload/architecture/model-flag combination
    (:func:`~repro.analysis.fingerprint.cache_namespace`).  Keys within
    a store are structural subtree fingerprints (or fingerprint-derived
    tuples) from :mod:`repro.analysis.fingerprint` — so a mapper move
    that leaves a sibling subtree untouched finds that subtree's
    artifacts here instead of recomputing them, across tree objects and
    across ``EvaluationEngine.evaluate*`` calls.

    Consumers must treat cached values as immutable.  The total entry
    count is bounded by ``maxsize``; the eviction policy is segmented
    (probation-first, see module docstring) unless constructed with
    ``policy="insertion"``.  Hit/miss counters live on the stores; the
    aggregate properties feed ``engine.subtree_hits`` /
    ``engine.subtree_misses``.  Tier hits are counted *in addition to*
    the L1 miss that triggered them, so ``hits + misses`` still equals
    the probe count and ``l2_hits + l3_hits <= misses``.
    """

    def __init__(self, maxsize: int = DEFAULT_SUBTREE_CACHE_SIZE,
                 policy: str = "segmented"):
        if policy not in ("segmented", "insertion"):
            raise ValueError(f"unknown eviction policy: {policy!r}")
        self.maxsize = int(maxsize)
        self.policy = policy
        self.segmented = policy == "segmented"
        self.total = 0
        #: Running eviction total (cheap int; avoids store iteration on
        #: the engine's per-evaluation snapshot/diff path).
        self.eviction_count = 0
        #: Guards store creation, inserts, and evictions (``total`` /
        #: ``eviction_count`` / per-store ``evictions`` and ``data``
        #: membership changes).  Entry *reads* stay lock-free:
        #: ``dict.get`` is atomic under the GIL and cached values are
        #: immutable by contract.
        self.lock = threading.Lock()
        self._stores: Dict[Tuple[str, str], KindStore] = {}
        #: Attached lower tiers (may be None; see attach_l2 / attach_l3).
        self.l2 = None
        self.l3 = None
        #: Lazily loaded on-disk shards, one dict per (namespace, kind).
        self._l3_entries: Dict[Tuple[str, str], Dict[Hashable, Any]] = {}
        self._l3_lock = threading.Lock()

    # -- tier attachment -------------------------------------------------

    def attach_l2(self, l2) -> None:
        """Front the cache with a cross-process shared store."""
        self.l2 = l2

    def attach_l3(self, l3) -> None:
        """Front the cache with a disk-persistent store."""
        self.l3 = l3
        with self._l3_lock:
            self._l3_entries.clear()

    def _l3_lookup(self, namespace: str, kind: str,
                   key: Hashable) -> Optional[Any]:
        """Probe the (lazily loaded) disk shard of one namespace/kind."""
        l3 = self.l3
        if l3 is None:
            return None
        shard_key = (namespace, kind)
        shard = self._l3_entries.get(shard_key)
        if shard is None:
            with self._l3_lock:
                shard = self._l3_entries.get(shard_key)
                if shard is None:
                    shard = l3.load(namespace, kind)
                    self._l3_entries[shard_key] = shard
        return shard.get(key)

    def flush_l3(self) -> Dict[str, int]:
        """Write tiered-kind entries back to the disk store.

        Merges the resident L1 entries with the loaded shard image (so a
        flush never shrinks a shard) and returns ``kind -> entries
        written``.  No-op without an attached L3.
        """
        l3 = self.l3
        if l3 is None:
            return {}
        written: Dict[str, int] = {}
        for (ns, kind), store in list(self._stores.items()):
            if kind not in TIERED_KINDS or not store.data:
                continue
            merged: Dict[Hashable, Any] = {}
            with self._l3_lock:
                loaded = self._l3_entries.get((ns, kind))
            if loaded:
                merged.update(loaded)
            with self.lock:
                merged.update(store.data)
            n = l3.flush(ns, kind, merged)
            written[kind] = written.get(kind, 0) + n
        return written

    # -- store access ----------------------------------------------------

    def store(self, namespace: str, kind: str) -> KindStore:
        """The (created-on-demand) store of one namespace/kind pair."""
        key = (namespace, kind)
        store = self._stores.get(key)
        if store is None:
            with self.lock:
                store = self._stores.get(key)
                if store is None:
                    store = self._stores[key] = KindStore(
                        self, kind, namespace)
        return store

    # -- insertion / eviction --------------------------------------------

    def _admit(self, store: KindStore, key: Hashable, value: Any) -> None:
        """Insert into L1 under the bound; new entries start probationary."""
        if self.maxsize <= 0 or value is None:
            return
        with self.lock:
            if key not in store.data:
                if self.total >= self.maxsize:
                    self._evict_one_locked(store)
                self.total += 1
                if self.segmented:
                    with store.lock:
                        store.probation[key] = None
            store.data[key] = value

    def evict_one(self, preferred: KindStore) -> None:
        """Drop one entry to make room (policy-directed victim choice)."""
        with self.lock:
            self._evict_one_locked(preferred)

    def _evict_one_locked(self, preferred: KindStore) -> None:
        """Eviction body; caller holds :attr:`lock`.

        Segmented policy: prefer probationary entries — first from the
        store being written, else from the store with the most
        probationary entries anywhere.  Only when no probation exists
        does a protected entry go (oldest of the preferred store).
        Insertion policy: the old behaviour — oldest entry of the
        preferred store, falling back to the largest store when the
        preferred one is empty (a fresh kind being inserted into a full
        cache).
        """
        victim = preferred
        if self.segmented and not victim.probation:
            candidates = [s for s in self._stores.values() if s.probation]
            if candidates:
                victim = max(candidates, key=lambda s: len(s.probation))
        if not victim.data:
            victim = max(self._stores.values(), key=lambda s: len(s.data))
            if not victim.data:  # pragma: no cover - maxsize == 0 guard
                return
        with victim.lock:
            if victim.probation:
                key = next(iter(victim.probation))
                victim.probation.pop(key, None)
            else:
                key = next(iter(victim.data))
            victim.data.pop(key, None)
        victim.evictions += 1
        self.eviction_count += 1
        self.total -= 1
        # Evictions are orders of magnitude rarer than probes, so the
        # per-kind profile counter can live here rather than on a
        # snapshot/diff path.
        obs.count(f"engine.subtree_evictions.{victim.kind}")

    # -- aggregate counters ----------------------------------------------

    @property
    def hits(self) -> int:
        return sum(s.hits for s in list(self._stores.values()))

    @property
    def misses(self) -> int:
        return sum(s.misses for s in list(self._stores.values()))

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in list(self._stores.values()))

    def __len__(self) -> int:
        return self.total

    def counts(self, namespace: Optional[str] = None) -> Tuple[int, int]:
        """(hits, misses) — snapshot/diff pairs for per-call attribution.

        ``namespace`` restricts the sum to one workload/arch family so
        an engine sharing this cache with concurrently-running engines
        (the evaluation service) attributes only its *own* probes.
        """
        hits = misses = 0
        for (ns, _kind), s in list(self._stores.items()):
            if namespace is not None and ns != namespace:
                continue
            hits += s.hits
            misses += s.misses
        return hits, misses

    def tier_counts(self, namespace: Optional[str] = None
                    ) -> Tuple[int, int]:
        """(l2_hits, l3_hits) — snapshot/diff pairs, as :meth:`counts`."""
        l2 = l3 = 0
        for (ns, _kind), s in list(self._stores.items()):
            if namespace is not None and ns != namespace:
                continue
            l2 += s.l2_hits
            l3 += s.l3_hits
        return l2, l3

    def evictions_by_kind(self) -> Dict[str, int]:
        """Eviction totals attributed per artifact kind (all namespaces)."""
        out: Dict[str, int] = {}
        for (_ns, kind), s in list(self._stores.items()):
            if s.evictions:
                out[kind] = out.get(kind, 0) + s.evictions
        return out

    def counts_by_kind(self, namespace: Optional[str] = None
                       ) -> Dict[str, Tuple[int, int, int]]:
        """``kind -> (hits, misses, evictions)`` — per-evaluation event
        deltas diff two of these snapshots (optionally scoped to one
        namespace, as :meth:`counts`)."""
        out: Dict[str, Tuple[int, int, int]] = {}
        for (ns, kind), s in list(self._stores.items()):
            if namespace is not None and ns != namespace:
                continue
            h, m, e = out.get(kind, (0, 0, 0))
            out[kind] = (h + s.hits, m + s.misses, e + s.evictions)
        return out

    def tier_counts_by_kind(self, namespace: Optional[str] = None
                            ) -> Dict[str, Tuple[int, int]]:
        """``kind -> (l2_hits, l3_hits)``, as :meth:`counts_by_kind`."""
        out: Dict[str, Tuple[int, int]] = {}
        for (ns, kind), s in list(self._stores.items()):
            if namespace is not None and ns != namespace:
                continue
            l2, l3 = out.get(kind, (0, 0))
            out[kind] = (l2 + s.l2_hits, l3 + s.l3_hits)
        return out

    def stats(self) -> Dict[str, Any]:
        by_hits: Dict[str, int] = {}
        by_misses: Dict[str, int] = {}
        protected = 0
        probationary = 0
        for (_ns, kind), s in list(self._stores.items()):
            by_hits[kind] = by_hits.get(kind, 0) + s.hits
            by_misses[kind] = by_misses.get(kind, 0) + s.misses
            probationary += len(s.probation)
            protected += len(s.data) - len(s.probation)
        l2_hits, l3_hits = self.tier_counts()
        out = {"hits": self.hits, "misses": self.misses,
               "entries": len(self), "evictions": self.evictions,
               "policy": self.policy,
               "probationary": probationary, "protected": protected,
               "l2_hits": l2_hits, "l3_hits": l3_hits,
               "hits_by_kind": by_hits, "misses_by_kind": by_misses,
               "evictions_by_kind": self.evictions_by_kind()}
        if self.l2 is not None:
            out["l2"] = self.l2.stats()
        if self.l3 is not None:
            out["l3"] = {"root": str(self.l3.root)}
        return out

    # -- lifecycle -------------------------------------------------------

    def clear(self, drop_l3_mirror: bool = False) -> None:
        """Drop every resident L1 entry.

        Counters (hits/misses/evictions, tier hits, ``eviction_count``)
        deliberately survive: they are lifetime telemetry, and the
        engine's snapshot/diff attribution must not observe them moving
        backwards mid-evaluation.  Call :meth:`reset_counters` to zero
        them explicitly.  The loaded L3 shard images survive too (they
        mirror disk, which ``clear`` does not touch) unless
        ``drop_l3_mirror`` is set — subsequent probes then re-read disk.
        """
        with self.lock:
            for s in self._stores.values():
                with s.lock:
                    s.data.clear()
                    s.probation.clear()
            self.total = 0
        if drop_l3_mirror:
            with self._l3_lock:
                self._l3_entries.clear()

    def reset_counters(self) -> None:
        """Zero every hit/miss/eviction/tier counter (entries survive).

        The counterpart of :meth:`clear` for the counter half of the
        cache's state; ``POST /admin/cache/clear`` uses both to return a
        service to a truly cold-and-quiet baseline.
        """
        with self.lock:
            for s in self._stores.values():
                with s.lock:
                    s.hits = 0
                    s.misses = 0
                    s.evictions = 0
                    s.l2_hits = 0
                    s.l3_hits = 0
            self.eviction_count = 0
