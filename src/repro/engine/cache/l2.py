"""L2 of the tiered subtree artifact store: cross-process shared memory.

:class:`SharedArtifactStore` is an append-mostly log of pickled artifact
entries in a single mmap-backed file, shared by the parent engine and
its ``tune_population`` :class:`~concurrent.futures.ProcessPoolExecutor`
workers (and, in principle, by any set of cooperating processes handed
the same path).  Design constraints, in order:

* **Read-mostly and lock-free on reads.**  Readers never take the file
  lock: the header's committed-tail offset is published *after* a
  record's bytes are fully written, so a reader parsing ``[index
  cursor, tail)`` only ever sees complete records.  A probe is a local
  dict lookup plus, at worst, an incremental parse of records appended
  since the last probe.
* **Append-mostly.**  Entries are immutable (same contract as L1) and
  never deleted; a full log stops accepting appends (``dropped``
  counts them) rather than evicting — L2 is a sidecar, not the source
  of truth, and the file dies with the run.
* **Exact bytes.**  Values are pickled with the highest protocol;
  ints/strings/floats round-trip exactly, preserving the engine's
  byte-identity contract for tier-served artifacts.

Records are ``[u32 key_len][u32 val_len][key bytes][pickle bytes]``
after a 16-byte header (magic, schema, committed tail, flags).  Keys
are ``repr((namespace, kind, key)).encode()`` — artifact keys are
tuples of primitives with stable reprs, and the namespace string
already pins workload/arch/model flags, so equal reprs mean equal
artifacts.  Writers serialise appends with :func:`fcntl.flock` on the
backing file and re-scan the tail under the lock, so duplicate keys
appended racily resolve to first-writer-wins (readers index the first
occurrence).
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import tempfile
import threading
from typing import Any, Dict, Hashable, Optional, Tuple

try:  # pragma: no cover - import guard exercised only off-linux
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = ["DEFAULT_L2_BYTES", "SharedArtifactStore"]

#: Default byte size of the shared log.  Artifact values are small
#: (ints, short tuples, flow dicts of a few dozen floats); 16 MiB holds
#: far more entries than the L1 bound admits.
DEFAULT_L2_BYTES = 16 * 1024 * 1024

_MAGIC = b"TFL2"
_SCHEMA = 1
_HEADER = struct.Struct("<4sIII")  # magic, schema, committed tail, flags
_RECORD = struct.Struct("<II")     # key_len, val_len
_FLAG_FULL = 1


class SharedArtifactStore:
    """Cross-process append-mostly artifact log over one mmap'd file."""

    def __init__(self, path: str, size: int = DEFAULT_L2_BYTES,
                 create: bool = False):
        self.path = path
        self._lock = threading.Lock()
        #: key bytes -> (value offset, value length); lazily extended.
        self._index: Dict[bytes, Tuple[int, int]] = {}
        self._cursor = _HEADER.size
        self.hits = 0
        self.misses = 0
        self.appends = 0
        #: Appends refused (log full or unpicklable value).
        self.dropped = 0
        flags = os.O_RDWR | (os.O_CREAT if create else 0)
        self._fd = os.open(path, flags, 0o600)
        if create:
            os.ftruncate(self._fd, size)
            self.size = size
            self._mm = mmap.mmap(self._fd, size)
            with self._flocked():
                if self._mm[:4] != _MAGIC:
                    _HEADER.pack_into(self._mm, 0, _MAGIC, _SCHEMA,
                                      _HEADER.size, 0)
        else:
            self.size = os.fstat(self._fd).st_size
            self._mm = mmap.mmap(self._fd, self.size)
            magic, schema, _tail, _flags = _HEADER.unpack_from(self._mm, 0)
            if magic != _MAGIC or schema != _SCHEMA:
                self.close()
                raise ValueError(
                    f"not a v{_SCHEMA} shared artifact store: {path}")

    # -- construction helpers -------------------------------------------

    @classmethod
    def create(cls, size: int = DEFAULT_L2_BYTES,
               dir: Optional[str] = None) -> "SharedArtifactStore":
        """A fresh store in an unlinked-on-close temp file."""
        fd, path = tempfile.mkstemp(prefix="repro-l2-", suffix=".bin",
                                    dir=dir)
        os.close(fd)
        return cls(path, size=size, create=True)

    @classmethod
    def attach(cls, path: str) -> "SharedArtifactStore":
        """Attach to an existing store (pool workers)."""
        return cls(path)

    # -- internals -------------------------------------------------------

    def _flocked(self):
        return _Flock(self._fd)

    @staticmethod
    def _key_bytes(namespace: str, kind: str, key: Hashable) -> bytes:
        return repr((namespace, kind, key)).encode("utf-8")

    def _tail(self) -> int:
        return _HEADER.unpack_from(self._mm, 0)[2]

    def _refresh(self) -> None:
        """Index records appended since the last scan (lock-free read)."""
        tail = self._tail()
        cursor = self._cursor
        mm = self._mm
        while cursor < tail:
            klen, vlen = _RECORD.unpack_from(mm, cursor)
            koff = cursor + _RECORD.size
            voff = koff + klen
            kb = bytes(mm[koff:voff])
            self._index.setdefault(kb, (voff, vlen))
            cursor = voff + vlen
        self._cursor = cursor

    # -- public API ------------------------------------------------------

    @property
    def full(self) -> bool:
        return bool(_HEADER.unpack_from(self._mm, 0)[3] & _FLAG_FULL)

    def __len__(self) -> int:
        with self._lock:
            self._refresh()
            return len(self._index)

    def get(self, namespace: str, kind: str, key: Hashable) -> Optional[Any]:
        kb = self._key_bytes(namespace, kind, key)
        with self._lock:
            entry = self._index.get(kb)
            if entry is None and self._cursor < self._tail():
                self._refresh()
                entry = self._index.get(kb)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            voff, vlen = entry
        return pickle.loads(self._mm[voff:voff + vlen])

    def put(self, namespace: str, kind: str, key: Hashable,
            value: Any) -> bool:
        """Append an entry; False when already present, full, or unpicklable."""
        kb = self._key_bytes(namespace, kind, key)
        with self._lock:
            if kb in self._index:
                return False
        try:
            vb = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with self._lock:
                self.dropped += 1
            return False
        need = _RECORD.size + len(kb) + len(vb)
        with self._flocked():
            with self._lock:
                self._refresh()
                if kb in self._index:
                    return False
                tail = self._cursor
                if tail + need > self.size:
                    flags = _HEADER.unpack_from(self._mm, 0)[3]
                    _HEADER.pack_into(self._mm, 0, _MAGIC, _SCHEMA, tail,
                                      flags | _FLAG_FULL)
                    self.dropped += 1
                    return False
                _RECORD.pack_into(self._mm, tail, len(kb), len(vb))
                koff = tail + _RECORD.size
                voff = koff + len(kb)
                self._mm[koff:voff] = kb
                self._mm[voff:voff + len(vb)] = vb
                # Publish the record only after its bytes are in place.
                flags = _HEADER.unpack_from(self._mm, 0)[3]
                _HEADER.pack_into(self._mm, 0, _MAGIC, _SCHEMA,
                                  voff + len(vb), flags)
                self._index[kb] = (voff, len(vb))
                self._cursor = voff + len(vb)
                self.appends += 1
        return True

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            self._refresh()
            return {"path": self.path, "size": self.size,
                    "used": self._cursor, "entries": len(self._index),
                    "hits": self.hits, "misses": self.misses,
                    "appends": self.appends, "dropped": self.dropped,
                    "full": self.full}

    def close(self) -> None:
        try:
            self._mm.close()
        except (BufferError, ValueError):  # pragma: no cover
            pass
        try:
            os.close(self._fd)
        except OSError:  # pragma: no cover
            pass

    def unlink(self) -> None:
        """Close and remove the backing file (creator-side cleanup)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


class _Flock:
    """``with``-scoped advisory file lock (no-op where flock is absent)."""

    def __init__(self, fd: int):
        self._fd = fd

    def __enter__(self):
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc):
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
        return False
