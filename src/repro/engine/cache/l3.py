"""L3 of the tiered subtree artifact store: disk-backed persistence.

:class:`DiskArtifactStore` persists tiered artifact kinds between
processes and runs so CI reruns, sensitivity sweeps, and ``repro
serve`` restarts warm-start instead of recomputing every subtree from
scratch — the same discipline the ``BENCH_*`` baselines use for
measurements.

Layout under the cache dir::

    <root>/v1/<sha256(namespace)[:20]>/
        meta.json        # {"schema": 1, "namespace": "<full ns string>"}
        walkvol.pkl      # {"schema": 1, "namespace": ..., "kind": ...,
        groupflows.pkl   #  "entries": {key: value, ...}}
        ...

Invalidation is structural, not temporal: the namespace string embeds
the workload digest, architecture identity, and model flags
(:func:`~repro.analysis.fingerprint.cache_namespace`), and keys within
a shard are subtree fingerprints — change any of them and probes simply
address a different shard/key; stale shards linger harmlessly until
``repro cache purge``.  The shard payload additionally records its full
namespace and schema, and :meth:`load` cross-checks both (hash-prefix
collisions and format drift read as a cold cache, never as wrong data).

Writes are atomic (tmp file + :func:`os.replace`) and merge-then-replace
under an advisory :func:`fcntl.flock` on a per-shard-dir lock file, so
concurrent flushes from several processes union rather than clobber.
Values round-trip through pickle byte-identically (exact ints, strings,
float tuples — see ``TIERED_KINDS``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import threading
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional

try:  # pragma: no cover - import guard exercised only off-linux
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = ["L3_SCHEMA", "DiskArtifactStore"]

L3_SCHEMA = 1


def _ns_dir_name(namespace: str) -> str:
    return hashlib.sha256(namespace.encode("utf-8")).hexdigest()[:20]


class DiskArtifactStore:
    """Schema-versioned on-disk shards of tiered subtree artifacts."""

    def __init__(self, root: str):
        #: Versioned root; a schema bump starts cold instead of
        #: misreading old shards.
        self.root = Path(root) / f"v{L3_SCHEMA}"
        self.loads = 0
        self.load_entries = 0
        self.flushes = 0
        self.invalid = 0
        self._lock = threading.Lock()

    def _shard_dir(self, namespace: str) -> Path:
        return self.root / _ns_dir_name(namespace)

    def _flocked(self, shard_dir: Path):
        return _DirLock(shard_dir / ".lock")

    # -- read side -------------------------------------------------------

    def load(self, namespace: str, kind: str) -> Dict[Hashable, Any]:
        """The persisted entries of one namespace/kind shard ({} if cold).

        Schema or namespace mismatches (format drift, hash-prefix
        collision) and unreadable files all read as an empty shard.
        """
        path = self._shard_dir(namespace) / f"{kind}.pkl"
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return {}
        if (not isinstance(payload, dict)
                or payload.get("schema") != L3_SCHEMA
                or payload.get("namespace") != namespace
                or payload.get("kind") != kind
                or not isinstance(payload.get("entries"), dict)):
            with self._lock:
                self.invalid += 1
            return {}
        entries = payload["entries"]
        with self._lock:
            self.loads += 1
            self.load_entries += len(entries)
        return entries

    # -- write side ------------------------------------------------------

    def flush(self, namespace: str, kind: str,
              entries: Dict[Hashable, Any]) -> int:
        """Merge ``entries`` into the shard on disk; returns entry count.

        Concurrent flushers serialise on the shard lock file, re-read
        the shard under the lock, union, and atomically replace — a
        flush never loses another process's entries.
        """
        if not entries:
            return 0
        shard_dir = self._shard_dir(namespace)
        shard_dir.mkdir(parents=True, exist_ok=True)
        meta = shard_dir / "meta.json"
        with self._flocked(shard_dir):
            if not meta.exists():
                tmp = meta.with_suffix(".json.tmp")
                tmp.write_text(json.dumps(
                    {"schema": L3_SCHEMA, "namespace": namespace},
                    indent=1, sort_keys=True) + "\n")
                os.replace(tmp, meta)
            merged = dict(self.load(namespace, kind))
            merged.update(entries)
            payload = {"schema": L3_SCHEMA, "namespace": namespace,
                       "kind": kind, "entries": merged}
            path = shard_dir / f"{kind}.pkl"
            tmp_path = shard_dir / f".{kind}.pkl.tmp"
            with open(tmp_path, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        with self._lock:
            self.flushes += 1
        return len(merged)

    # -- inventory / maintenance ----------------------------------------

    def _shards(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.iterdir()
                      if p.is_dir() and (p / "meta.json").exists())

    def stats(self) -> Dict[str, Any]:
        """On-disk inventory: per-namespace kinds, entries, bytes."""
        namespaces = []
        total_entries = 0
        total_bytes = 0
        for shard_dir in self._shards():
            try:
                meta = json.loads((shard_dir / "meta.json").read_text())
                ns = meta.get("namespace", "?")
            except (OSError, ValueError):
                ns = "?"
            kinds: Dict[str, Dict[str, int]] = {}
            shard_bytes = 0
            for pkl in sorted(shard_dir.glob("*.pkl")):
                size = pkl.stat().st_size
                shard_bytes += size
                entries = len(self.load(ns, pkl.stem)) if ns != "?" else 0
                kinds[pkl.stem] = {"entries": entries, "bytes": size}
                total_entries += entries
            total_bytes += shard_bytes
            namespaces.append({"namespace": ns, "dir": shard_dir.name,
                               "kinds": kinds, "bytes": shard_bytes})
        return {"root": str(self.root), "schema": L3_SCHEMA,
                "namespaces": namespaces,
                "total_entries": total_entries,
                "total_bytes": total_bytes}

    def purge(self, selector: Optional[str] = None) -> List[str]:
        """Remove shards whose namespace (or dir hash) starts with
        ``selector``; all shards when ``selector`` is None.  Returns the
        namespaces removed.  Only directories carrying a ``meta.json``
        marker are touched — the store never deletes files it did not
        write."""
        removed = []
        for shard_dir in self._shards():
            try:
                meta = json.loads((shard_dir / "meta.json").read_text())
                ns = meta.get("namespace", "")
            except (OSError, ValueError):
                ns = ""
            if (selector is None or ns.startswith(selector)
                    or shard_dir.name.startswith(selector)):
                shutil.rmtree(shard_dir, ignore_errors=True)
                removed.append(ns or shard_dir.name)
        return removed

    def purge_budget(self, max_age_s: Optional[float] = None,
                     max_bytes: Optional[int] = None) -> List[str]:
        """Budget-driven purge: drop stale shards, then trim to a size cap.

        Two independent budgets, either may be None:

        * ``max_age_s`` — remove every shard whose newest ``.pkl`` was
          last written more than this many seconds ago (age is
          per-shard mtime, so one warm kind keeps its namespace alive);
        * ``max_bytes`` — while the remaining shards' total ``.pkl``
          bytes exceed this cap, remove whole shards oldest-mtime-first
          (never partial shards: a namespace warm-starts completely or
          not at all).

        Returns the namespaces removed, oldest first.  Like
        :meth:`purge`, only ``meta.json``-marked directories are
        touched.
        """
        import time

        shards = []  # (mtime, bytes, dir, namespace)
        for shard_dir in self._shards():
            try:
                meta = json.loads((shard_dir / "meta.json").read_text())
                ns = meta.get("namespace", "") or shard_dir.name
            except (OSError, ValueError):
                ns = shard_dir.name
            mtime = 0.0
            size = 0
            for pkl in shard_dir.glob("*.pkl"):
                try:
                    stat = pkl.stat()
                except OSError:
                    continue
                mtime = max(mtime, stat.st_mtime)
                size += stat.st_size
            shards.append((mtime, size, shard_dir, ns))
        shards.sort(key=lambda item: item[0])

        removed: List[str] = []
        kept = []
        now = time.time()
        for mtime, size, shard_dir, ns in shards:
            if max_age_s is not None and now - mtime > max_age_s:
                shutil.rmtree(shard_dir, ignore_errors=True)
                removed.append(ns)
            else:
                kept.append((mtime, size, shard_dir, ns))
        if max_bytes is not None:
            total = sum(size for _m, size, _d, _n in kept)
            for mtime, size, shard_dir, ns in kept:
                if total <= max_bytes:
                    break
                shutil.rmtree(shard_dir, ignore_errors=True)
                removed.append(ns)
                total -= size
        return removed

    def clear(self) -> int:
        """Remove every shard; returns the number removed."""
        return len(self.purge(None))


class _DirLock:
    """``with``-scoped advisory lock on a shard-dir lock file."""

    def __init__(self, path: Path):
        self._path = path
        self._fd: Optional[int] = None

    def __enter__(self):
        if fcntl is not None:
            self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o600)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc):
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
            self._fd = None
        return False
