"""The evaluation engine: memoized, pre-screened, parallel mapping evaluation.

:class:`EvaluationEngine` sits between the mapper's search loops and
:class:`~repro.analysis.model.TileFlowModel`.  Every complete mapping
(genome + tiling factors, or template + tiling factors) is reduced to a
canonical signature (:mod:`repro.engine.signature`) backing a bounded LRU
cache of :class:`~repro.analysis.metrics.EvaluationResult`s, so repeated
points — across MCTS samples, GA generations, and ``tune_template``
calls sharing one engine — are never analysed twice.  Cache misses first
pass the cheap feasibility pre-screen (:mod:`repro.engine.prescreen`);
only candidates it cannot reject pay for the full five-stage analysis.

Below the whole-mapping memo sits the *incremental* layer: a persistent
:class:`~repro.engine.cache.SubtreeArtifactCache` keyed by structural
subtree fingerprints (:mod:`repro.engine.signature`).  A mapper move
perturbs one subtree, so the next evaluation reuses every untouched
sibling's slice geometry and data-movement flows from earlier
candidates and only recomputes the mutated path to the root —
byte-identical results, structurally less work per candidate.

``workers > 1`` adds process-level parallelism for GA populations: each
genome's MCTS factor tune is an independent task (the per-genome seeds
are drawn up front by the caller from the generation RNG), tasks are
dispatched to a persistent :class:`~concurrent.futures.ProcessPoolExecutor`,
and results are collected in submission order — so results are
deterministic and byte-identical regardless of worker count.  Platforms
without usable multiprocessing (or ``workers=1``) fall back to the
serial path transparently.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..analysis import EvaluationResult, TileFlowModel
from ..arch import Architecture
from ..ir import Workload
from ..mapper.cost import Cost, edp_cost, latency_cost
from ..mapper.encoding import (Genome, build_genome_tree,
                               genome_factor_space)
from ..mapper.mcts import MCTSTuner
from ..obs import events
from ..tile.tree import AnalysisTree
from .cache import (DEFAULT_SUBTREE_CACHE_SIZE, DiskArtifactStore, LRUCache,
                    SharedArtifactStore, SubtreeArtifactCache)
from .prescreen import prescreen, rejected_result
from .signature import (arch_fingerprint, cache_namespace, digest,
                        mapping_signature, template_signature,
                        workload_fingerprint)

TemplateFn = Callable[..., AnalysisTree]

#: Default memo-cache bound (entries, not bytes; results are small).
DEFAULT_CACHE_SIZE = 4096

#: Bound on the per-engine genome -> CohortEvaluator registry.
_COHORT_REGISTRY_SIZE = 64

_UNSET = object()


def _have_numpy() -> bool:
    try:
        from ..analysis.batched import HAVE_NUMPY
        return HAVE_NUMPY
    except Exception:  # pragma: no cover - defensive
        return False

_OBJECTIVES: Dict[str, Callable[[EvaluationResult, bool], Cost]] = {
    "latency": latency_cost,
    "edp": edp_cost,
}


@dataclass
class EngineStats:
    """Aggregate engine effectiveness counters (serial + worker merged)."""

    cache_hits: int = 0
    cache_misses: int = 0
    evaluations: int = 0
    prescreen_rejects: int = 0
    parallel_tasks: int = 0
    #: Evaluations that stopped at the resource pass (violations found
    #: before latency/energy ran; partial-evaluation fast path).
    early_exits: int = 0
    #: Subtree artifact cache lookups served from / missing in the
    #: persistent cross-evaluation store (incremental analysis layer).
    subtree_hits: int = 0
    subtree_misses: int = 0
    #: Entries dropped from the subtree artifact cache to honour its
    #: bound (per-kind attribution lives on the cache itself).
    subtree_evictions: int = 0
    #: Subtree L1 misses served by the cross-process shared store (L2)
    #: or the disk-persistent store (L3).  Subsets of
    #: ``subtree_misses`` — a tier hit is still an L1 miss.
    subtree_l2_hits: int = 0
    subtree_l3_hits: int = 0
    #: Energy passes skipped for EDP-objective candidates already known
    #: infeasible.
    edp_energy_skipped: int = 0
    #: Candidates priced by the batched cohort layer (array-native
    #: structure-class sweeps; each would otherwise be a scalar walk).
    batched_evaluations: int = 0
    #: Candidates handed to the batched layer for pricing (sweep input
    #: size; ``batched_evaluations / batch_fill`` is the batch yield).
    batch_fill: int = 0
    #: Batched candidates returned to the scalar path (unbatchable
    #: structure class, int64 overflow, or cross-check mismatch).
    batch_fallbacks: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, delta: Mapping[str, int]) -> None:
        for name, n in delta.items():
            setattr(self, name, getattr(self, name) + int(n))

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


class EvaluationEngine:
    """Evaluates mappings for one (workload, architecture) pair.

    Parameters
    ----------
    workload, arch:
        The search context; both are folded into every cache signature.
    respect_memory:
        Passed to the cost objective; also disables the memory half of
        the pre-screen (capacity violations are not rejections then).
    workers:
        Process-pool width for :meth:`tune_population`.  ``1`` (default)
        keeps everything in-process.
    cache_size:
        LRU bound; ``0`` disables memoization (benchmark baseline).
    prescreen:
        Run the cheap feasibility screen before full evaluations.
    partial:
        Use partial evaluation on the search path: stop at the resource
        pass when a candidate is infeasible (``respect_memory`` only —
        with memory violations tolerated, latency is still needed), and
        skip passes the search objective never reads (energy, for the
        latency objective).  Champion lookups (``full=True``) always run
        the full pipeline.  Search trajectories are unchanged; only
        wasted passes are skipped.
    model_eviction, model_rmw:
        Forwarded to :class:`TileFlowModel` (ablation switches).
    objective:
        ``"latency"`` or ``"edp"`` — named so worker processes can
        reconstruct the engine from picklable configuration.
    incremental:
        Keep a persistent :class:`SubtreeArtifactCache` across
        evaluations so a mapper move reuses every untouched sibling
        subtree's slice geometry and data-movement flows and only
        recomputes the mutated path to the root.  Results are
        byte-identical either way (oracle- and property-tested); this
        is purely a performance knob, on by default.
    subtree_cache_size:
        Entry bound of that cache; ``0`` disables it (equivalent to
        ``incremental=False``).
    subtree_cache:
        An existing :class:`SubtreeArtifactCache` to use instead of a
        private one — the evaluation service shares one store across
        every engine it owns so artifacts discovered by one job warm
        every later job.  Entries are namespaced by workload/arch/flag
        fingerprints, so sharing never mixes artifact families; this
        engine's hit/miss attribution is scoped to its own namespace.
    cache_dir:
        Directory of the disk-persistent artifact tier (L3).  When the
        engine owns its subtree cache, artifacts of the tiered kinds
        are loaded from here on first miss and flushed back on
        :meth:`shutdown`, so reruns warm-start.  Ignored when an
        external ``subtree_cache`` is supplied — its owner decides the
        tiering (the service attaches its own L3).
    cache_persist:
        Write the L3 tier back on shutdown (reads still happen).
        ``False`` makes a warm-started run leave the disk untouched.
    """

    def __init__(self, workload: Workload, arch: Architecture, *,
                 respect_memory: bool = True, workers: int = 1,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 prescreen: bool = True, partial: bool = True,
                 model_eviction: bool = True,
                 model_rmw: bool = True, objective: str = "latency",
                 incremental: bool = True, batched: bool = True,
                 subtree_cache_size: int = DEFAULT_SUBTREE_CACHE_SIZE,
                 subtree_cache: Optional[SubtreeArtifactCache] = None,
                 cache_dir: Optional[str] = None,
                 cache_persist: bool = True):
        if objective not in _OBJECTIVES:
            raise ValueError(f"unknown objective {objective!r}; choose from "
                             f"{sorted(_OBJECTIVES)}")
        self.workload = workload
        self.arch = arch
        self.respect_memory = respect_memory
        self.workers = max(1, int(workers))
        self.prescreen_enabled = prescreen
        self.partial_enabled = partial
        self.objective = objective
        # The latency objective never reads energy; EDP needs both.
        self._until = "latency" if objective == "latency" else None
        self.model = TileFlowModel(arch, model_eviction=model_eviction,
                                   model_rmw=model_rmw)
        self.stats = EngineStats()
        self._cache = LRUCache(cache_size)
        self._cache_size = cache_size
        self._incremental = incremental
        self._subtree_cache_size = subtree_cache_size
        #: Persistent cross-evaluation subtree artifact store (None when
        #: incremental evaluation is off).  May be shared across engines
        #: (the service passes one store to every engine it builds).
        self._cache_persist = cache_persist
        self._owns_subtree_cache = False
        if subtree_cache is not None and incremental:
            self.subtree_cache: Optional[SubtreeArtifactCache] = subtree_cache
        else:
            self.subtree_cache = (
                SubtreeArtifactCache(subtree_cache_size)
                if incremental and subtree_cache_size > 0 else None)
            self._owns_subtree_cache = self.subtree_cache is not None
            if self._owns_subtree_cache and cache_dir:
                self.subtree_cache.attach_l3(DiskArtifactStore(cache_dir))
        #: Cross-process shared tier, created lazily with the worker
        #: pool (there is nothing to share before workers exist).
        self._l2: Optional[SharedArtifactStore] = None
        self._base = (workload_fingerprint(workload), arch_fingerprint(arch),
                      model_eviction, model_rmw)
        #: This engine's slice of a (possibly shared) subtree cache —
        #: the same namespace its analysis contexts bind stores under.
        self._subtree_ns = cache_namespace(workload, arch, model_eviction,
                                           model_rmw)
        self._cost_fn = _OBJECTIVES[objective]
        self._templates: Dict[int, Tuple[str, TemplateFn]] = {}
        self._pool = None
        self._pool_broken = False
        #: Batched cohort layer (``analysis.batched``): prices sibling
        #: factor candidates in one vectorized sweep.  Only engaged for
        #: the plain latency-under-memory search objective — the only
        #: cost contract the array templates mirror — and only when
        #: NumPy is importable; otherwise every path stays scalar.
        self.batched = bool(batched)
        self._batch_enabled = (self.batched and objective == "latency"
                               and respect_memory and _have_numpy())
        #: genome -> CohortEvaluator (or None when construction failed);
        #: bounded, evaluators keep per-genome cost tables warm across
        #: GA generations.
        self._cohorts: "OrderedDict" = OrderedDict()

    # -- configuration ---------------------------------------------------
    def config(self) -> Dict[str, object]:
        """Picklable kwargs reproducing this engine (minus workers)."""
        return {
            "respect_memory": self.respect_memory,
            "cache_size": self._cache_size,
            "prescreen": self.prescreen_enabled,
            "partial": self.partial_enabled,
            "model_eviction": self.model.model_eviction,
            "model_rmw": self.model.model_rmw,
            "objective": self.objective,
            "incremental": self._incremental,
            "batched": self.batched,
            "subtree_cache_size": self._subtree_cache_size,
        }

    def cost_of(self, result: EvaluationResult) -> Cost:
        """The search objective of an evaluated mapping."""
        return self._cost_fn(result, self.respect_memory)

    # -- bookkeeping -----------------------------------------------------
    def _bump(self, name: str, n: int = 1) -> None:
        setattr(self.stats, name, getattr(self.stats, name) + n)
        obs.count(f"engine.{name}", n)

    # -- memoized evaluation ---------------------------------------------
    def _evaluate_key(self, key, tree_of: Callable[[], AnalysisTree],
                      full: bool = False,
                      memo: bool = True) -> EvaluationResult:
        # Event payloads (signature digests, per-kind snapshots) are only
        # built when the bus is live — the disabled path pays one module
        # read per evaluation.
        emitting = events.is_enabled()
        key_digest = digest(key) if emitting else ""
        if memo:
            cached = self._cache.get(key)
            if cached is not None and not (full and cached.partial):
                self._bump("cache_hits")
                if emitting:
                    events.emit("engine.memo", outcome="hit",
                                mapping=key_digest, full=bool(full))
                return cached
            self._bump("cache_misses")
            if emitting:
                events.emit("engine.memo", outcome="miss",
                            mapping=key_digest, full=bool(full))
        tree = tree_of()
        # One context serves the screen and the evaluation: the screen's
        # validation and slice geometry are reused when the pipeline
        # resumes for the full run.  The persistent subtree cache makes
        # the context incremental across evaluations: artifacts of
        # subtrees shared with previously analysed candidates are served
        # instead of recomputed.
        subtree = self.subtree_cache
        ns = self._subtree_ns
        before = subtree.counts(ns) if subtree is not None else (0, 0)
        before_tier = subtree.tier_counts(ns) if subtree is not None else (0, 0)
        before_ev = subtree.eviction_count if subtree is not None else 0
        before_kinds = (subtree.counts_by_kind(ns)
                        if emitting and subtree is not None else None)
        ctx = self.model.context(tree, artifact_cache=subtree)
        result: Optional[EvaluationResult] = None
        if self.prescreen_enabled and not full:
            violations = prescreen(tree, self.arch,
                                   check_memory=self.respect_memory,
                                   context=ctx)
            if violations:
                self._bump("prescreen_rejects")
                if emitting:
                    events.emit(
                        "prescreen.reject", mapping=key_digest,
                        codes=list(ctx.get("bound_violation_codes") or ()))
                result = rejected_result(tree, self.arch, violations)
        if result is None:
            self._bump("evaluations")
            if full or not self.partial_enabled:
                result = self.model.evaluate(tree, context=ctx)
            elif self.objective == "edp" and not self.respect_memory:
                # EDP with violations tolerated: memory-violating
                # candidates still need latency *and* energy, but
                # compute violations are hard rejections — probe up to
                # latency first and only pay for the energy pass when
                # the candidate can still score.
                result = self.model.evaluate(tree, context=ctx,
                                             until="latency")
                if any(v.startswith("compute") for v in result.violations):
                    self._bump("edp_energy_skipped")
                else:
                    result = self.model.evaluate(tree, context=ctx)
            else:
                # Early-exit on violations only when the cost function
                # treats them as rejections; with respect_memory=False
                # it still needs the latency of memory-violating
                # mappings (compute violations are exactly caught by
                # the pre-screen's NumPE bound above).
                result = self.model.evaluate(
                    tree, context=ctx, until=self._until,
                    stop_on_violation=self.respect_memory)
                if result.partial and result.violations:
                    self._bump("early_exits")
                    if (self.objective == "edp"
                            and "energy" not in result.completed_passes):
                        self._bump("edp_energy_skipped")
        if subtree is not None:
            hits, misses = subtree.counts(ns)
            if hits > before[0]:
                self._bump("subtree_hits", hits - before[0])
            if misses > before[1]:
                self._bump("subtree_misses", misses - before[1])
            if subtree.eviction_count > before_ev:
                self._bump("subtree_evictions",
                           subtree.eviction_count - before_ev)
            l2_hits, l3_hits = subtree.tier_counts(ns)
            if l2_hits > before_tier[0]:
                self._bump("subtree_l2_hits", l2_hits - before_tier[0])
            if l3_hits > before_tier[1]:
                self._bump("subtree_l3_hits", l3_hits - before_tier[1])
            if before_kinds is not None:
                after_kinds = subtree.counts_by_kind(ns)
                for kind in sorted(after_kinds):
                    h, m, e = after_kinds[kind]
                    bh, bm, be = before_kinds.get(kind, (0, 0, 0))
                    if h > bh or m > bm or e > be:
                        events.emit("engine.subtree", kind=kind,
                                    hits=h - bh, misses=m - bm,
                                    evictions=e - be)
        if memo:
            self._cache.put(key, result)
        return result

    def evaluate_genome(self, genome: Genome,
                        factors: Mapping[str, int],
                        full: bool = False) -> EvaluationResult:
        """Memoized evaluation of one genome mapping.

        ``full=True`` guarantees a completely analysed result (champion
        reporting): pre-screen short-circuits are bypassed and any cached
        placeholder is replaced by a real evaluation.
        """
        key = mapping_signature(self._base, genome, factors)
        return self._evaluate_key(
            key, lambda: build_genome_tree(self.workload, self.arch,
                                           genome, factors), full=full)

    def mapping_digest(self, genome: Genome,
                       factors: Mapping[str, int]) -> str:
        """Stable hex digest of one genome mapping's memo signature —
        the run ledger's champion identity."""
        return digest(mapping_signature(self._base, genome, factors))

    def genome_cost(self, genome: Genome,
                    factors: Mapping[str, int]) -> Cost:
        cost = self.cost_of(self.evaluate_genome(genome, factors))
        obs.count("mapper.evaluations")
        if cost == float("inf"):
            obs.count("mapper.infeasible")
        return cost

    # -- templates -------------------------------------------------------
    def _template_token(self, template: TemplateFn) -> str:
        entry = self._templates.get(id(template))
        if entry is None:
            token = (f"{getattr(template, '__qualname__', 'template')}"
                     f"#{len(self._templates)}")
            # Hold a strong reference so id() stays unambiguous.
            self._templates[id(template)] = (token, template)
            return token
        return entry[0]

    def evaluate_template(self, template: TemplateFn,
                          factors: Mapping[str, int],
                          full: bool = False) -> EvaluationResult:
        """Memoized evaluation of a named-dataflow template point."""
        key = template_signature(self._base, self._template_token(template),
                                 factors)
        return self._evaluate_key(
            key, lambda: template(self.workload, self.arch, dict(factors)),
            full=full)

    # -- pre-built trees -------------------------------------------------
    def evaluate_tree(self, tree: AnalysisTree,
                      full: bool = True) -> EvaluationResult:
        """One full evaluation of a pre-built tree through the
        incremental layer, bypassing the whole-mapping memo.

        This is the evaluation service's ``evaluate``/``sweep`` job
        path: every job pays for a real pipeline run (so repeated jobs
        measure true evaluation latency), while subtree artifacts flow
        through the shared :class:`SubtreeArtifactCache` — a repeated
        job is served almost entirely from warm artifacts.  Subtree
        hit/miss counters and ``engine.subtree`` events are maintained
        exactly as on the memoized paths.
        """
        key = (self._base, "tree", tree.name)
        return self._evaluate_key(key, lambda: tree, full=full, memo=False)

    @property
    def namespace_digest(self) -> str:
        """Hex digest of this engine's cache namespace (workload + arch
        + model flags) — the run ledger's ``namespace`` field."""
        return digest(self._base)

    # -- per-genome MCTS tuning ------------------------------------------
    def tune_genome(self, genome: Genome, seed: int,
                    samples: int) -> Tuple[Cost, Dict[str, int]]:
        """One MCTS factor tune of one genome (the GA fitness)."""
        space = genome_factor_space(self.workload, genome)
        tuner = MCTSTuner(space,
                          lambda point: self.genome_cost(genome, point),
                          seed=seed,
                          batch=self._cohort_hook(genome, space, samples))
        point, cost = tuner.search(samples)
        return cost, (point or {})

    def _cohort_hook(self, genome: Genome, space, samples: int):
        """The batched layer's tuner hook for ``genome`` (or ``None``).

        Evaluators are cached per genome so a GA re-tuning the same
        genome next generation reuses both its structure-class
        templates and every already-swept sibling cost.  Short tunes
        (``samples`` below the batched layer's break-even budget) stay
        purely scalar: a sweep prices a whole sibling cohort up front,
        and a search that asks for a few dozen points will never visit
        enough of them to amortize the sweep.
        """
        if not self._batch_enabled:
            return None
        from ..analysis.batched.sweep import BATCH_MIN_SAMPLES
        if samples < BATCH_MIN_SAMPLES:
            return None
        evaluator = self._cohorts.get(genome, _UNSET)
        if evaluator is _UNSET:
            try:
                from ..analysis.batched.sweep import CohortEvaluator
                evaluator = CohortEvaluator(self, genome, space)
            except Exception:
                evaluator = None
            self._cohorts[genome] = evaluator
            while len(self._cohorts) > _COHORT_REGISTRY_SIZE:
                self._cohorts.popitem(last=False)
        else:
            self._cohorts.move_to_end(genome)
        return evaluator.mcts_hook if evaluator is not None else None

    def tune_population(self, genomes: Sequence[Genome],
                        seeds: Sequence[int],
                        samples: int) -> List[Tuple[Cost, Dict[str, int]]]:
        """Fitness of a GA generation, parallel when ``workers > 1``.

        Results are returned in input order; per-genome outcomes depend
        only on (genome, seed, samples), so serial and parallel runs are
        byte-identical.
        """
        if len(genomes) != len(seeds):
            raise ValueError("genomes and seeds must have equal length")
        pool = self._ensure_pool() if self.workers > 1 else None
        if pool is None:
            return [self.tune_genome(g, s, samples)
                    for g, s in zip(genomes, seeds)]
        try:
            collect = events.is_enabled()
            futures = [pool.submit(_worker_tune, genome, seed, samples,
                                   collect)
                       for genome, seed in zip(genomes, seeds)]
            out: List[Tuple[Cost, Dict[str, int]]] = []
            for future in futures:
                (cost, factors, delta, evict_kinds, elapsed,
                 records) = future.result()
                if records:
                    # Replaying in submission order makes the parent's
                    # event stream deterministic for any worker count.
                    events.record(records)
                self.stats.merge(delta)
                for name, n in delta.items():
                    obs.count(f"engine.{name}", n)
                for kind, n in evict_kinds.items():
                    obs.count(f"engine.subtree_evictions.{kind}", n)
                # Worker-side ``genome_cost`` calls count one cache
                # lookup each; replay them into the mapper's counter,
                # which the workers' private obs registries never ship.
                obs.count("mapper.evaluations",
                          delta.get("cache_hits", 0)
                          + delta.get("cache_misses", 0))
                self._bump("parallel_tasks")
                obs.observe("engine.task_seconds", elapsed)
                out.append((cost, factors))
            return out
        except Exception:
            # Broken pool (killed worker, unpicklable payload, ...):
            # disable parallelism and redo the whole batch serially —
            # the outcome is identical, only slower.
            self._teardown_pool(broken=True)
            return [self.tune_genome(g, s, samples)
                    for g, s in zip(genomes, seeds)]

    # -- process pool ----------------------------------------------------
    def _ensure_pool(self):
        if self._pool is not None or self._pool_broken:
            return self._pool
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            # Stand up the cross-process shared tier (L2) alongside the
            # pool: workers publish freshly computed subtree artifacts
            # there and consult it on L1 miss, so N workers stop
            # rediscovering the same subtrees N times.  The parent
            # engine attaches too — post-search champion evaluations
            # reuse worker-discovered artifacts.
            l2_path = None
            if self.subtree_cache is not None and self._l2 is None:
                try:
                    self._l2 = SharedArtifactStore.create()
                except OSError:  # pragma: no cover - no usable tmpdir
                    self._l2 = None
                if self._l2 is not None:
                    self.subtree_cache.attach_l2(self._l2)
            if self._l2 is not None:
                l2_path = self._l2.path
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=_worker_init,
                initargs=(self.workload, self.arch, self.config(), l2_path))
            obs.gauge("engine.workers", self.workers)
        except Exception:  # pragma: no cover - platform-dependent
            self._pool_broken = True
            self._pool = None
        return self._pool

    def _teardown_pool(self, broken: bool = False) -> None:
        pool, self._pool = self._pool, None
        self._pool_broken = self._pool_broken or broken
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Release the worker pool and run-scoped cache tiers.

        Idempotent; the engine stays usable (a later ``tune_population``
        simply stands the pool and L2 back up).  When the engine owns
        its subtree cache, tiered artifacts are flushed to the L3 disk
        store here (unless constructed with ``cache_persist=False``).
        """
        self._teardown_pool()
        cache = self.subtree_cache
        if cache is not None:
            if self._l2 is not None:
                # The shared log dies with the run; detach before
                # unlinking so later probes don't read a closed mmap.
                cache.attach_l2(None)
                self._l2.unlink()
                self._l2 = None
            if (self._owns_subtree_cache and self._cache_persist
                    and cache.l3 is not None):
                cache.flush_l3()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
# Worker-process side.  Each worker holds one serial engine, built once by
# the pool initializer; its private cache stays warm across the tasks (and
# GA generations) the worker serves, and its counter deltas are shipped
# back with every result for the parent to merge.

_WORKER_ENGINE: Optional[EvaluationEngine] = None


def _worker_init(workload: Workload, arch: Architecture,
                 config: Dict[str, object],
                 l2_path: Optional[str] = None) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = EvaluationEngine(workload, arch, workers=1, **config)
    if l2_path is not None and _WORKER_ENGINE.subtree_cache is not None:
        try:
            _WORKER_ENGINE.subtree_cache.attach_l2(
                SharedArtifactStore.attach(l2_path))
        except (OSError, ValueError):  # pragma: no cover - racing unlink
            pass


def _worker_tune(genome: Genome, seed: int, samples: int,
                 collect_events: bool = False):
    import time

    engine = _WORKER_ENGINE
    assert engine is not None, "worker pool initializer did not run"
    sink: Optional[events.RingSink] = None
    if collect_events:
        # Record this task's events into an unbounded ring and ship them
        # back as picklable records; the parent replays them in
        # submission order so the merged stream is deterministic.
        sink = events.RingSink(capacity=None)
        events.enable(sinks=[sink])
    before = engine.stats.to_dict()
    before_kinds = (engine.subtree_cache.evictions_by_kind()
                    if engine.subtree_cache is not None else {})
    start = time.perf_counter()
    try:
        cost, factors = engine.tune_genome(genome, seed, samples)
    finally:
        if sink is not None:
            events.disable()
    elapsed = time.perf_counter() - start
    after = engine.stats.to_dict()
    delta = {name: after[name] - before[name] for name in after}
    after_kinds = (engine.subtree_cache.evictions_by_kind()
                   if engine.subtree_cache is not None else {})
    evict_kinds = {kind: n - before_kinds.get(kind, 0)
                   for kind, n in after_kinds.items()
                   if n > before_kinds.get(kind, 0)}
    records = events.as_records(sink.events) if sink is not None else None
    return cost, factors, delta, evict_kinds, elapsed, records
