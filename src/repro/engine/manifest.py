"""Run-ledger manifest assembly for engine-backed runs.

One construction path shared by the CLI (``repro search --ledger``) and
the evaluation service (``repro serve``): both call
:func:`search_run_manifest`, so a search submitted over HTTP records a
manifest *structurally identical* to the CLI's — the same keys, the
same fingerprint digests, the same champion signature — and every
ledger consumer (``repro runs list|show|diff``, ``repro explain
--run``) works unchanged on service output.

:mod:`repro.obs.ledger` stays engine-agnostic (it never imports the
engine); this module is the engine-aware layer on top of its
:func:`~repro.obs.ledger.build_manifest`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from ..arch import Architecture
from ..ir import Workload
from ..mapper.mapper import MapperResult
from ..obs import events as events_mod
from ..obs import ledger as ledger_mod
from .signature import arch_fingerprint, digest, workload_fingerprint


def search_run_manifest(*, run_id: str, engine, workload: Workload,
                        arch: Architecture, result: MapperResult,
                        generations: int, population: int, samples: int,
                        workers: int, seed: int, wall_s: float,
                        counters: Optional[Mapping[str, Any]] = None,
                        extra: Optional[Mapping[str, Any]] = None
                        ) -> Dict[str, Any]:
    """The ``repro search`` ledger manifest for one mapper run.

    ``counters`` defaults to the engine's full stats snapshot (exact
    for a fresh per-run engine); the service passes a per-job delta
    instead, since its engines accumulate across jobs.  The champion
    carries its JSON genome ``encoding`` so ``repro explain --run`` can
    rebuild the mapping's tree from the manifest alone.
    """
    champion: Dict[str, Any] = {
        "cost": events_mod.jsonable_cost(result.best_cost),
        "signature": engine.mapping_digest(result.best_genome,
                                           result.best_factors),
        "genome": result.best_genome.describe(workload),
        "encoding": result.best_genome.encode(),
        "factors": dict(result.best_factors),
    }
    return ledger_mod.build_manifest(
        run_id=run_id, command="search",
        workload={"name": workload.name,
                  "fingerprint": digest(workload_fingerprint(workload))},
        arch={"name": arch.name,
              "fingerprint": digest(arch_fingerprint(arch))},
        config=dict(engine.config(), generations=generations,
                    population=population, samples=samples,
                    workers=workers),
        seeds={"seed": seed},
        champion=champion,
        counters=dict(counters if counters is not None
                      else engine.stats.to_dict()),
        wall_s=wall_s,
        namespace=engine.namespace_digest,
        extra=extra)


def evaluate_run_manifest(*, run_id: str, engine, workload: Workload,
                          arch: Architecture, dataflow: str, result,
                          wall_s: float,
                          counters: Optional[Mapping[str, Any]] = None,
                          extra: Optional[Mapping[str, Any]] = None
                          ) -> Dict[str, Any]:
    """Ledger manifest for one named-dataflow evaluation (service
    ``evaluate`` jobs).  The champion is the evaluated mapping itself:
    its cost under the engine's objective and the dataflow name, which
    ``repro explain --run`` resolves back into a tree."""
    champion: Dict[str, Any] = {
        "cost": events_mod.jsonable_cost(engine.cost_of(result)),
        "signature": None,
        "dataflow": dataflow,
        "latency_cycles": events_mod.jsonable_cost(result.latency_cycles),
        "energy_pj": events_mod.jsonable_cost(result.energy_pj),
    }
    return ledger_mod.build_manifest(
        run_id=run_id, command="evaluate",
        workload={"name": workload.name,
                  "fingerprint": digest(workload_fingerprint(workload))},
        arch={"name": arch.name,
              "fingerprint": digest(arch_fingerprint(arch))},
        config=dict(engine.config()),
        seeds={},
        champion=champion,
        counters=dict(counters if counters is not None
                      else engine.stats.to_dict()),
        wall_s=wall_s,
        namespace=engine.namespace_digest,
        extra=extra)
