"""Canonical mapping signatures for the evaluation engine.

A complete mapping is identified by (workload, architecture, model
configuration, genome, tiling-factor point).  The functions here reduce
each component to a canonical tuple of primitives — insertion order of
factor dicts, set iteration order, and object identity all wash out — so
equal mappings always produce equal keys, across GA generations, MCTS
samples, and worker processes.

The tuple form (:func:`mapping_signature`) is what the in-memory LRU
cache keys on; :func:`digest` renders any signature as a short stable
hex string for logs and tests.

The *structural subtree* fingerprints backing the incremental
evaluation layer (:class:`~repro.engine.cache.SubtreeArtifactCache`
keys) are re-exported here from :mod:`repro.analysis.fingerprint`,
their implementation home — the analysis context cannot import the
engine package without a cycle.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Tuple

# Re-exported: subtree fingerprints and shared-cache namespacing.
from ..analysis.fingerprint import (cache_namespace,  # noqa: F401
                                    node_fingerprints, subtree_fingerprint,
                                    workload_digest)
from ..arch import Architecture
from ..ir import Operator, Workload
from ..mapper.encoding import Genome

Signature = Tuple


def _operator_fingerprint(op: Operator) -> Tuple:
    def access_fp(access) -> Tuple:
        return (access.tensor.name, access.tensor.shape,
                access.tensor.word_bytes,
                tuple(repr(e) for e in access.exprs))

    return (op.name, op.kind, tuple(sorted(op.dims.items())),
            tuple(sorted(op.reduction_dims)), op.ops_per_point,
            tuple(access_fp(a) for a in op.inputs), access_fp(op.output))


def workload_fingerprint(workload: Workload) -> Signature:
    """Canonical identity of a workload (name, operators, tensors)."""
    return (workload.name,
            tuple(_operator_fingerprint(op) for op in workload.operators))


def arch_fingerprint(arch: Architecture) -> Signature:
    """Canonical identity of an architecture specification."""
    levels = tuple((lv.name, lv.capacity_bytes, lv.bandwidth_gbs, lv.fanout,
                    lv.read_energy_pj, lv.write_energy_pj)
                   for lv in arch.levels)
    return (arch.name, levels, arch.pe_count, arch.vector_pe_count,
            arch.frequency_ghz, arch.mac_energy_pj)


def genome_fingerprint(genome: Genome) -> Signature:
    return (tuple(genome.fuse_edges),
            tuple(b.value for b in genome.bindings))


def factors_fingerprint(factors: Mapping[str, int]) -> Signature:
    return tuple(sorted((str(k), int(v)) for k, v in factors.items()))


def mapping_signature(base: Signature, genome: Genome,
                      factors: Mapping[str, int]) -> Signature:
    """Cache key of one complete genome mapping.

    ``base`` is the engine's precomputed (workload, arch, model-config)
    prefix, shared by every key of one engine instance.
    """
    return (base, "genome", genome_fingerprint(genome),
            factors_fingerprint(factors))


def template_signature(base: Signature, template_token: str,
                       factors: Mapping[str, int]) -> Signature:
    """Cache key of one named-template mapping (``tune_template``)."""
    return (base, "template", template_token,
            factors_fingerprint(factors))


def digest(signature: Signature) -> str:
    """Stable 16-hex-char digest of any signature tuple."""
    return hashlib.sha256(repr(signature).encode()).hexdigest()[:16]
