"""Cheap feasibility pre-screen for complete mappings.

Before the engine pays for a full five-stage evaluation it bounds the
mapping's resource demands from the tree structure alone:

* **Compute** — the §5.2 ``NumPE`` recursion is purely structural, so the
  pre-screen computes it exactly and compares against the PE pools.
* **Memory** — for every node whose level has finite capacity, the bytes
  staged by that node's own slices are a *lower bound* on the level's
  final per-instance footprint: the full analysis adds child
  contributions and double-buffering on top and never subtracts.  Slice
  extents come from the same :mod:`repro.analysis.slices` arithmetic the
  real analysis uses, but the expensive reuse-walk volumes, latency, and
  energy stages are all skipped.

Both bounds are conservative by construction: the pre-screen never
rejects a mapping the full model would find feasible (property-tested in
``tests/property/test_prop_engine.py``), so search trajectories are
identical with and without it — rejected points would have cost
``INFEASIBLE`` either way.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.metrics import EvaluationResult, ResourceUsage
from ..analysis.slices import box_volume, merged_extents, slice_extents
from ..arch import Architecture
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode

#: Suffix marking violations produced by the pre-screen (the engine uses
#: it to recognise short-circuited results and re-evaluate champions).
PRESCREEN_TAG = "(prescreen lower bound)"


def compute_demand(node: TileNode) -> Tuple[int, int]:
    """(MAC PEs, vector PEs) used concurrently by the subtree.

    Mirrors :meth:`repro.analysis.resources.ResourceAnalysis._num_pe`
    exactly — the recursion needs no data-movement information.
    """
    if node.is_leaf():
        assert isinstance(node, OpTile)
        used = node.spatial_trip_count
        return (used, 0) if node.op.kind == "mac" else (0, used)
    sp = node.spatial_trip_count
    if isinstance(node, OpTile):
        mac, vec = compute_demand(node.child)
        return sp * mac, sp * vec
    assert isinstance(node, FusionNode)
    demands = [compute_demand(c) for c in node.children]
    if node.binding.shares_compute_in_time:
        mac = max(d[0] for d in demands)
        vec = max(d[1] for d in demands)
    else:
        mac = sum(d[0] for d in demands)
        vec = sum(d[1] for d in demands)
    return sp * mac, sp * vec


def _staged_bytes_lower_bound(tree: AnalysisTree, node: TileNode) -> float:
    """Bytes one instance of ``node``'s buffer must hold per time step.

    Sums each tensor's bounding-box slice over the accesses below the
    node — the single-buffered floor of the resource analysis's
    ``_staged_bytes`` (which additionally doubles crossing tensors).
    """
    per_tensor: Dict[str, List[Tuple[int, ...]]] = {}
    for leaf in node.leaves():
        for access in leaf.op.all_accesses():
            per_tensor.setdefault(access.tensor.name, []).append(
                slice_extents(node, leaf, access))
    total = 0.0
    for tensor_name, extents_list in per_tensor.items():
        words = box_volume(merged_extents(extents_list))
        total += words * tree.workload.tensor(tensor_name).word_bytes
    return total


def prescreen(tree: AnalysisTree, arch: Architecture,
              check_memory: bool = True) -> List[str]:
    """Violations provable without the full analysis (empty = may pass).

    Returns at most one compute and one memory violation — the screen
    stops at the first proof of infeasibility per resource class, since
    one is enough to reject.
    """
    problems: List[str] = []
    mac, vec = compute_demand(tree.root)
    if mac > arch.pe_count:
        problems.append(f"compute: {mac} MAC PEs needed, "
                        f"{arch.pe_count} available {PRESCREEN_TAG}")
    elif vec > arch.vector_pe_count:
        problems.append(f"compute: {vec} vector lanes needed, "
                        f"{arch.vector_pe_count} available {PRESCREEN_TAG}")
    if not check_memory:
        return problems
    for node in tree.nodes():
        level = arch.level(node.level)
        if level.capacity_bytes is None:
            continue
        used = _staged_bytes_lower_bound(tree, node)
        if used > level.capacity_bytes:
            problems.append(
                f"memory: level {level.name} needs at least "
                f"{used / 1024:.1f} KB per instance, capacity "
                f"{level.capacity_bytes / 1024:.1f} KB {PRESCREEN_TAG}")
            break
    return problems


def rejected_result(tree: AnalysisTree, arch: Architecture,
                    violations: List[str]) -> EvaluationResult:
    """A placeholder result for a pre-screen-rejected mapping.

    Carries the violations (so cost functions classify it exactly like a
    fully analysed infeasible mapping) but no traffic/latency detail.
    """
    return EvaluationResult(
        tree_name=tree.name, arch_name=arch.name,
        latency_cycles=0.0, energy_pj=0.0,
        total_ops=tree.workload.total_ops,
        traffic={}, resources=ResourceUsage(), violations=list(violations))


def is_prescreened(result: EvaluationResult) -> bool:
    """True for results produced by :func:`rejected_result`."""
    return any(PRESCREEN_TAG in v for v in result.violations)
