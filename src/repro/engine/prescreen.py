"""Cheap feasibility pre-screen: the analysis pipeline's cheap prefix.

Before the engine pays for a full evaluation it runs
:data:`~repro.analysis.pipeline.PRESCREEN_PIPELINE` — validate ->
slices -> resource bounds — over the candidate's
:class:`~repro.analysis.context.AnalysisContext`.  The bounds pass
(:class:`~repro.analysis.pipeline.ResourceBoundsPass`) proves compute
demand exactly (the structural ``NumPE`` recursion) and lower-bounds
per-node staged bytes with crossing tensors double-buffered exactly as
the full resource analysis does; both are conservative, so the screen
never
rejects a mapping the full model would find feasible (property-tested
in ``tests/property/test_prop_engine.py``) and search trajectories are
identical with and without it.

Because the prefix runs on the same context a subsequent full
evaluation resumes, its validation and slice geometry are not repeated
work — the pipeline skips completed passes.  This module is a thin
compatibility wrapper; the recursion logic lives in
:mod:`repro.analysis.context` / :mod:`repro.analysis.pipeline`.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.context import AnalysisContext, num_pe_demand
from ..analysis.metrics import EvaluationResult, ResourceUsage
from ..analysis.pipeline import PRESCREEN_PIPELINE, PRESCREEN_TAG
from ..arch import Architecture
from ..tile.tree import AnalysisTree, TileNode

__all__ = ["PRESCREEN_TAG", "compute_demand", "prescreen",
           "rejected_result", "is_prescreened"]


def compute_demand(node: TileNode):
    """(MAC PEs, vector PEs) used concurrently by the subtree.

    Alias of :func:`repro.analysis.context.num_pe_demand` — the single
    home of the §5.2 ``NumPE`` recursion.
    """
    return num_pe_demand(node)


def prescreen(tree: AnalysisTree, arch: Architecture,
              check_memory: bool = True,
              context: Optional[AnalysisContext] = None) -> List[str]:
    """Violations provable without the full analysis (empty = may pass).

    Returns at most one compute and one memory violation — the screen
    stops at the first proof of infeasibility per resource class, since
    one is enough to reject.  Pass ``context`` to share work with a
    subsequent full evaluation of the same tree (the pipeline resumes
    where the screen stopped).
    """
    ctx = context if context is not None else AnalysisContext(tree, arch)
    ctx.check_memory = check_memory
    PRESCREEN_PIPELINE.run(ctx)
    return list(ctx.get("bound_violations") or ())


def rejected_result(tree: AnalysisTree, arch: Architecture,
                    violations: List[str]) -> EvaluationResult:
    """A placeholder result for a pre-screen-rejected mapping.

    Carries the violations (so cost functions classify it exactly like a
    fully analysed infeasible mapping) but no traffic/latency detail.
    """
    return EvaluationResult(
        tree_name=tree.name, arch_name=arch.name,
        latency_cycles=0.0, energy_pj=0.0,
        total_ops=tree.workload.total_ops,
        traffic={}, resources=ResourceUsage(), violations=list(violations),
        partial=True, completed_passes=PRESCREEN_PIPELINE.names())


def is_prescreened(result: EvaluationResult) -> bool:
    """True for results produced by :func:`rejected_result`."""
    return any(PRESCREEN_TAG in v for v in result.violations)
