"""Bounded LRU memo cache for evaluation results.

A thin :class:`collections.OrderedDict` wrapper with move-to-end-on-hit
semantics and a hard entry bound.  ``maxsize <= 0`` disables the cache
entirely (every ``get`` misses, ``put`` is a no-op) so callers can switch
memoization off — the benchmark's uncached baseline — without branching
at every call site.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class LRUCache:
    """Least-recently-used mapping with a fixed capacity."""

    def __init__(self, maxsize: int = 4096):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed as most-recently-used; None on miss."""
        if not self.enabled:
            self.misses += 1
            return None
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled or value is None:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()
