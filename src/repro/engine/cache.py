"""Bounded LRU caches backing the evaluation engine.

:class:`LRUCache` is a thin :class:`collections.OrderedDict` wrapper with
move-to-end-on-hit semantics and a hard entry bound.  ``maxsize <= 0``
disables the cache entirely (every ``get`` misses, ``put`` is a no-op) so
callers can switch memoization off — the benchmark's uncached baseline —
without branching at every call site.

:class:`SubtreeArtifactCache` holds per-*subtree* analysis artifacts
(slice geometry, NumPE demands, boundary-recursion volumes, validation
verdicts) that survive across ``evaluate()`` calls — the persistent half
of the incremental evaluation layer (docs/ARCHITECTURE.md).  Its probes
sit on the hottest path in the system (several dozen per candidate
evaluation), so entries live in plain per-``(namespace, kind)`` dicts
(:class:`KindStore`) that callers bind once and then probe with a single
``dict.get`` — no namespaced key tuples, no ordering bookkeeping per
hit.  The entry bound is global across stores; eviction is
insertion-order within a store (the oldest entries of the family being
written), which approximates LRU at a fraction of its per-hit cost.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from .. import obs


class LRUCache:
    """Least-recently-used mapping with a fixed capacity."""

    def __init__(self, maxsize: int = 4096):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed as most-recently-used; None on miss."""
        if not self.enabled:
            self.misses += 1
            return None
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled or value is None:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()


#: Default bound for the subtree artifact cache.  Entries are small
#: (slice dicts, flow dicts, a few floats each); a search over a
#: handful of genomes visits a few thousand distinct subtrees.
DEFAULT_SUBTREE_CACHE_SIZE = 8192


class KindStore:
    """One ``(namespace, kind)`` family of the subtree artifact cache.

    ``data`` is the live entry dict — hot analysis loops bind a store
    once (via :meth:`AnalysisContext.shared_store
    <repro.analysis.context.AnalysisContext.shared_store>`) and probe it
    with ``store.data.get(key)`` directly, recording outcomes through
    :meth:`hit` / :meth:`miss`; :meth:`put` goes through the owner to
    maintain the cache-wide entry bound.  ``None`` is not a storable
    value (it is the miss sentinel).

    Counter updates are guarded by the store's lock: the evaluation
    service probes one shared cache from several worker threads at
    once, and un-guarded ``+=`` read-modify-write cycles would lose
    increments — ``GET /stats`` and the ``== incremental analysis ==``
    profile section must stay exact.  The lock is uncontended in
    single-threaded use and costs well under a microsecond per probe.
    """

    __slots__ = ("data", "kind", "hits", "misses", "evictions", "lock",
                 "_owner")

    def __init__(self, owner: "SubtreeArtifactCache", kind: str = ""):
        self.data: Dict[Hashable, Any] = {}
        #: Artifact family name; lets eviction be attributed per kind.
        self.kind = kind
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.lock = threading.Lock()
        self._owner = owner

    def hit(self, n: int = 1) -> None:
        with self.lock:
            self.hits += n

    def miss(self, n: int = 1) -> None:
        with self.lock:
            self.misses += n

    def put(self, key: Hashable, value: Any) -> None:
        owner = self._owner
        if value is None or owner.maxsize <= 0:
            return
        with owner.lock:
            if key not in self.data:
                if owner.total >= owner.maxsize:
                    owner._evict_one_locked(self)
                owner.total += 1
            self.data[key] = value


class SubtreeArtifactCache:
    """Cross-evaluation cache of per-subtree analysis artifacts.

    Entries live in per-``(namespace, kind)`` :class:`KindStore` dicts:
    ``kind`` names the artifact family (``"slices"``, ``"num_pe"``,
    ``"walkvol"``, ``"valid"``, ``"cov"``) and the namespace pins the
    workload/architecture/model-flag combination
    (:func:`~repro.analysis.fingerprint.cache_namespace`).  Keys within
    a store are structural subtree fingerprints (or fingerprint-derived
    tuples) from :mod:`repro.analysis.fingerprint` — so a mapper move
    that leaves a sibling subtree untouched finds that subtree's
    artifacts here instead of recomputing them, across tree objects and
    across ``EvaluationEngine.evaluate*`` calls.

    Consumers must treat cached values as immutable.  The total entry
    count is bounded by ``maxsize``; eviction drops the oldest entries
    (insertion order) of the store being written into.  Hit/miss
    counters live on the stores; the aggregate properties feed
    ``engine.subtree_hits`` / ``engine.subtree_misses``.
    """

    def __init__(self, maxsize: int = DEFAULT_SUBTREE_CACHE_SIZE):
        self.maxsize = int(maxsize)
        self.total = 0
        #: Running eviction total (cheap int; avoids store iteration on
        #: the engine's per-evaluation snapshot/diff path).
        self.eviction_count = 0
        #: Guards store creation, inserts, and evictions (``total`` /
        #: ``eviction_count`` / per-store ``evictions`` and ``data``
        #: membership changes).  Entry *reads* stay lock-free:
        #: ``dict.get`` is atomic under the GIL and cached values are
        #: immutable by contract.
        self.lock = threading.Lock()
        self._stores: Dict[Tuple[str, str], KindStore] = {}

    def store(self, namespace: str, kind: str) -> KindStore:
        """The (created-on-demand) store of one namespace/kind pair."""
        key = (namespace, kind)
        store = self._stores.get(key)
        if store is None:
            with self.lock:
                store = self._stores.get(key)
                if store is None:
                    store = self._stores[key] = KindStore(self, kind)
        return store

    def evict_one(self, preferred: KindStore) -> None:
        """Drop one entry to make room, oldest-first from ``preferred``."""
        with self.lock:
            self._evict_one_locked(preferred)

    def _evict_one_locked(self, preferred: KindStore) -> None:
        """Eviction body; caller holds :attr:`lock`.

        Falls back to the largest store when the preferred one is empty
        (a fresh kind being inserted into a full cache).
        """
        victim = preferred
        if not victim.data:
            victim = max(self._stores.values(), key=lambda s: len(s.data))
            if not victim.data:  # pragma: no cover - maxsize == 0 guard
                return
        del victim.data[next(iter(victim.data))]
        victim.evictions += 1
        self.eviction_count += 1
        self.total -= 1
        # Evictions are orders of magnitude rarer than probes, so the
        # per-kind profile counter can live here rather than on a
        # snapshot/diff path.
        obs.count(f"engine.subtree_evictions.{victim.kind}")

    @property
    def hits(self) -> int:
        return sum(s.hits for s in list(self._stores.values()))

    @property
    def misses(self) -> int:
        return sum(s.misses for s in list(self._stores.values()))

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in list(self._stores.values()))

    def __len__(self) -> int:
        return self.total

    def counts(self, namespace: Optional[str] = None) -> Tuple[int, int]:
        """(hits, misses) — snapshot/diff pairs for per-call attribution.

        ``namespace`` restricts the sum to one workload/arch family so
        an engine sharing this cache with concurrently-running engines
        (the evaluation service) attributes only its *own* probes.
        """
        hits = misses = 0
        for (ns, _kind), s in list(self._stores.items()):
            if namespace is not None and ns != namespace:
                continue
            hits += s.hits
            misses += s.misses
        return hits, misses

    def evictions_by_kind(self) -> Dict[str, int]:
        """Eviction totals attributed per artifact kind (all namespaces)."""
        out: Dict[str, int] = {}
        for (_ns, kind), s in list(self._stores.items()):
            if s.evictions:
                out[kind] = out.get(kind, 0) + s.evictions
        return out

    def counts_by_kind(self, namespace: Optional[str] = None
                       ) -> Dict[str, Tuple[int, int, int]]:
        """``kind -> (hits, misses, evictions)`` — per-evaluation event
        deltas diff two of these snapshots (optionally scoped to one
        namespace, as :meth:`counts`)."""
        out: Dict[str, Tuple[int, int, int]] = {}
        for (ns, kind), s in list(self._stores.items()):
            if namespace is not None and ns != namespace:
                continue
            h, m, e = out.get(kind, (0, 0, 0))
            out[kind] = (h + s.hits, m + s.misses, e + s.evictions)
        return out

    def stats(self) -> Dict[str, Any]:
        by_hits: Dict[str, int] = {}
        by_misses: Dict[str, int] = {}
        for (_ns, kind), s in list(self._stores.items()):
            by_hits[kind] = by_hits.get(kind, 0) + s.hits
            by_misses[kind] = by_misses.get(kind, 0) + s.misses
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self), "evictions": self.evictions,
                "hits_by_kind": by_hits, "misses_by_kind": by_misses,
                "evictions_by_kind": self.evictions_by_kind()}

    def clear(self) -> None:
        with self.lock:
            for s in self._stores.values():
                s.data.clear()
            self.total = 0
