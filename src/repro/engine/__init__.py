"""Evaluation engine: memoized, pre-screened, parallel mapping evaluation.

The engine sits between the mapper's search loops (GA + MCTS,
``tune_template``) and the analytical model.  See
``docs/PERFORMANCE.md`` for the signature scheme, cache semantics, the
determinism contract, and guidance on picking ``--workers``.
"""

from .cache import (DEFAULT_SUBTREE_CACHE_SIZE, LRUCache,
                    SubtreeArtifactCache)
from .core import DEFAULT_CACHE_SIZE, EngineStats, EvaluationEngine
from .prescreen import (PRESCREEN_TAG, compute_demand, is_prescreened,
                        prescreen, rejected_result)
from .signature import (arch_fingerprint, cache_namespace, digest,
                        factors_fingerprint, genome_fingerprint,
                        mapping_signature, node_fingerprints,
                        subtree_fingerprint, template_signature,
                        workload_digest, workload_fingerprint)

__all__ = [
    "EvaluationEngine", "EngineStats", "DEFAULT_CACHE_SIZE",
    "LRUCache", "SubtreeArtifactCache", "DEFAULT_SUBTREE_CACHE_SIZE",
    "prescreen", "compute_demand", "rejected_result", "is_prescreened",
    "PRESCREEN_TAG",
    "mapping_signature", "template_signature", "workload_fingerprint",
    "arch_fingerprint", "genome_fingerprint", "factors_fingerprint",
    "digest",
    "node_fingerprints", "subtree_fingerprint", "workload_digest",
    "cache_namespace",
]
