"""Evaluation engine: memoized, pre-screened, parallel mapping evaluation.

The engine sits between the mapper's search loops (GA + MCTS,
``tune_template``) and the analytical model.  See
``docs/PERFORMANCE.md`` for the signature scheme, cache semantics, the
determinism contract, and guidance on picking ``--workers``.
"""

from .cache import LRUCache
from .core import DEFAULT_CACHE_SIZE, EngineStats, EvaluationEngine
from .prescreen import (PRESCREEN_TAG, compute_demand, is_prescreened,
                        prescreen, rejected_result)
from .signature import (arch_fingerprint, digest, factors_fingerprint,
                        genome_fingerprint, mapping_signature,
                        template_signature, workload_fingerprint)

__all__ = [
    "EvaluationEngine", "EngineStats", "DEFAULT_CACHE_SIZE",
    "LRUCache",
    "prescreen", "compute_demand", "rejected_result", "is_prescreened",
    "PRESCREEN_TAG",
    "mapping_signature", "template_signature", "workload_fingerprint",
    "arch_fingerprint", "genome_fingerprint", "factors_fingerprint",
    "digest",
]
