"""Latency estimation (§5.3).

Latency composes bottom-up with the paper's rules:

* A leaf (perfect tile) takes one cycle per temporal iteration, its spatial
  iterations running in parallel on the PE array
  (``Perfect_Tile_Latency``).
* An inner tile overlaps data loading, children execution, and data
  storing under double buffering, so its per-execution latency is
  ``max(load / BW, children, store / BW)``; ``Seq``/``Shar`` children
  serialize (sum) while ``Para``/``Pipe`` children overlap (max).

Bandwidth sharing: a node's loads come from its source level, whose
aggregate bandwidth is divided among all concurrently active consumers —
spatial copies and concurrent (Para/Pipe) siblings.  The analysis threads
that concurrency factor down the tree.

The §7.5 slow-down metric (access latency over compute latency, floored at
1) is computed per level from the aggregate traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..arch import Architecture
from ..tile.bindings import Binding
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from .context import AnalysisContext
from .datamovement import DataMovementResult
from .metrics import LevelTraffic


class LatencyAnalysis:
    """Computes total cycles and per-level slow-down for a mapping.

    Per-node execution counts (ancestor loop products) come from the
    shared :class:`AnalysisContext` so they are computed once per
    evaluation rather than per analysis.
    """

    def __init__(self, tree: AnalysisTree, arch: Architecture,
                 movement: DataMovementResult,
                 context: Optional[AnalysisContext] = None):
        self.tree = tree
        self.arch = arch
        self.movement = movement
        self.ctx = context if context is not None else AnalysisContext(
            tree, arch)

    # ------------------------------------------------------------------
    def run(self) -> Tuple[float, Dict[int, float]]:
        """Return (total latency cycles, per-level slow-down)."""
        cycles = self._node_latency(self.tree.root, concurrency=1.0)
        return cycles, self._slowdown(cycles)

    # ------------------------------------------------------------------
    def _node_latency(self, node: TileNode, concurrency: float) -> float:
        """Latency in cycles of ONE execution of ``node``."""
        flows = self.movement.flows(node)
        executions = max(1.0, float(self.ctx.executions(node)))
        source_level = (node.parent.level if node.parent is not None
                        else self.arch.dram_index)
        io_cycles = 0.0
        if node.level < source_level:
            load_bytes = self._bytes(flows.fills) / executions
            store_bytes = self._bytes(flows.updates) / executions
            bw = self._shared_bandwidth(source_level, concurrency)
            # Loads and stores share the source port (half duplex); both
            # overlap with children execution under double buffering.
            io_cycles = (load_bytes + store_bytes) / bw

        if node.is_leaf():
            assert isinstance(node, OpTile)
            inner = self._perfect_tile_cycles(node)
        elif isinstance(node, OpTile):
            inner = node.temporal_trip_count * self._node_latency(
                node.child, concurrency * node.spatial_trip_count)
        else:
            assert isinstance(node, FusionNode)
            child_conc = concurrency * node.spatial_trip_count
            lats = [self._node_latency(c, child_conc) for c in node.children]
            if node.binding.shares_compute_in_time:
                inner = node.temporal_trip_count * sum(lats)
            else:
                # Concurrent siblings (Para/Pipe) overlap in time but share
                # the staging level's bandwidth, so the iteration takes the
                # slowest child or the aggregate sibling IO, whichever is
                # longer (demand-proportional sharing).
                io_sum = sum(self._child_io_cycles(c, child_conc)
                             for c in node.children)
                inner = node.temporal_trip_count * max(max(lats), io_sum)
        return max(io_cycles, inner)

    def _child_io_cycles(self, child: TileNode, concurrency: float) -> float:
        """Per-execution IO time of one child against its source level."""
        if child.parent is None or child.level >= child.parent.level:
            return 0.0
        flows = self.movement.flows(child)
        executions = max(1.0, float(self.ctx.executions(child)))
        total_bytes = (self._bytes(flows.fills)
                       + self._bytes(flows.updates)) / executions
        bw = self._shared_bandwidth(child.parent.level, concurrency)
        return total_bytes / bw

    def _perfect_tile_cycles(self, leaf: OpTile) -> float:
        """Cycles of one leaf execution (polyhedron perfect-tile latency).

        Spatial iterations run in parallel; when the leaf asks for more
        lanes than the pool holds, throughput degrades proportionally
        (resource validation flags this separately).
        """
        pool = self.arch.compute_units(leaf.op.kind)
        waves = max(1.0, leaf.spatial_trip_count / pool)
        return leaf.temporal_trip_count * waves * leaf.op.ops_per_point

    # ------------------------------------------------------------------
    def _bytes(self, words_by_tensor: Dict[str, float]) -> float:
        total = 0.0
        for tensor_name, words in words_by_tensor.items():
            total += words * self.tree.workload.tensor(tensor_name).word_bytes
        return total

    def _shared_bandwidth(self, level_idx: int, concurrency: float) -> float:
        """Bytes/cycle one consumer gets from ``level_idx``'s aggregate BW."""
        level = self.arch.level(level_idx)
        aggregate = level.bytes_per_cycle(self.arch.frequency_ghz)
        aggregate *= level.fanout
        return max(1e-9, aggregate / max(1.0, concurrency))

    # ------------------------------------------------------------------
    def _slowdown(self, compute_cycles: float) -> Dict[int, float]:
        """§7.5: per-level access latency over total latency, floored at 1."""
        result: Dict[int, float] = {}
        for level_idx in range(self.arch.num_levels):
            traffic = self.movement.traffic.get(level_idx)
            if traffic is None:
                result[level_idx] = 1.0
                continue
            word_bytes = self._mean_word_bytes()
            level = self.arch.level(level_idx)
            bw = level.bytes_per_cycle(self.arch.frequency_ghz) * level.fanout
            access_cycles = traffic.total_words * word_bytes / bw
            result[level_idx] = max(1.0, access_cycles
                                    / max(1e-9, compute_cycles))
        return result

    def _mean_word_bytes(self) -> float:
        tensors = self.tree.workload.tensors()
        return sum(t.word_bytes for t in tensors) / len(tensors)
