"""Tree-based analysis: data movement, resources, latency, energy (§5)."""

from .datamovement import (DataMovementAnalysis, DataMovementResult,
                           NodeFlows)
from .energy import compute_energy
from .latency import LatencyAnalysis
from .metrics import EvaluationResult, LevelTraffic, ResourceUsage
from .model import TileFlowModel
from .resources import ResourceAnalysis
from .slices import (box_volume, delta_volume, loop_displacement,
                     merged_extents, movement_recursion, overlap_volume,
                     slice_coverage, slice_extents)

__all__ = [
    "TileFlowModel",
    "DataMovementAnalysis", "DataMovementResult", "NodeFlows",
    "ResourceAnalysis", "LatencyAnalysis", "compute_energy",
    "EvaluationResult", "LevelTraffic", "ResourceUsage",
    "box_volume", "delta_volume", "overlap_volume", "movement_recursion",
    "loop_displacement", "merged_extents", "slice_coverage", "slice_extents",
]
