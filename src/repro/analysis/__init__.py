"""Tree-based analysis: data movement, resources, latency, energy (§5).

The analyses compose as an explicit pass pipeline
(:mod:`repro.analysis.pipeline`) over a shared per-evaluation
:class:`~repro.analysis.context.AnalysisContext`; see
``docs/ARCHITECTURE.md``.
"""

from .context import AnalysisContext, NodeSlices, num_pe_demand
from .datamovement import (DataMovementAnalysis, DataMovementResult,
                           NodeFlows)
from .fingerprint import (cache_namespace, node_fingerprints,
                          subtree_fingerprint, workload_digest)
from .energy import compute_energy
from .latency import LatencyAnalysis
from .metrics import EvaluationResult, LevelTraffic, ResourceUsage
from .model import TileFlowModel
from .pipeline import (DEFAULT_PIPELINE, PRESCREEN_PIPELINE, AnalysisPass,
                       DataMovementPass, EnergyPass, LatencyPass, Pipeline,
                       PipelineError, ResourceBoundsPass, ResourcesPass,
                       SlicesPass, ValidatePass, default_passes,
                       prescreen_passes)
from .resources import ResourceAnalysis
from .slices import (box_volume, delta_volume, loop_displacement,
                     merged_extents, movement_recursion, overlap_volume,
                     slice_coverage, slice_extents)

__all__ = [
    "TileFlowModel",
    "AnalysisContext", "NodeSlices", "num_pe_demand",
    "AnalysisPass", "Pipeline", "PipelineError",
    "DEFAULT_PIPELINE", "PRESCREEN_PIPELINE",
    "ValidatePass", "SlicesPass", "DataMovementPass", "ResourcesPass",
    "ResourceBoundsPass", "LatencyPass", "EnergyPass",
    "default_passes", "prescreen_passes",
    "DataMovementAnalysis", "DataMovementResult", "NodeFlows",
    "node_fingerprints", "subtree_fingerprint", "workload_digest",
    "cache_namespace",
    "ResourceAnalysis", "LatencyAnalysis", "compute_energy",
    "EvaluationResult", "LevelTraffic", "ResourceUsage",
    "box_volume", "delta_volume", "overlap_volume", "movement_recursion",
    "loop_displacement", "merged_extents", "slice_coverage", "slice_extents",
]
