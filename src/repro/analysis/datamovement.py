"""Tree-based data-movement analysis (§5.1).

For every node of the analysis tree and every tensor whose data crosses
into that node's buffer, the engine computes the words moved over the whole
execution by the boundary recursion of §5.1.1, extended with the paper's
inter-tile rules (§5.1.2):

* **Reuse walk** — the temporal loops driving a node's refills are its own
  temporal loops plus those of its ancestors (inner to outer), because a
  slice persists in the node's buffer exactly as long as no walked loop
  displaces it.  Wrap-around of inner loops is part of each boundary's
  displacement, reproducing Fig. 5.
* **Seq eviction** — ascending through a ``Seq`` fusion node stops the walk
  for tensors the *following* sibling tile does not use: their slices are
  evicted, so every remaining outer iteration refills from scratch
  (multiplicative).
* **Fusion saving / LCA routing** — an intermediate tensor lives at its
  least-common-ancestor node; it never crosses above that node's memory
  level, and loops above the LCA (which re-produce the tensor) contribute
  multiplicatively, never as reuse.
* **Spatial loops** — a node's own spatial loops enlarge its slice (the
  level's instances co-reside); ancestors' spatial loops multiply traffic
  when they displace the slice and broadcast (x1) when they do not.

The result records per-level fill/read/update word counts (the paper's
Fig. 10d breakdown) and per-node load/store totals for the latency model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch import Architecture
from ..ir import Operator, TensorAccess
from ..tile.bindings import Binding
from ..tile.loops import Loop
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from .context import AnalysisContext
from .metrics import LevelTraffic
from .slices import (box_volume, delta_volume, loop_displacement,
                     movement_recursion)


@dataclass
class NodeFlows:
    """Traffic and residency of one tree node."""

    node: TileNode
    #: Words filled into this node's buffer per tensor, whole execution.
    fills: Dict[str, float] = field(default_factory=dict)
    #: Words written back from this node's buffer to its parent's.
    updates: Dict[str, float] = field(default_factory=dict)
    #: Words resident per tensor for one time step (capacity analysis).
    staged_words: Dict[str, float] = field(default_factory=dict)

    @property
    def load_words(self) -> float:
        return sum(self.fills.values())

    @property
    def store_words(self) -> float:
        return sum(self.updates.values())


@dataclass
class DataMovementResult:
    """Output of the data-movement analysis."""

    traffic: Dict[int, LevelTraffic]
    node_flows: Dict[int, NodeFlows]  # keyed by id(node)

    def flows(self, node: TileNode) -> NodeFlows:
        return self.node_flows[id(node)]


class _Walk:
    """The truncated ancestor loop walk for one (node, tensor) pair."""

    __slots__ = ("loops", "multiplier", "multiplied")

    def __init__(self, loops: List[Loop], multiplier: float,
                 multiplied: List[Tuple[str, int]]):
        self.loops = loops  # outer -> inner
        self.multiplier = multiplier
        #: (dim, count) of loops folded into the multiplier.
        self.multiplied = multiplied

    @property
    def multiplied_dims(self) -> List[str]:
        return [d for d, _ in self.multiplied]


class DataMovementAnalysis:
    """Runs the §5.1 analysis over a validated tree.

    The two refinement rules can be ablated (``model_eviction`` switches
    off the §5.1.2 Seq eviction, ``model_rmw`` switches off partial-sum
    read-modify-write accounting); the ablation benches quantify what
    each rule contributes to the model's predictions.

    Slice geometry, tensor homes, and loop products come from a shared
    :class:`~repro.analysis.context.AnalysisContext`; pass one to reuse
    intermediates across pipeline passes, or omit it for a standalone
    run (a private context is created, and the ablation flags above
    apply).  When a context is given, *its* flags win.
    """

    def __init__(self, tree: AnalysisTree, arch: Architecture,
                 model_eviction: bool = True, model_rmw: bool = True,
                 context: Optional[AnalysisContext] = None):
        self.tree = tree
        self.arch = arch
        self.ctx = context if context is not None else AnalysisContext(
            tree, arch, model_eviction=model_eviction, model_rmw=model_rmw)
        self.model_eviction = self.ctx.model_eviction
        self.model_rmw = self.ctx.model_rmw

    # ------------------------------------------------------------------
    def run(self) -> DataMovementResult:
        traffic: Dict[int, LevelTraffic] = {
            i: LevelTraffic() for i in range(self.arch.num_levels)}
        node_flows: Dict[int, NodeFlows] = {}
        for node in self.tree.nodes():
            flows = self._analyze_node(node, traffic)
            node_flows[id(node)] = flows
        self._add_compute_accesses(traffic)
        return DataMovementResult(traffic=traffic, node_flows=node_flows)

    # ------------------------------------------------------------------
    def _analyze_node(self, node: TileNode,
                      traffic: Dict[int, LevelTraffic]) -> NodeFlows:
        flows = NodeFlows(node=node)
        source_level = (node.parent.level if node.parent is not None
                        else self.arch.dram_index)
        slices = self.ctx.node_slices(node)
        for tensor_name in slices.tensors:
            reader_pairs = slices.readers.get(tensor_name, [])
            writer_pairs = slices.writers.get(tensor_name, [])
            # A slice is one buffer instance's residency: loops below the
            # node plus its unit-step (PE-lane) spatial loops.  Block-
            # distributing spatial loops multiply traffic in the walk.
            extents = slices.extents[tensor_name]
            flows.staged_words[tensor_name] = slices.staged_words[tensor_name]

            home = self.ctx.home(tensor_name)
            crossing = (home is None) or self._is_strict_ancestor(home, node)
            if not crossing or node.level >= source_level:
                continue

            if reader_pairs:
                leaf, access = reader_pairs[0]
                walk = self._build_walk(node, tensor_name, access, home)
                words = self._walk_volume(extents, access, walk)
                flows.fills[tensor_name] = (
                    flows.fills.get(tensor_name, 0.0) + words)
                traffic[node.level].add("fill", tensor_name, words)
                traffic[source_level].add("read", tensor_name, words)
            if writer_pairs:
                leaf, access = writer_pairs[0]
                walk = self._build_walk(node, tensor_name, access, home)
                words = self._walk_volume(extents, access, walk)
                flows.updates[tensor_name] = (
                    flows.updates.get(tensor_name, 0.0) + words)
                traffic[source_level].add("update", tensor_name, words)
                # Read-modify-write: any update traffic beyond the
                # reduction-free ideal is a partial sum written back early
                # (an outer reduction loop displaced the slice), and each
                # such writeback is refetched before accumulation resumes.
                red = leaf.op.reduction_dims
                ideal = self._ideal_update_volume(extents, access, walk, red)
                rmw = max(0.0, words - ideal) if self.model_rmw else 0.0
                if rmw > 0:
                    flows.fills[tensor_name] = (
                        flows.fills.get(tensor_name, 0.0) + rmw)
                    traffic[node.level].add("fill", tensor_name, rmw)
                    traffic[source_level].add("read", tensor_name, rmw)
        return flows

    def _ideal_update_volume(self, extents, access, walk: "_Walk",
                             reduction_dims) -> float:
        """Update volume if no reduction loop ever displaced the slice."""
        loops = [lp for lp in walk.loops if lp.dim not in reduction_dims]
        mult_red = 1.0
        for dim, count in walk.multiplied:
            if dim in reduction_dims:
                mult_red *= count
        ideal_walk = _Walk(loops, walk.multiplier / max(1.0, mult_red), [])
        return self._walk_volume(extents, access, ideal_walk)

    # ------------------------------------------------------------------
    @staticmethod
    def _is_strict_ancestor(candidate: TileNode, node: TileNode) -> bool:
        return any(a is candidate for a in node.ancestors())

    # ------------------------------------------------------------------
    def _build_walk(self, node: TileNode, tensor_name: str,
                    access: TensorAccess,
                    home: Optional[TileNode]) -> _Walk:
        """Ancestor loop walk with Seq-eviction and LCA truncation."""
        walk_inner_to_outer: List[Loop] = []
        multiplier = 1.0
        multiplied: List[Tuple[str, int]] = []
        stopped = False
        # A Seq fusion node evicts a tensor between its own iterations when
        # the sibling following the tensor's last user does not need it, so
        # the node's own temporal loops refill rather than reuse.
        if self._self_evicts(node, tensor_name):
            for lp in node.temporal_loops:
                multiplier *= lp.count
                multiplied.append((lp.dim, lp.count))
        else:
            walk_inner_to_outer.extend(reversed(node.temporal_loops))
        # The node's own block-distributing spatial loops (step > 1)
        # spread slices over separate buffer instances.
        for lp in node.spatial_loops:
            if lp.step == 1:
                continue
            disp = access.displacement({lp.dim: lp.step})
            if any(d != 0 for d in disp):
                multiplier *= lp.count
                multiplied.append((lp.dim, lp.count))
        current: TileNode = node
        while current.parent is not None:
            parent = current.parent
            for lp in parent.spatial_loops:
                disp = access.displacement({lp.dim: lp.step})
                if any(d != 0 for d in disp):
                    multiplier *= lp.count
                    multiplied.append((lp.dim, lp.count))
            if (not stopped and self.model_eviction
                    and self._evicted_at(parent, current, tensor_name)):
                stopped = True
            if stopped:
                for lp in parent.temporal_loops:
                    multiplier *= lp.count
                    multiplied.append((lp.dim, lp.count))
            else:
                walk_inner_to_outer.extend(reversed(parent.temporal_loops))
            if parent is home:
                stopped = True
            current = parent
        walk_inner_to_outer.reverse()
        return _Walk(walk_inner_to_outer, multiplier, multiplied)

    def _self_evicts(self, node: TileNode, tensor_name: str) -> bool:
        """Seq eviction applied to the node's own iterations (§5.1.2)."""
        if not self.model_eviction:
            return False
        if not isinstance(node, FusionNode):
            return False
        if node.binding is not Binding.SEQ or len(node.children) < 2:
            return False
        users = [i for i, c in enumerate(node.children)
                 if self.ctx.subtree_uses(c, tensor_name)]
        if not users:
            return False
        following = node.children[(users[-1] + 1) % len(node.children)]
        return not self.ctx.subtree_uses(following, tensor_name)

    @staticmethod
    def _evicted_at(parent: TileNode, child: TileNode,
                    tensor_name: str) -> bool:
        """§5.1.2: Seq evicts slices the following sibling does not need."""
        if not isinstance(parent, FusionNode):
            return False
        if parent.binding is not Binding.SEQ or len(parent.children) < 2:
            return False
        idx = next(i for i, c in enumerate(parent.children) if c is child)
        following = parent.children[(idx + 1) % len(parent.children)]
        if following is child:
            return False
        uses = any(leaf.op.uses(tensor_name) for leaf in following.leaves())
        return not uses

    def _walk_volume(self, extents: Sequence[int], access: TensorAccess,
                     walk: _Walk) -> float:
        volume = box_volume(extents)
        counts = [lp.count for lp in walk.loops]
        deltas = []
        for i, lp in enumerate(walk.loops):
            disp = loop_displacement(access, lp, walk.loops[i + 1:])
            deltas.append(delta_volume(extents, disp))
        return movement_recursion(volume, counts, deltas) * walk.multiplier

    # ------------------------------------------------------------------
    def _add_compute_accesses(self, traffic: Dict[int, LevelTraffic]) -> None:
        """Operand/accumulator accesses at the innermost level.

        Each iteration point reads its input operands from and writes its
        accumulator to the leaf-level buffer (registers); these are the
        "Reg" accesses of the paper's energy breakdown (Fig. 13).
        """
        for leaf in self.tree.root.leaves():
            points = leaf.trip_count * self.ctx.executions(leaf)
            level = traffic[leaf.level]
            for access in leaf.op.inputs:
                level.add("read", access.tensor.name, float(points))
            level.add("update", leaf.op.output.tensor.name, float(points))
