"""Tree-based data-movement analysis (§5.1).

For every node of the analysis tree and every tensor whose data crosses
into that node's buffer, the engine computes the words moved over the whole
execution by the boundary recursion of §5.1.1, extended with the paper's
inter-tile rules (§5.1.2):

* **Reuse walk** — the temporal loops driving a node's refills are its own
  temporal loops plus those of its ancestors (inner to outer), because a
  slice persists in the node's buffer exactly as long as no walked loop
  displaces it.  Wrap-around of inner loops is part of each boundary's
  displacement, reproducing Fig. 5.
* **Seq eviction** — ascending through a ``Seq`` fusion node stops the walk
  for tensors the *following* sibling tile does not use: their slices are
  evicted, so every remaining outer iteration refills from scratch
  (multiplicative).
* **Fusion saving / LCA routing** — an intermediate tensor lives at its
  least-common-ancestor node; it never crosses above that node's memory
  level, and loops above the LCA (which re-produce the tensor) contribute
  multiplicatively, never as reuse.
* **Spatial loops** — a node's own spatial loops enlarge its slice (the
  level's instances co-reside); ancestors' spatial loops multiply traffic
  when they displace the slice and broadcast (x1) when they do not.

The result records per-level fill/read/update word counts (the paper's
Fig. 10d breakdown) and per-node load/store totals for the latency model.

When the context carries a shared artifact cache, two layers cache the
expensive arithmetic across evaluations:

* **Projected-walk volumes** — the boundary recursion over one (tensor,
  walk) pair is keyed by the walk *projected onto the dims the access
  actually reads* (:meth:`DataMovementAnalysis._projected_walk`): loops
  over dims an access does not reference displace its slice only
  through inner wrap-around, which is itself zero unless a referenced
  loop sits inside — so maximal runs of irrelevant loops collapse to
  their trip product (an exact transformation of the integer boundary
  recursion).  A mapper move on tiling factors of dim ``m`` therefore
  leaves the cached volumes of tensors indexed only by ``h``/``l``/``k``
  valid — not just in untouched sibling subtrees, but along the mutated
  path itself.  The recursion results are integers, so serving them from
  cache and re-applying the float spatial multiplier is byte-identical
  to a from-scratch run.
* **Group flows** — a child of the tree root has exactly one ancestor,
  so the complete data-movement output of its subtree (per-node fills,
  updates, and ordered traffic contributions) is pinned by one cheap
  key: the subtree's structural fingerprint plus the root's level,
  loops, and per-tensor eviction/home bits
  (:meth:`DataMovementAnalysis._group_key`).  Search moves that leave a
  whole top-level group's configuration unchanged — the common case in
  MCTS factor tuning, where samples revisit per-group configurations far
  more often than whole-tree ones — replay the group's flows without
  touching a single walk.  Replay preserves the pre-order float
  accumulation order, keeping cached and uncached runs byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch import Architecture
from ..ir import Operator, TensorAccess
from ..tile.bindings import Binding
from ..tile.loops import Loop
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from .context import AnalysisContext
from .metrics import LevelTraffic
from .slices import (box_volume, delta_volume, loop_displacement,
                     movement_recursion)


@dataclass
class NodeFlows:
    """Traffic and residency of one tree node."""

    node: TileNode
    #: Words filled into this node's buffer per tensor, whole execution.
    fills: Dict[str, float] = field(default_factory=dict)
    #: Words written back from this node's buffer to its parent's.
    updates: Dict[str, float] = field(default_factory=dict)
    #: Words resident per tensor for one time step (capacity analysis).
    staged_words: Dict[str, float] = field(default_factory=dict)

    @property
    def load_words(self) -> float:
        return sum(self.fills.values())

    @property
    def store_words(self) -> float:
        return sum(self.updates.values())


@dataclass
class DataMovementResult:
    """Output of the data-movement analysis."""

    traffic: Dict[int, LevelTraffic]
    node_flows: Dict[int, NodeFlows]  # keyed by id(node)

    def flows(self, node: TileNode) -> NodeFlows:
        return self.node_flows[id(node)]


class _Walk:
    """The truncated ancestor loop walk for one (node, tensor) pair."""

    __slots__ = ("loops", "multiplier", "multiplied")

    def __init__(self, loops: List[Loop], multiplier: float,
                 multiplied: List[Tuple[str, int]]):
        self.loops = loops  # outer -> inner
        self.multiplier = multiplier
        #: (dim, count) of loops folded into the multiplier.
        self.multiplied = multiplied

    @property
    def multiplied_dims(self) -> List[str]:
        return [d for d, _ in self.multiplied]


class DataMovementAnalysis:
    """Runs the §5.1 analysis over a validated tree.

    The two refinement rules can be ablated (``model_eviction`` switches
    off the §5.1.2 Seq eviction, ``model_rmw`` switches off partial-sum
    read-modify-write accounting); the ablation benches quantify what
    each rule contributes to the model's predictions.

    Slice geometry, tensor homes, and loop products come from a shared
    :class:`~repro.analysis.context.AnalysisContext`; pass one to reuse
    intermediates across pipeline passes, or omit it for a standalone
    run (a private context is created, and the ablation flags above
    apply).  When a context is given, *its* flags win.
    """

    def __init__(self, tree: AnalysisTree, arch: Architecture,
                 model_eviction: bool = True, model_rmw: bool = True,
                 context: Optional[AnalysisContext] = None):
        self.tree = tree
        self.arch = arch
        self.ctx = context if context is not None else AnalysisContext(
            tree, arch, model_eviction=model_eviction, model_rmw=model_rmw)
        self.model_eviction = self.ctx.model_eviction
        self.model_rmw = self.ctx.model_rmw
        #: Per-run memo: (id(access), dim, step) -> displaces slice?
        self._displaces: Dict[Tuple[int, str, int], bool] = {}
        #: Per-run memo: (id(parent), id(child), tensor) -> Seq-evicted?
        self._evictions: Dict[Tuple[int, int, str], bool] = {}
        #: Bound "walkvol" store of the shared artifact cache (or None);
        #: probed directly — this is the hottest lookup in the system.
        self._volumes = self.ctx.shared_store("walkvol")

    # ------------------------------------------------------------------
    def run(self) -> DataMovementResult:
        traffic: Dict[int, LevelTraffic] = {
            i: LevelTraffic() for i in range(self.arch.num_levels)}
        node_flows: Dict[int, NodeFlows] = {}

        def apply(node: TileNode, flows: NodeFlows, contribs) -> None:
            # Apply the node's per-level contributions in their original
            # (pre-order) position: float accumulation order is part of
            # the byte-identity contract between cached and uncached runs.
            for level, direction, tensor_name, words in contribs:
                traffic[level].add(direction, tensor_name, words)
            node_flows[id(node)] = flows

        root = self.tree.root
        flows, contribs = self._analyze_node(root)
        apply(root, flows, contribs)
        store = (self.ctx.shared_store("groupflows")
                 if self.ctx.artifact_cache is not None else None)
        for group in root.children_nodes():
            key = None if store is None else self._group_key(group)
            entry = None if store is None else store.data.get(key)
            if entry is not None:
                store.touch(key)
            elif store is not None:
                entry = store.miss_through(key)
            if entry is None:
                fresh = []
                for node in group.walk():
                    flows, contribs = self._analyze_node(node)
                    apply(node, flows, contribs)
                    fresh.append((flows.fills, flows.updates, contribs))
                if store is not None:
                    store.put(key, tuple(fresh))
            else:
                for node, (fills, updates, contribs) in zip(group.walk(),
                                                            entry):
                    # Cached dicts are shared read-only across runs (all
                    # NodeFlows consumers only read); residency always
                    # equals the node's (fingerprint-cached) slices.
                    flows = NodeFlows(
                        node=node, fills=fills, updates=updates,
                        staged_words=self.ctx.node_slices(node).staged_words)
                    apply(node, flows, contribs)
        self._add_compute_accesses(traffic)
        return DataMovementResult(traffic=traffic, node_flows=node_flows)

    def _group_key(self, group: TileNode) -> Tuple:
        """Cache key for the flows of one whole child-of-root subtree.

        A child of the root has exactly one ancestor, so everything its
        subtree's walks can see outside the subtree itself is: the fill
        source level, the root's loops (walked, or folded into spatial
        multipliers), and — per tensor the subtree stages — whether the
        root Seq-evicts it between iterations and whether the root is
        its home (LCA truncation).  The subtree fingerprint pins the
        rest.  One tuple per *group* per evaluation keeps the key cost
        negligible, unlike a per-node environment fingerprint.
        """
        root = self.tree.root
        bits: List[str] = []
        for tensor_name in self.ctx.node_slices(group).tensors:
            evicted = (self.model_eviction
                       and self._evicted_at(root, group, tensor_name))
            home_is_root = self.ctx.home(tensor_name) is root
            bits.append(tensor_name + ("e" if evicted else ".")
                        + ("h" if home_is_root else "."))
        return (self.ctx.fingerprint(group), root.level,
                ",".join(repr(lp) for lp in root.loops), ";".join(bits))

    def _analyze_node(self, node: TileNode
                      ) -> Tuple[NodeFlows, List[Tuple[int, str, str, float]]]:
        """One node's flows plus its ordered per-level traffic adds."""
        flows = NodeFlows(node=node)
        contribs: List[Tuple[int, str, str, float]] = []
        source_level = (node.parent.level if node.parent is not None
                        else self.arch.dram_index)
        slices = self.ctx.node_slices(node)
        # Residency equals the slice geometry verbatim; the dict is
        # shared read-only (NodeSlices instances may be cache entries).
        flows.staged_words = slices.staged_words
        for tensor_name in slices.tensors:
            # Fills/updates exist only for tensors whose slices cross
            # into this node's buffer from a higher level (§5.1).
            if not self.ctx.tensor_crossing(node, tensor_name):
                continue
            reader_pairs = slices.readers.get(tensor_name, [])
            writer_pairs = slices.writers.get(tensor_name, [])
            # A slice is one buffer instance's residency: loops below the
            # node plus its unit-step (PE-lane) spatial loops.  Block-
            # distributing spatial loops multiply traffic in the walk.
            extents = slices.extents[tensor_name]
            home = self.ctx.home(tensor_name)

            if reader_pairs:
                leaf, access = reader_pairs[0]
                walk = self._build_walk(node, tensor_name, access, home)
                words = self._walk_volume(extents, access, walk)
                flows.fills[tensor_name] = (
                    flows.fills.get(tensor_name, 0.0) + words)
                contribs.append((node.level, "fill", tensor_name, words))
                contribs.append((source_level, "read", tensor_name, words))
            if writer_pairs:
                leaf, access = writer_pairs[0]
                walk = self._build_walk(node, tensor_name, access, home)
                words = self._walk_volume(extents, access, walk)
                flows.updates[tensor_name] = (
                    flows.updates.get(tensor_name, 0.0) + words)
                contribs.append((source_level, "update", tensor_name, words))
                # Read-modify-write: any update traffic beyond the
                # reduction-free ideal is a partial sum written back early
                # (an outer reduction loop displaced the slice), and each
                # such writeback is refetched before accumulation resumes.
                red = leaf.op.reduction_dims
                ideal = self._ideal_update_volume(extents, access, walk, red)
                rmw = max(0.0, words - ideal) if self.model_rmw else 0.0
                if rmw > 0:
                    flows.fills[tensor_name] = (
                        flows.fills.get(tensor_name, 0.0) + rmw)
                    contribs.append((node.level, "fill", tensor_name, rmw))
                    contribs.append((source_level, "read", tensor_name, rmw))
        return flows, contribs

    def _ideal_update_volume(self, extents, access, walk: "_Walk",
                             reduction_dims) -> float:
        """Update volume if no reduction loop ever displaced the slice."""
        loops = [lp for lp in walk.loops if lp.dim not in reduction_dims]
        mult_red = 1.0
        for dim, count in walk.multiplied:
            if dim in reduction_dims:
                mult_red *= count
        ideal_walk = _Walk(loops, walk.multiplier / max(1.0, mult_red), [])
        return self._walk_volume(extents, access, ideal_walk)

    # ------------------------------------------------------------------
    def _build_walk(self, node: TileNode, tensor_name: str,
                    access: TensorAccess,
                    home: Optional[TileNode]) -> _Walk:
        """Ancestor loop walk with Seq-eviction and LCA truncation."""
        walk_inner_to_outer: List[Loop] = []
        multiplier = 1.0
        multiplied: List[Tuple[str, int]] = []
        stopped = False
        # A Seq fusion node evicts a tensor between its own iterations when
        # the sibling following the tensor's last user does not need it, so
        # the node's own temporal loops refill rather than reuse.
        if self._self_evicts(node, tensor_name):
            for lp in node.temporal_loops:
                multiplier *= lp.count
                multiplied.append((lp.dim, lp.count))
        else:
            walk_inner_to_outer.extend(reversed(node.temporal_loops))
        # The node's own block-distributing spatial loops (step > 1)
        # spread slices over separate buffer instances.
        for lp in node.spatial_loops:
            if lp.step == 1:
                continue
            if self._loop_displaces(access, lp):
                multiplier *= lp.count
                multiplied.append((lp.dim, lp.count))
        current: TileNode = node
        while current.parent is not None:
            parent = current.parent
            for lp in parent.spatial_loops:
                if self._loop_displaces(access, lp):
                    multiplier *= lp.count
                    multiplied.append((lp.dim, lp.count))
            if (not stopped and self.model_eviction
                    and self._evicted_at(parent, current, tensor_name)):
                stopped = True
            if stopped:
                for lp in parent.temporal_loops:
                    multiplier *= lp.count
                    multiplied.append((lp.dim, lp.count))
            else:
                walk_inner_to_outer.extend(reversed(parent.temporal_loops))
            if parent is home:
                stopped = True
            current = parent
        walk_inner_to_outer.reverse()
        return _Walk(walk_inner_to_outer, multiplier, multiplied)

    def _loop_displaces(self, access: TensorAccess, lp: Loop) -> bool:
        """Whether one step of ``lp`` moves the access's slice (memoized)."""
        key = (id(access), lp.dim, lp.step)
        hit = self._displaces.get(key)
        if hit is None:
            disp = access.displacement({lp.dim: lp.step})
            hit = any(d != 0 for d in disp)
            self._displaces[key] = hit
        return hit

    def _self_evicts(self, node: TileNode, tensor_name: str) -> bool:
        """Seq eviction applied to the node's own iterations (§5.1.2)."""
        if not self.model_eviction:
            return False
        if not isinstance(node, FusionNode):
            return False
        if node.binding is not Binding.SEQ or len(node.children) < 2:
            return False
        users = [i for i, c in enumerate(node.children)
                 if self.ctx.subtree_uses(c, tensor_name)]
        if not users:
            return False
        following = node.children[(users[-1] + 1) % len(node.children)]
        return not self.ctx.subtree_uses(following, tensor_name)

    def _evicted_at(self, parent: TileNode, child: TileNode,
                    tensor_name: str) -> bool:
        """§5.1.2: Seq evicts slices the following sibling does not need.

        Memoized per run — the environment fingerprints and the walks of
        a node's whole subtree ask about the same (parent, child, tensor)
        triples.
        """
        if not isinstance(parent, FusionNode):
            return False
        if parent.binding is not Binding.SEQ or len(parent.children) < 2:
            return False
        key = (id(parent), id(child), tensor_name)
        hit = self._evictions.get(key)
        if hit is None:
            idx = next(i for i, c in enumerate(parent.children) if c is child)
            following = parent.children[(idx + 1) % len(parent.children)]
            hit = (following is not child
                   and not self.ctx.subtree_uses(following, tensor_name))
            self._evictions[key] = hit
        return hit

    def _walk_volume(self, extents: Sequence[int], access: TensorAccess,
                     walk: _Walk) -> float:
        """Moved words for one (tensor, walk): cached boundary recursion.

        The recursion itself is integer arithmetic, so caching its result
        (pre-multiplier) and re-applying the float ``walk.multiplier``
        reproduces the uncached float bit-for-bit.  The cache key projects
        the walk onto the access's referenced dims — see
        :meth:`_projected_walk` for why that projection is exact.
        """
        store = self._volumes
        if store is not None:
            key = (access.signature()[0], tuple(extents),
                   self._projected_walk(access, walk.loops))
            moved = store.data.get(key)
            if moved is None:
                moved = store.miss_through(key)
                if moved is None:
                    moved = self._recursion_volume(extents, access,
                                                   walk.loops)
                    store.put(key, moved)
            else:
                store.touch(key)
        else:
            moved = self._recursion_volume(extents, access, walk.loops)
        return moved * walk.multiplier

    def _recursion_volume(self, extents: Sequence[int], access: TensorAccess,
                          loops: Sequence[Loop]) -> int:
        volume = box_volume(extents)
        counts = [lp.count for lp in loops]
        deltas = []
        for i, lp in enumerate(loops):
            disp = loop_displacement(access, lp, loops[i + 1:])
            deltas.append(delta_volume(extents, disp))
        return movement_recursion(volume, counts, deltas)

    def _projected_walk(self, access: TensorAccess,
                        loops: Sequence[Loop]) -> str:
        """Canonical form of a walk as one access sees it.

        Two walks with equal projections yield equal boundary-recursion
        results, exactly:

        * a loop over an unreferenced dim has zero forward displacement,
          contributes nothing to outer wrap-around, and its boundary
          delta equals that of any other unreferenced loop at the same
          position — the recursion step ``s' = c*s + (c-1)*d`` composes
          so that adjacent unreferenced loops merge into their trip
          product;
        * trip-count-1 loops neither move the slice nor wrap, and drop
          out;
        * an innermost run of unreferenced loops multiplies ``s = 0``
          and drops out entirely.

        All steps are integer-exact, so cached volumes replay
        byte-identically.
        """
        referenced = access.signature()[1]
        parts: List[str] = []
        pending = 1
        for lp in loops:  # outer -> inner
            if lp.dim in referenced:
                if pending != 1:
                    parts.append(f"*{pending}")
                    pending = 1
                if lp.count != 1:
                    parts.append(f"{lp.dim}:{lp.count}x{lp.step}")
            elif lp.count != 1:
                pending *= lp.count
        # The trailing (innermost) unreferenced run multiplies s == 0.
        return ",".join(parts)

    # ------------------------------------------------------------------
    def _add_compute_accesses(self, traffic: Dict[int, LevelTraffic]) -> None:
        """Operand/accumulator accesses at the innermost level.

        Each iteration point reads its input operands from and writes its
        accumulator to the leaf-level buffer (registers); these are the
        "Reg" accesses of the paper's energy breakdown (Fig. 13).
        """
        for leaf in self.tree.root.leaves():
            points = leaf.trip_count * self.ctx.executions(leaf)
            level = traffic[leaf.level]
            for access in leaf.op.inputs:
                level.add("read", access.tensor.name, float(points))
            level.add("update", leaf.op.output.tensor.name, float(points))
