"""Slice (box) arithmetic for the data-movement analysis (§5.1).

A *slice* of a tensor is the hyper-rectangle of elements one tile iteration
touches.  Because tile loops advance by fixed steps, a slice's extents are
constant over time and only its position moves — so the set difference
between the slices of two adjacent time steps is a pair of equal-extent
boxes displaced by a constant vector, whose difference volume is

    |new - old| = volume - prod_k max(0, extent_k - |delta_k|)

This module provides that arithmetic plus the helpers that derive extents
and displacements from operator accesses and tree coverage.  The worked
example of Fig. 5 (batched 1D convolution, total movement 168 elements) is
reproduced in the unit tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ir import Operator, TensorAccess
from ..tile.coverage import apply_loops
from ..tile.loops import Loop
from ..tile.tree import OpTile, TileNode


def box_volume(extents: Sequence[int]) -> int:
    """Number of elements in a box with the given per-axis extents."""
    v = 1
    for e in extents:
        v *= max(0, int(e))
    return v


def overlap_volume(extents: Sequence[int],
                   displacement: Sequence[int]) -> int:
    """Intersection volume of a box and a displaced copy of itself."""
    v = 1
    for e, d in zip(extents, displacement):
        v *= max(0, int(e) - abs(int(d)))
    return v


def delta_volume(extents: Sequence[int], displacement: Sequence[int]) -> int:
    """``|new_slice - old_slice|`` for a displaced equal-extent box.

    This is the per-boundary data-movement volume of §5.1.1: the elements
    required by the new time step that were not resident in the previous
    one.
    """
    return box_volume(extents) - overlap_volume(extents, displacement)


def movement_recursion(volume: int, loop_counts: Sequence[int],
                       loop_deltas: Sequence[int]) -> int:
    """Total data movement of a temporal loop nest (§5.1.1).

    ``loop_counts``/``loop_deltas`` are ordered outer to inner; ``volume``
    is the compulsory first fill (one slice).  Implements the paper's
    boundary recursion

        S_n = (N_n - 1) * d_n
        S_i = (N_i - 1) * (d_i + S_{i+1}) + S_{i+1}
        DM  = volume + S_1

    which for Fig. 5's example (volume 24, counts (3, 3), deltas (24, 16))
    yields 168.
    """
    if len(loop_counts) != len(loop_deltas):
        raise ValueError("counts and deltas must have equal length")
    s = 0
    for count, delta in zip(reversed(loop_counts), reversed(loop_deltas)):
        s = (count - 1) * (delta + s) + s
    return volume + s


# ----------------------------------------------------------------------
# Tree-aware helpers
# ----------------------------------------------------------------------
def slice_coverage(node: TileNode, leaf: OpTile) -> Dict[str, int]:
    """Per-dim coverage of one *time step* of ``node`` for ``leaf``'s op.

    Includes every loop strictly below ``node`` on the leaf's path plus
    ``node``'s own unit-step spatial loops — PE lanes whose footprints
    pack into one resident slice (Fig. 5's spatial loops).  Spatial loops
    with larger steps distribute *blocks* over separate buffer instances;
    they are excluded here and handled multiplicatively by the traffic
    walk, like ancestors' spatial loops.  ``node``'s temporal loops are
    the time steps themselves, never part of the slice.
    """
    op = leaf.op
    cov: Dict[str, int] = {d: 1 for d in op.dims}
    current: Optional[TileNode] = leaf
    while current is not None and current is not node:
        cov = apply_loops(cov, current.loops, op.dims)
        current = current.parent
    if current is not node:
        raise ValueError(
            f"{node.label()} is not an ancestor of leaf {leaf.label()}")
    lanes = [lp for lp in node.spatial_loops if lp.step == 1]
    cov = apply_loops(cov, lanes, op.dims)
    return cov


def slice_extents(node: TileNode, leaf: OpTile,
                  access: TensorAccess) -> Tuple[int, ...]:
    """Extents of the tensor slice one time step of ``node`` touches."""
    return access.extents_over(slice_coverage(node, leaf))


def merged_extents(extents_list: Iterable[Sequence[int]]) -> Tuple[int, ...]:
    """Element-wise max of several extent tuples (union approximation).

    Used when several operators below a fusion node access the same tensor
    with aligned slices (e.g. the softmax chain re-reading ``S``): the
    staged slice is the union, approximated by the bounding box.
    """
    merged: List[int] = []
    for extents in extents_list:
        if not merged:
            merged = list(extents)
            continue
        if len(extents) != len(merged):
            raise ValueError("cannot merge extents of different ranks")
        merged = [max(a, b) for a, b in zip(merged, extents)]
    if not merged:
        raise ValueError("merged_extents needs at least one extents tuple")
    return tuple(merged)


def loop_displacement(access: TensorAccess, loop: Loop,
                      inner_loops: Sequence[Loop]) -> Tuple[int, ...]:
    """Net slice displacement when ``loop`` advances one step.

    When a temporal loop increments, every loop *inside* it (``inner_loops``,
    the walk loops nested within) wraps from its last value back to its
    first, so the net displacement is the loop's own step minus the inner
    loops' full spans — exactly the boundary analysis of Fig. 5.
    """
    forward = access.displacement({loop.dim: loop.step})
    back = [0] * len(forward)
    for inner in inner_loops:
        wrap = access.displacement({inner.dim: (inner.count - 1) * inner.step})
        back = [b + w for b, w in zip(back, wrap)]
    return tuple(f - b for f, b in zip(forward, back))
