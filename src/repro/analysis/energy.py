"""Energy estimation (§5.3).

Energy is access counting: every word moved at every memory level costs
that level's per-access energy, and every arithmetic operation costs the
MAC energy (the paper delegates the same computation to Accelergy tables).
The per-component breakdown ("MAC", "Reg", "L1", "DRAM", ...) feeds
Fig. 13.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..arch import Architecture
from ..ir import Workload
from .metrics import LevelTraffic


def compute_energy(workload: Workload, arch: Architecture,
                   traffic: Dict[int, LevelTraffic]
                   ) -> Tuple[float, Dict[str, float]]:
    """Total energy (pJ) and per-component breakdown for a mapping.

    ``read`` accesses cost the level's read energy; ``fill`` and ``update``
    are writes into the level and cost its write energy.
    """
    breakdown: Dict[str, float] = {}
    for level_idx, level_traffic in traffic.items():
        level = arch.level(level_idx)
        pj = (level_traffic.total("read") * level.read_energy_pj
              + (level_traffic.total("fill") + level_traffic.total("update"))
              * level.write_energy_pj)
        if pj:
            breakdown[level.name] = breakdown.get(level.name, 0.0) + pj
    mac_pj = workload.total_ops * arch.mac_energy_pj
    breakdown["MAC"] = mac_pj
    return sum(breakdown.values()), breakdown
