"""Shared per-evaluation analysis state.

:class:`AnalysisContext` is the blackboard one pipeline run
(:mod:`repro.analysis.pipeline`) writes its artifacts into, plus a memo
layer for the per-node intermediates several analyses need:

* **slice geometry** (:class:`NodeSlices`) — the (leaf, access) pairs
  below a node grouped by tensor, their merged slice extents, and the
  per-tensor staged word counts.  Data movement (§5.1), the resource
  footprint (§5.2), and the feasibility bounds all consume these; the
  context computes them once per node.
* **loop products** — ``executions(node)`` (how many times a node's
  subtree runs over the whole execution) and the ``NumPE`` compute
  demand recursion of §5.2, both exact integer arithmetic.
* **tensor residency** — the LCA home node of each tensor and the
  "does this subtree use tensor X" predicate driving Seq eviction.

A context is valid for exactly one ``(tree, arch)`` pair.  Memos are
keyed by the *structural subtree fingerprint*
(:mod:`repro.analysis.fingerprint`) rather than ``id(node)``, so

* entries for subtree-local intermediates (slices, NumPE) stay valid
  across trees and can be served from a shared
  :class:`~repro.engine.cache.SubtreeArtifactCache` (``artifact_cache``)
  that persists across evaluations — the incremental-evaluation layer;
* querying the context with a node from a *different* tree raises
  :class:`~repro.errors.ForeignNodeError` instead of silently returning
  stale geometry keyed by a recycled ``id()``;
* after mutating the context's own tree in place,
  :meth:`AnalysisContext.invalidate` re-arms it: tree-global state
  (artifacts, completed passes, executions, tensor homes, fingerprints)
  is dropped, while fingerprint-keyed subtree memos survive — untouched
  sibling subtrees are served from memo, only the mutated path
  recomputes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..arch import Architecture
from ..errors import ForeignNodeError
from ..ir import TensorAccess
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from .fingerprint import cache_namespace, node_fingerprints
from .slices import box_volume, merged_extents, slice_extents

AccessPairs = List[Tuple[OpTile, TensorAccess]]


class NodeSlices:
    """Slice geometry of one tree node, grouped by tensor.

    ``tensors`` is sorted so every float accumulation over it is
    deterministic; ``extents[t]`` merges the slice bounding boxes of all
    reads and writes of ``t`` below the node, and ``staged_words[t]`` is
    that box's volume (one buffer instance's residency per time step).

    Instances may be shared across structurally identical subtrees of
    different trees (the engine's subtree artifact cache does exactly
    that), so consumers must never mutate them; the ``(leaf, access)``
    pairs are only read for the shared :class:`~repro.ir.Operator` /
    :class:`~repro.ir.TensorAccess` objects, which are identical for
    equal-fingerprint subtrees of one workload.
    """

    __slots__ = ("readers", "writers", "tensors", "extents", "staged_words")

    def __init__(self, node: TileNode):
        self.readers: Dict[str, AccessPairs] = {}
        self.writers: Dict[str, AccessPairs] = {}
        for leaf in node.leaves():
            for access in leaf.op.inputs:
                self.readers.setdefault(access.tensor.name, []).append(
                    (leaf, access))
            out = leaf.op.output
            self.writers.setdefault(out.tensor.name, []).append((leaf, out))
        self.tensors: Tuple[str, ...] = tuple(
            sorted(set(self.readers) | set(self.writers)))
        self.extents: Dict[str, Tuple[int, ...]] = {}
        self.staged_words: Dict[str, float] = {}
        for name in self.tensors:
            pairs = self.readers.get(name, []) + self.writers.get(name, [])
            extents = merged_extents(
                [slice_extents(node, leaf, access) for leaf, access in pairs])
            self.extents[name] = extents
            self.staged_words[name] = float(box_volume(extents))


def num_pe_demand(node: TileNode) -> Tuple[int, int]:
    """(MAC PEs, vector PEs) used concurrently by the subtree (§5.2).

    The single home of the paper's ``NumPE`` recursion: concurrent
    siblings (``Para``/``Pipe``) add their demands, time-shared siblings
    (``Seq``/``Shar``) take the max, spatial loops multiply.  Purely
    structural — needs no data-movement information — so the feasibility
    bounds and the resource analysis share it.
    """
    if node.is_leaf():
        assert isinstance(node, OpTile)
        used = node.spatial_trip_count
        return (used, 0) if node.op.kind == "mac" else (0, used)
    sp = node.spatial_trip_count
    if isinstance(node, OpTile):
        mac, vec = num_pe_demand(node.child)
        return sp * mac, sp * vec
    assert isinstance(node, FusionNode)
    demands = [num_pe_demand(c) for c in node.children]
    if node.binding.shares_compute_in_time:
        mac = max(d[0] for d in demands)
        vec = max(d[1] for d in demands)
    else:
        mac = sum(d[0] for d in demands)
        vec = sum(d[1] for d in demands)
    return sp * mac, sp * vec


class AnalysisContext:
    """Blackboard + memo store for one evaluation of one tree.

    Passes communicate exclusively through :meth:`put`/:meth:`get`
    artifacts (declared in their ``reads``/``writes``); the memoized
    accessors below are shared computation, not artifacts, and may be
    called by any pass.

    ``artifact_cache`` (duck-typed: ``store(namespace, kind)`` returning
    a dict-backed store, see
    :class:`~repro.engine.cache.SubtreeArtifactCache`) plugs in a
    persistent cross-evaluation store for subtree-local memos; stores
    are namespaced by
    :func:`~repro.analysis.fingerprint.cache_namespace` so one cache
    can serve many workloads/architectures.
    """

    def __init__(self, tree: AnalysisTree, arch: Architecture, *,
                 model_eviction: bool = True, model_rmw: bool = True,
                 check_memory: bool = True, artifact_cache: Any = None):
        self.tree = tree
        self.arch = arch
        self.model_eviction = model_eviction
        self.model_rmw = model_rmw
        #: Whether the resource-bounds pass checks buffer capacities
        #: (mappers with ``respect_memory=False`` switch it off).
        self.check_memory = check_memory
        #: Optional persistent cross-evaluation artifact store.
        self.artifact_cache = artifact_cache
        #: Names of passes that have finished, in execution order.
        self.completed: List[str] = []
        #: True when a run stopped at the first violation-producing pass.
        self.early_exit = False
        self._artifacts: Dict[str, Any] = {}
        #: ``id(node) -> fingerprint`` for the current tree shape; built
        #: lazily, dropped by :meth:`invalidate`.
        self._fps: Optional[Dict[int, str]] = None
        self._ns: Optional[str] = None
        #: kind -> bound KindStore of ``artifact_cache`` (lazy).
        self._kind_stores: Dict[str, Any] = {}
        #: Context-local memo hits (slices/NumPE served from this
        #: evaluation's own dicts, as opposed to the shared store or a
        #: fresh compute) — ``repro explain`` provenance attribution.
        self.memo_hits = 0
        self._slices: Dict[str, NodeSlices] = {}
        self._num_pe: Dict[str, Tuple[int, int]] = {}
        self._executions: Dict[str, int] = {}
        self._homes: Dict[str, Optional[TileNode]] = {}
        self._homes_built = False
        #: (id(node), tensor) -> crossing? — id-keyed like homes, so
        #: :meth:`invalidate` must clear it (levels/homes may shift).
        self._crossing: Dict[Tuple[int, str], bool] = {}

    # -- artifacts -------------------------------------------------------
    def put(self, name: str, value: Any) -> None:
        self._artifacts[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self._artifacts.get(name, default)

    def has(self, name: str) -> bool:
        return name in self._artifacts

    def mark_completed(self, pass_name: str) -> None:
        """Record a pass as done without running it (resume / skip)."""
        if pass_name not in self.completed:
            self.completed.append(pass_name)

    # -- fingerprints / shared cache -------------------------------------
    def fingerprint(self, node: TileNode) -> str:
        """The node's structural subtree fingerprint (memo key).

        Raises :class:`ForeignNodeError` for nodes outside this
        context's tree — including nodes spliced in by an in-place
        mutation the context has not been told about via
        :meth:`invalidate`.
        """
        if self._fps is None:
            self._fps = node_fingerprints(self.tree.root)
        try:
            return self._fps[id(node)]
        except KeyError:
            raise ForeignNodeError(
                f"node {node.label()!r} is not part of tree "
                f"{self.tree.name!r}; an AnalysisContext serves exactly one "
                f"tree — build a fresh context for other trees, or call "
                f"invalidate() after mutating this context's tree in place"
            ) from None

    def _namespace(self) -> str:
        if self._ns is None:
            self._ns = cache_namespace(self.tree.workload, self.arch,
                                       self.model_eviction, self.model_rmw)
        return self._ns

    def shared_store(self, kind: str) -> Any:
        """The bound per-kind store of the artifact cache (None without).

        The returned :class:`~repro.engine.cache.KindStore` is already
        namespaced to this context's workload/arch/flags; hot loops may
        probe its ``data`` dict directly (recording outcomes via
        ``store.touch(key)``/``store.miss_through(key)`` — the latter
        also consults the shared/disk tiers for tiered kinds) instead
        of paying :meth:`shared_get` dispatch per lookup.
        """
        if self.artifact_cache is None:
            return None
        store = self._kind_stores.get(kind)
        if store is None:
            store = self.artifact_cache.store(self._namespace(), kind)
            self._kind_stores[kind] = store
        return store

    def shared_get(self, kind: str, key: Any) -> Any:
        """Look ``key`` up in the cross-evaluation artifact cache."""
        store = self.shared_store(kind)
        if store is None:
            return None
        value = store.data.get(key)
        if value is None:
            # Counts the L1 miss, then falls through to the L2/L3 tiers
            # for tiered kinds (tier hits re-enter L1 and return here).
            return store.miss_through(key)
        store.touch(key)
        return value

    def shared_put(self, kind: str, key: Any, value: Any) -> None:
        store = self.shared_store(kind)
        if store is not None:
            store.put(key, value)

    def invalidate(self, subtree: Optional[TileNode] = None) -> None:
        """Re-arm the context after an in-place mutation of its tree.

        Drops everything whose validity spans the whole tree: pipeline
        artifacts and completed-pass bookkeeping, the fingerprint map,
        execution counts (they depend on *ancestor* loops, which an
        unchanged fingerprint cannot vouch for), and tensor homes.
        Fingerprint-keyed subtree memos (slices, NumPE) are kept:
        subtrees the mutation did not touch keep their fingerprints and
        are served from memo (or the shared artifact cache), so only the
        mutated path to the root recomputes.

        ``subtree`` optionally names the mutated subtree; it must belong
        to this context's tree (checked via parent pointers — the
        fingerprint map is stale by definition here).  The mutation must
        preserve the tree's operator->leaf structure (loop/factor
        changes, binding flips); splicing different *operators* in needs
        a new ``AnalysisTree`` and a new context.
        """
        if subtree is not None:
            top = subtree
            while top.parent is not None:
                top = top.parent
            if top is not self.tree.root:
                raise ForeignNodeError(
                    f"subtree {subtree.label()!r} does not belong to tree "
                    f"{self.tree.name!r}; invalidate() only covers this "
                    f"context's own tree")
        self._artifacts.clear()
        self.completed.clear()
        self.early_exit = False
        self._fps = None
        self._executions.clear()
        self._homes = {}
        self._homes_built = False
        self._crossing.clear()

    # -- memoized per-node intermediates ---------------------------------
    def node_slices(self, node: TileNode) -> NodeSlices:
        fp = self.fingerprint(node)
        cached = self._slices.get(fp)
        if cached is None:
            cached = self.shared_get("slices", fp)
            if cached is None:
                cached = NodeSlices(node)
                self.shared_put("slices", fp, cached)
            self._slices[fp] = cached
        else:
            self.memo_hits += 1
        return cached

    def num_pe(self, node: TileNode) -> Tuple[int, int]:
        fp = self.fingerprint(node)
        cached = self._num_pe.get(fp)
        if cached is None:
            cached = self.shared_get("num_pe", fp)
            if cached is None:
                cached = self._num_pe_recurse(node)
                self.shared_put("num_pe", fp, cached)
            self._num_pe[fp] = cached
        else:
            self.memo_hits += 1
        return cached

    def _num_pe_recurse(self, node: TileNode) -> Tuple[int, int]:
        """§5.2 ``NumPE`` with per-child memo lookups.

        Mirrors :func:`num_pe_demand` exactly (same integer arithmetic)
        but recurses through :meth:`num_pe`, so a fresh root combines
        cached per-subtree demands instead of re-walking whole groups.
        """
        if node.is_leaf():
            assert isinstance(node, OpTile)
            used = node.spatial_trip_count
            return (used, 0) if node.op.kind == "mac" else (0, used)
        sp = node.spatial_trip_count
        if isinstance(node, OpTile):
            mac, vec = self.num_pe(node.child)
            return sp * mac, sp * vec
        assert isinstance(node, FusionNode)
        demands = [self.num_pe(c) for c in node.children]
        if node.binding.shares_compute_in_time:
            mac = max(d[0] for d in demands)
            vec = max(d[1] for d in demands)
        else:
            mac = sum(d[0] for d in demands)
            vec = sum(d[1] for d in demands)
        return sp * mac, sp * vec

    def executions(self, node: TileNode) -> int:
        """How many times the node's subtree runs over the execution.

        The exact integer product of all ancestors' trip counts (the
        node's own loops are *inside* one execution).  Context-local
        only — the value depends on the node's ancestors, so an
        unchanged subtree fingerprint is no licence to reuse it across
        trees; :meth:`invalidate` clears it wholesale.
        """
        key = self.fingerprint(node)
        cached = self._executions.get(key)
        if cached is None:
            parent = node.parent
            cached = (1 if parent is None
                      else self.executions(parent) * parent.trip_count)
            self._executions[key] = cached
        return cached

    def subtree_uses(self, node: TileNode, tensor_name: str) -> bool:
        """Whether any leaf below ``node`` reads or writes the tensor.

        Equivalent to membership in the node's slice tensors (every
        access is an input or the output of some leaf op), so it rides
        the slices memo instead of re-walking leaves.
        """
        return tensor_name in self.node_slices(node).tensors

    def home(self, tensor_name: str) -> Optional[TileNode]:
        """The tensor's LCA home node (None for workload inputs/outputs)."""
        if not self._homes_built:
            self._homes = {t.name: self.tree.tensor_home(t.name)
                           for t in self.tree.workload.tensors()}
            self._homes_built = True
        return self._homes.get(tensor_name)

    def tensor_crossing(self, node: TileNode, tensor_name: str) -> bool:
        """Whether the tensor's slice crosses into ``node``'s buffer.

        True iff the tensor lives above the node (external, or homed at
        a strict ancestor) *and* the node's level is below its fill
        source — exactly the condition under which the data-movement
        analysis records fills/updates for it at this node, and hence
        the resource analysis double-buffers it.
        """
        key = (id(node), tensor_name)
        hit = self._crossing.get(key)
        if hit is None:
            home = self.home(tensor_name)
            if home is not None and not any(
                    a is home for a in node.ancestors()):
                hit = False
            else:
                source_level = (node.parent.level if node.parent is not None
                                else self.arch.dram_index)
                hit = node.level < source_level
            self._crossing[key] = hit
        return hit

    def staged_bytes_lower_bound(self, node: TileNode) -> float:
        """Byte floor of one buffer instance of ``node``.

        Crossing tensors are double-buffered by the resource analysis;
        with the :meth:`tensor_crossing` predicate this sum equals the
        full model's own-node staged bytes exactly, and the full
        footprint only *adds* child contributions on top — so the bound
        is sound for the feasibility screen while catching mappings
        that only violate capacity through double-buffered crossing
        tensors.
        """
        slices = self.node_slices(node)
        total = 0.0
        for tensor_name in slices.tensors:
            factor = 2.0 if self.tensor_crossing(node, tensor_name) else 1.0
            total += (factor * slices.staged_words[tensor_name]
                      * self.tree.workload.tensor(tensor_name).word_bytes)
        return total
