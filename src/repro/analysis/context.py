"""Shared per-evaluation analysis state.

:class:`AnalysisContext` is the blackboard one pipeline run
(:mod:`repro.analysis.pipeline`) writes its artifacts into, plus a memo
layer for the per-node intermediates several analyses need:

* **slice geometry** (:class:`NodeSlices`) — the (leaf, access) pairs
  below a node grouped by tensor, their merged slice extents, and the
  per-tensor staged word counts.  Data movement (§5.1), the resource
  footprint (§5.2), and the feasibility bounds all consume these; the
  context computes them once per node.
* **loop products** — ``executions(node)`` (how many times a node's
  subtree runs over the whole execution) and the ``NumPE`` compute
  demand recursion of §5.2, both exact integer arithmetic.
* **tensor residency** — the LCA home node of each tensor and the
  "does this subtree use tensor X" predicate driving Seq eviction.

A context is valid for exactly one ``(tree, arch)`` pair; memo keys are
``id(node)`` so it must not outlive its tree.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..arch import Architecture
from ..ir import TensorAccess
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from .slices import box_volume, merged_extents, slice_extents

AccessPairs = List[Tuple[OpTile, TensorAccess]]


class NodeSlices:
    """Slice geometry of one tree node, grouped by tensor.

    ``tensors`` is sorted so every float accumulation over it is
    deterministic; ``extents[t]`` merges the slice bounding boxes of all
    reads and writes of ``t`` below the node, and ``staged_words[t]`` is
    that box's volume (one buffer instance's residency per time step).
    """

    __slots__ = ("readers", "writers", "tensors", "extents", "staged_words")

    def __init__(self, node: TileNode):
        self.readers: Dict[str, AccessPairs] = {}
        self.writers: Dict[str, AccessPairs] = {}
        for leaf in node.leaves():
            for access in leaf.op.inputs:
                self.readers.setdefault(access.tensor.name, []).append(
                    (leaf, access))
            out = leaf.op.output
            self.writers.setdefault(out.tensor.name, []).append((leaf, out))
        self.tensors: Tuple[str, ...] = tuple(
            sorted(set(self.readers) | set(self.writers)))
        self.extents: Dict[str, Tuple[int, ...]] = {}
        self.staged_words: Dict[str, float] = {}
        for name in self.tensors:
            pairs = self.readers.get(name, []) + self.writers.get(name, [])
            extents = merged_extents(
                [slice_extents(node, leaf, access) for leaf, access in pairs])
            self.extents[name] = extents
            self.staged_words[name] = float(box_volume(extents))


def num_pe_demand(node: TileNode) -> Tuple[int, int]:
    """(MAC PEs, vector PEs) used concurrently by the subtree (§5.2).

    The single home of the paper's ``NumPE`` recursion: concurrent
    siblings (``Para``/``Pipe``) add their demands, time-shared siblings
    (``Seq``/``Shar``) take the max, spatial loops multiply.  Purely
    structural — needs no data-movement information — so the feasibility
    bounds and the resource analysis share it.
    """
    if node.is_leaf():
        assert isinstance(node, OpTile)
        used = node.spatial_trip_count
        return (used, 0) if node.op.kind == "mac" else (0, used)
    sp = node.spatial_trip_count
    if isinstance(node, OpTile):
        mac, vec = num_pe_demand(node.child)
        return sp * mac, sp * vec
    assert isinstance(node, FusionNode)
    demands = [num_pe_demand(c) for c in node.children]
    if node.binding.shares_compute_in_time:
        mac = max(d[0] for d in demands)
        vec = max(d[1] for d in demands)
    else:
        mac = sum(d[0] for d in demands)
        vec = sum(d[1] for d in demands)
    return sp * mac, sp * vec


class AnalysisContext:
    """Blackboard + memo store for one evaluation of one tree.

    Passes communicate exclusively through :meth:`put`/:meth:`get`
    artifacts (declared in their ``reads``/``writes``); the memoized
    accessors below are shared computation, not artifacts, and may be
    called by any pass.
    """

    def __init__(self, tree: AnalysisTree, arch: Architecture, *,
                 model_eviction: bool = True, model_rmw: bool = True,
                 check_memory: bool = True):
        self.tree = tree
        self.arch = arch
        self.model_eviction = model_eviction
        self.model_rmw = model_rmw
        #: Whether the resource-bounds pass checks buffer capacities
        #: (mappers with ``respect_memory=False`` switch it off).
        self.check_memory = check_memory
        #: Names of passes that have finished, in execution order.
        self.completed: List[str] = []
        #: True when a run stopped at the first violation-producing pass.
        self.early_exit = False
        self._artifacts: Dict[str, Any] = {}
        self._slices: Dict[int, NodeSlices] = {}
        self._num_pe: Dict[int, Tuple[int, int]] = {}
        self._executions: Dict[int, int] = {}
        self._uses: Dict[Tuple[int, str], bool] = {}
        self._homes: Dict[str, Optional[TileNode]] = {}
        self._homes_built = False

    # -- artifacts -------------------------------------------------------
    def put(self, name: str, value: Any) -> None:
        self._artifacts[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self._artifacts.get(name, default)

    def has(self, name: str) -> bool:
        return name in self._artifacts

    def mark_completed(self, pass_name: str) -> None:
        """Record a pass as done without running it (resume / skip)."""
        if pass_name not in self.completed:
            self.completed.append(pass_name)

    # -- memoized per-node intermediates ---------------------------------
    def node_slices(self, node: TileNode) -> NodeSlices:
        key = id(node)
        cached = self._slices.get(key)
        if cached is None:
            cached = NodeSlices(node)
            self._slices[key] = cached
        return cached

    def num_pe(self, node: TileNode) -> Tuple[int, int]:
        key = id(node)
        cached = self._num_pe.get(key)
        if cached is None:
            cached = num_pe_demand(node)
            self._num_pe[key] = cached
        return cached

    def executions(self, node: TileNode) -> int:
        """How many times the node's subtree runs over the execution.

        The exact integer product of all ancestors' trip counts (the
        node's own loops are *inside* one execution).
        """
        key = id(node)
        cached = self._executions.get(key)
        if cached is None:
            parent = node.parent
            cached = (1 if parent is None
                      else self.executions(parent) * parent.trip_count)
            self._executions[key] = cached
        return cached

    def subtree_uses(self, node: TileNode, tensor_name: str) -> bool:
        key = (id(node), tensor_name)
        cached = self._uses.get(key)
        if cached is None:
            cached = any(leaf.op.uses(tensor_name) for leaf in node.leaves())
            self._uses[key] = cached
        return cached

    def home(self, tensor_name: str) -> Optional[TileNode]:
        """The tensor's LCA home node (None for workload inputs/outputs)."""
        if not self._homes_built:
            self._homes = {t.name: self.tree.tensor_home(t.name)
                           for t in self.tree.workload.tensors()}
            self._homes_built = True
        return self._homes.get(tensor_name)

    def staged_bytes_lower_bound(self, node: TileNode) -> float:
        """Single-buffered byte floor of one buffer instance of ``node``.

        The full footprint analysis adds child contributions and
        double-buffering on top and never subtracts, so this is a sound
        lower bound for the feasibility screen.
        """
        slices = self.node_slices(node)
        total = 0.0
        for tensor_name in slices.tensors:
            total += (slices.staged_words[tensor_name]
                      * self.tree.workload.tensor(tensor_name).word_bytes)
        return total
