"""Resource-usage analysis (§5.2).

Computes, bottom-up over the analysis tree:

* **Compute usage** — the paper's ``NumPE`` recursion: concurrent siblings
  (``Para``/``Pipe``) add their PE demands, time-shared siblings
  (``Seq``/``Shar``) take the max.  MAC and vector pools are tracked
  separately (the validation accelerator has distinct arrays).
* **Memory footprint** — the ``FootPrint`` recursion: ``Seq`` time-shares
  the buffer (max), every other binding co-stages (sum).  Crossing tensors
  are double-buffered (the latency model of §5.3 assumes load/compute/store
  overlap); intermediates resident at their home node are single-buffered.
* **Instance occupancy** — how many spatial instances of each memory level
  the mapping occupies (the sub-core utilization metric of Fig. 11d).

Violations (PE pool, per-instance capacity, fanout) are returned as
human-readable strings; mappers use them to reject candidates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..arch import Architecture
from ..tile.bindings import Binding
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from .context import AnalysisContext
from .datamovement import DataMovementResult
from .metrics import ResourceUsage


class ResourceAnalysis:
    """Runs the §5.2 recursions over a tree with known data flows.

    The ``NumPE`` recursion lives in
    :func:`~repro.analysis.context.num_pe_demand`; passing a shared
    :class:`AnalysisContext` reuses its memoized value (the feasibility
    bounds pass computes the same demand).
    """

    def __init__(self, tree: AnalysisTree, arch: Architecture,
                 movement: DataMovementResult,
                 context: Optional[AnalysisContext] = None):
        self.tree = tree
        self.arch = arch
        self.movement = movement
        self.ctx = context if context is not None else AnalysisContext(
            tree, arch)

    # ------------------------------------------------------------------
    def run(self) -> Tuple[ResourceUsage, List[str]]:
        mac_pe, vec_pe = self._num_pe(self.tree.root)
        footprint = self._footprint(self.tree.root)
        instances = self._instances(self.tree.root)
        usage = ResourceUsage(
            num_pe=mac_pe, num_vector_pe=vec_pe,
            footprint_bytes=footprint, instances_used=instances)
        return usage, self._violations(usage)

    # ------------------------------------------------------------------
    def _num_pe(self, node: TileNode) -> Tuple[int, int]:
        """(MAC PEs, vector PEs) used concurrently by the subtree."""
        return self.ctx.num_pe(node)

    # ------------------------------------------------------------------
    def _staged_bytes(self, node: TileNode) -> float:
        """Bytes resident in one instance of ``node``'s buffer per step."""
        flows = self.movement.flows(node)
        total = 0.0
        for tensor_name, words in flows.staged_words.items():
            wb = self.tree.workload.tensor(tensor_name).word_bytes
            crossing = (tensor_name in flows.fills
                        or tensor_name in flows.updates)
            factor = 2.0 if crossing else 1.0  # double buffering
            total += words * wb * factor
        return total

    def _footprint(self, node: TileNode) -> Dict[int, float]:
        """Peak bytes per instance at each memory level for this subtree."""
        if node.is_leaf():
            return {node.level: self._staged_bytes(node)}
        if isinstance(node, OpTile):
            usage = dict(self._footprint(node.child))
        else:
            assert isinstance(node, FusionNode)
            child_maps = [self._footprint(c) for c in node.children]
            usage = {}
            for cmap in child_maps:
                for level, used in cmap.items():
                    if node.binding is Binding.SEQ:
                        usage[level] = max(usage.get(level, 0.0), used)
                    else:
                        usage[level] = usage.get(level, 0.0) + used
        own = self._staged_bytes(node)
        usage[node.level] = usage.get(node.level, 0.0) + own
        return usage

    # ------------------------------------------------------------------
    def _instances(self, node: TileNode) -> Dict[int, int]:
        """Spatial instances of each level this subtree occupies.

        Siblings under any binding share the same instance set — fusion
        co-locates their data so the shared buffer can hold the
        intermediate (concurrent siblings divide *compute*, which NumPE
        accounts for).  Only spatial loops multiply the instance demand.
        """
        if node.is_leaf():
            return {node.level: 1}
        if isinstance(node, OpTile):
            usage = dict(self._instances(node.child))
        else:
            assert isinstance(node, FusionNode)
            usage = {}
            for child in node.children:
                for level, n in self._instances(child).items():
                    usage[level] = max(usage.get(level, 0), n)
        usage[node.level] = max(usage.get(node.level, 0), 1)
        sp = node.spatial_trip_count
        return {level: n * sp for level, n in usage.items()}

    # ------------------------------------------------------------------
    def _violations(self, usage: ResourceUsage) -> List[str]:
        problems: List[str] = []
        if usage.num_pe > self.arch.pe_count:
            problems.append(
                f"compute: {usage.num_pe} MAC PEs needed, "
                f"{self.arch.pe_count} available")
        if usage.num_vector_pe > self.arch.vector_pe_count:
            problems.append(
                f"compute: {usage.num_vector_pe} vector lanes needed, "
                f"{self.arch.vector_pe_count} available")
        for level_idx, used in sorted(usage.footprint_bytes.items()):
            level = self.arch.level(level_idx)
            if level.capacity_bytes is not None and used > level.capacity_bytes:
                problems.append(
                    f"memory: level {level.name} needs {used / 1024:.1f} KB "
                    f"per instance, capacity {level.capacity_bytes / 1024:.1f}"
                    f" KB")
        for level_idx, n in sorted(usage.instances_used.items()):
            level = self.arch.level(level_idx)
            if n > level.fanout:
                problems.append(
                    f"fanout: level {level.name} needs {n} instances, "
                    f"has {level.fanout}")
        return problems
