"""Batched, array-native analysis kernels.

This package evaluates *cohorts* of factor candidates — sibling points of
one genome's :class:`~repro.mapper.factors.FactorSpace` that differ only
in tiling-factor values — in one vectorized NumPy int64 sweep instead of
one scalar tree walk per candidate.  The contract is byte-identity with
the scalar pipeline: every integer recursion (slice geometry, boundary
recursion walk volumes, coverage products, NumPE/footprint/instances) is
exact int64 arithmetic with an overflow guard that *raises* instead of
wrapping, and the float latency composition replays the scalar
accumulation order operation for operation, so a batched member's cost
equals the scalar cost bit for bit (cross-checked per structure class
against a real scalar evaluation, and oracle/property-tested).

Candidates are grouped into *structure classes*: members whose factor
values emit the same loop skeleton (same loops present, same unit-step
spatial lanes).  Within a class the scalar algorithms take identical
control-flow paths, so they can be re-executed once with ``(K,)`` arrays
in place of scalar loop counts/steps.  Classes that cannot be proven
identical (cross-check mismatch, int64 overflow) fall back to the scalar
path member by member — batching is purely a performance layer.

NumPy is an optional dependency of this package alone; everything else
in the repo stays NumPy-free.  ``HAVE_NUMPY`` gates the engine wiring.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every import
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except Exception:  # pragma: no cover - numpy-free environments
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY"]
