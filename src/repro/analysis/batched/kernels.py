"""Checked int64 array primitives for the batched kernels.

Every integer quantity in the scalar analysis is an unbounded Python
int; NumPy int64 silently wraps.  These helpers make the batched/scalar
boundary explicit: operands must be ``int64`` (anything else raises —
no silent casts) and every multiply/add is post-checked so a product
near 2^63 *raises* :class:`BatchedOverflowError` instead of wrapping —
the sweep driver then falls back to the scalar path for the affected
structure class.

The overflow checks are exact even though the candidate result ``c``
has already wrapped:

* ``mul64`` — for ``a != 0``, ``c // a == b`` iff ``a * b`` fit.  When
  the true product overflows, it differs from the wrapped ``c`` by a
  nonzero multiple of 2^64, so ``c // a`` (floor division) cannot give
  back ``b`` for any ``|a| >= 1``.
* ``add64``/``sub64`` — two's-complement sign rules: a sum overflows
  iff both operands share a sign and the result's sign flips; a
  difference overflows iff the operands' signs differ and the result
  does not take the minuend's sign.

These run in the innermost batched loops (hundreds of thousands of
calls per sweep), so they stay lean: plain ndarray operators (ndarray
int64 arithmetic wraps without warning machinery, so no ``errstate``
dance is needed), a ``dtype`` gate per operand, and ``.any()`` on the
check mask.
"""

from __future__ import annotations

import numpy as np

I8 = np.int64
F8 = np.float64

_I8_MIN = np.iinfo(I8).min
_ONE = np.int64(1)
_ZERO = np.int64(0)


class BatchedError(Exception):
    """Base class: this cohort/class cannot be batched (fall back)."""


class BatchedOverflowError(BatchedError):
    """An int64 recursion would exceed 2^63 — raise, never wrap."""


class BatchedPlanError(BatchedError):
    """The rep tree's structure does not match the planner's slots."""


def as_i8(values, what: str = "array"):
    """Require an int64 ndarray — the explicit dtype gate of the
    batched/scalar boundary.  No silent upcasts: anything else raises.
    """
    arr = np.asarray(values)
    if arr.dtype != I8:
        raise BatchedError(f"{what}: expected int64, got {arr.dtype}")
    return arr


def _arg(x, what: str):
    """Cheap per-operand gate: int64 arrays/scalars pass through,
    Python ints are converted (overflow raises), anything else raises."""
    dt = getattr(x, "dtype", None)
    if dt is not None:
        if dt != I8:
            raise BatchedError(f"{what}: expected int64, got {dt}")
        return x
    try:
        return np.int64(x)
    except (OverflowError, TypeError) as exc:
        raise BatchedOverflowError(
            f"{what}: {x!r} does not fit int64") from exc


def mul64(a, b, what: str = "mul64"):
    """Elementwise ``a * b`` with an exact post-hoc overflow check."""
    a = _arg(a, what)
    b = _arg(b, what)
    c = a * b
    nz = a != _ZERO
    bad = nz & (np.floor_divide(c, np.where(nz, a, _ONE)) != b)
    if bad.any():
        raise BatchedOverflowError(f"{what}: int64 product overflow")
    return c


def add64(a, b, what: str = "add64"):
    """Elementwise ``a + b`` with a sign-rule overflow check."""
    a = _arg(a, what)
    b = _arg(b, what)
    c = a + b
    bad = ((a >= _ZERO) == (b >= _ZERO)) & ((c >= _ZERO) != (a >= _ZERO))
    if bad.any():
        raise BatchedOverflowError(f"{what}: int64 sum overflow")
    return c


def sub64(a, b, what: str = "sub64"):
    """Elementwise ``a - b`` with a sign-rule overflow check."""
    a = _arg(a, what)
    b = _arg(b, what)
    c = a - b
    bad = ((a >= _ZERO) != (b >= _ZERO)) & ((c >= _ZERO) != (a >= _ZERO))
    if bad.any():
        raise BatchedOverflowError(f"{what}: int64 difference overflow")
    return c


def abs64(a, what: str = "abs64"):
    """Elementwise ``|a|`` (|int64 min| itself does not fit int64)."""
    a = _arg(a, what)
    if (a == _I8_MIN).any():
        raise BatchedOverflowError(f"{what}: |int64 min| overflow")
    return np.abs(a)


def cdiv64(a, b):
    """Elementwise ceil division for non-negative ``a``, positive ``b``
    — the ``-(-a // b)`` idiom of ``mapper.encoding``.
    """
    return -(np.floor_divide(-a, b))


def box64(extents, n: int):
    """``Π max(0, e)`` over per-dimension extent arrays — the batched
    mirror of :func:`repro.analysis.slices.box_volume`.
    """
    vol = np.ones(n, dtype=I8)
    for e in extents:
        vol = mul64(vol, np.maximum(_ZERO, as_i8(e, "box64 extent")),
                    "box64")
    return vol


def movement64(volume, counts, deltas):
    """The §5.1 boundary recursion, innermost loop first:
    ``s = (count - 1) * (delta + s) + s`` — exact int64 with overflow
    checks at every step (mirror of
    :func:`repro.analysis.slices.movement_recursion`).
    """
    s = np.zeros_like(as_i8(volume, "movement64 volume"))
    for count, delta in zip(reversed(counts), reversed(deltas)):
        inner = add64(as_i8(delta, "movement64 delta"), s, "movement64")
        s = add64(mul64(sub64(count, _ONE, "movement64"), inner,
                        "movement64"), s, "movement64")
    return add64(volume, s, "movement64")
