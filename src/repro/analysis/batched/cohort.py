"""Cohort planning: factor matrices → loop-slot arrays + structure keys.

A *cohort* is a set of candidate points of one genome's
:class:`~repro.mapper.factors.FactorSpace` (an ``(N, n_factors)`` int64
index matrix).  The planner replays ``mapper.encoding.build_genome_tree``'s
tiling arithmetic vectorized over the whole cohort — the spatial-budget
split chain, the ceil-divided temporal blocks, the per-op mid-level
counts — and produces:

* per-loop-slot ``(count, step)`` int64 arrays, one entry per member,
  for every loop whose trip count depends on the factors, and
* a packed *structure key* per member: the bit pattern of which loops
  are emitted (``count > 1`` / budget guards) and which spatial loops
  have unit step (they become slice-coverage lanes).

Members sharing a structure key provably build trees with identical
loop skeletons, so the scalar analysis takes identical control-flow
paths for all of them — the precondition for the array-polymorphic
re-execution in :mod:`repro.analysis.batched.template`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...arch import Architecture
from ...ir import Operator, Workload
from ...mapper.encoding import (Genome, _generic_leaf,
                                shared_tileable_dims)
from ...mapper.factors import FactorSpace
from ...tile.bindings import Binding
from .kernels import I8, cdiv64, mul64

#: Loop-slot keys: ("gs", gi, dim) group spatial, ("gt", gi, dim) group
#: temporal, ("mid", gi, op_name, dim) chain mid-level temporal.
Slot = Tuple


@dataclass
class _GroupPlan:
    gi: int
    binding: Binding
    #: ``(dim, group_size, factor_column)`` per shared tileable dim.
    entries: List[Tuple[str, int, Optional[int]]]
    #: ``(op, {dim: leaf extent})`` per operator — leaf sp*tp products
    #: are factor-independent, so they are resolved once here.
    ops: List[Tuple[Operator, Dict[str, int]]]
    dim_set: frozenset = field(default_factory=frozenset)


@dataclass
class CohortPlan:
    """One planned cohort: members, their values, slot arrays, keys."""

    members: List[Tuple[int, ...]]
    #: ``slot -> (count, step, emitted)`` int64/bool arrays over members.
    slots: Dict[Slot, Tuple[np.ndarray, np.ndarray, np.ndarray]]
    #: Packed whole-tree structure-key bytes per member (the per-group
    #: keys concatenated in group order).
    keys: List[bytes]
    #: ``group_keys[gi][pos]`` — the structure key restricted to group
    #: ``gi``'s bits.  Fused groups are independent analysis cones (the
    #: DRAM Seq wrapper is loop-free), so members batch per *group*
    #: skeleton: two members differing only in another group's factors
    #: share group ``gi``'s template.
    group_keys: List[List[bytes]]

    def classes(self) -> Dict[bytes, List[int]]:
        """Member positions grouped by structure key (insertion order)."""
        out: Dict[bytes, List[int]] = {}
        for pos, key in enumerate(self.keys):
            out.setdefault(key, []).append(pos)
        return out

    def group_classes(self, gi: int) -> Dict[bytes, List[int]]:
        """Member positions grouped by group ``gi``'s structure key."""
        out: Dict[bytes, List[int]] = {}
        for pos, key in enumerate(self.group_keys[gi]):
            out.setdefault(key, []).append(pos)
        return out


class CohortPlanner:
    """Vectorized replay of one genome's tree-construction arithmetic."""

    def __init__(self, workload: Workload, arch: Architecture,
                 genome: Genome, space: FactorSpace):
        self.workload = workload
        self.arch = arch
        self.genome = genome
        self.names: List[str] = list(space.names)
        self.choices: List[np.ndarray] = [
            np.asarray(space.choices[n], dtype=I8) for n in self.names]
        col = {n: j for j, n in enumerate(self.names)}

        self.top_level = arch.num_levels - 2
        self.units = int(arch.level(1).fanout)
        budget = max(4, arch.pe_count // self.units)
        vector_budget = max(2, arch.vector_pe_count // self.units)

        self.group_plans: List[_GroupPlan] = []
        self.slot_ids: set = set()
        for gi, group in enumerate(genome.groups(workload)):
            binding = genome.group_binding(workload, gi)
            dims = shared_tileable_dims(workload, group)[:3]
            sizes = group[-1].dims
            pipe = binding is Binding.PIPE and len(group) > 1
            mac_chains = sum(1 for op in group if op.kind == "mac") or 1
            vec_chains = sum(1 for op in group if op.kind != "mac") or 1
            ops: List[Tuple[Operator, Dict[str, int]]] = []
            for op in group:
                if op.kind == "mac":
                    b = max(4, budget // (mac_chains if pipe else 1))
                else:
                    b = max(2, vector_budget // (vec_chains if pipe else 1))
                sp, tp = _generic_leaf(op, b)
                ext = {d: sp.get(d, 1) * tp.get(d, 1) for d in op.dims}
                ops.append((op, ext))
            entries = [(d, int(sizes[d]), col.get(f"g{gi}_{d}"))
                       for d in dims]
            self.group_plans.append(_GroupPlan(
                gi, binding, entries, ops, frozenset(dims)))
            for d, _, _ in entries:
                self.slot_ids.add(("gs", gi, d))
                self.slot_ids.add(("gt", gi, d))
                for op, _ in ops:
                    if d in op.dims:
                        self.slot_ids.add(("mid", gi, op.name, d))

    # ------------------------------------------------------------------
    def point_at(self, member: Sequence[int]) -> Dict[str, int]:
        """The factor dict of one member (mirror of
        ``FactorSpace.point_at``)."""
        return {name: int(self.choices[j][member[j]])
                for j, name in enumerate(self.names)}

    def sibling_cohort(self, indices: Sequence[int],
                       limit: int = 128) -> Optional[List[Tuple[int, ...]]]:
        """The sibling set of ``indices``: all points sharing its prefix,
        enumerating the longest choice-name suffix whose cross product
        stays within ``limit``.  ``None`` when no suffix of ≥2 points
        fits (nothing worth batching).
        """
        sizes = [len(c) for c in self.choices]
        if not sizes:
            return None
        k, total = 0, 1
        for j in range(len(sizes) - 1, -1, -1):
            if total * sizes[j] > limit:
                break
            total *= sizes[j]
            k += 1
        if k == 0 or total < 2:
            return None
        prefix = tuple(int(i) for i in indices[:len(sizes) - k])
        tails = itertools.product(
            *[range(s) for s in sizes[len(sizes) - k:]])
        return [prefix + tail for tail in tails]

    # ------------------------------------------------------------------
    def plan(self, members: Sequence[Sequence[int]]) -> CohortPlan:
        """Vectorized tiling arithmetic for ``members`` (index tuples)."""
        idx = np.asarray([tuple(m) for m in members], dtype=I8)
        if idx.ndim == 1:
            idx = idx.reshape(len(members), 0)
        n = idx.shape[0]
        values = np.empty((n, len(self.choices)), dtype=I8)
        for j, ch in enumerate(self.choices):
            values[:, j] = ch[idx[:, j]]

        one = np.int64(1)
        slots: Dict[Slot, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        group_keys: List[List[bytes]] = []
        for gp in self.group_plans:
            bits: List[np.ndarray] = []
            sb = np.full(n, self.units, dtype=I8)
            tile: Dict[str, np.ndarray] = {}
            for d, size, c in gp.entries:
                if c is None:
                    v = np.full(n, size, dtype=I8)
                else:
                    v = values[:, c]
                step = np.minimum(np.int64(size), v)
                tile[d] = step
                blocks = cdiv64(np.int64(size), step)
                s_emit = (sb > 1) & (blocks > 1)
                split = np.where(s_emit, np.minimum(sb, blocks), one)
                per = np.where(s_emit, cdiv64(blocks, split), blocks)
                gs_step = mul64(per, step, "plan gs step")
                blocks = np.where(s_emit, per, blocks)
                sb = np.where(s_emit, np.maximum(one, sb // split), sb)
                t_emit = blocks > 1
                slots[("gs", gp.gi, d)] = (split, gs_step, s_emit)
                slots[("gt", gp.gi, d)] = (blocks, step, t_emit)
                bits.append(s_emit)
                bits.append(s_emit & (gs_step == 1))
                bits.append(t_emit)
            for op, ext in gp.ops:
                for d in op.dims:
                    if d not in tile:
                        continue  # factor-independent mid loop
                    want = np.minimum(np.int64(int(op.dims[d])), tile[d])
                    count = cdiv64(want, np.int64(ext[d]))
                    m_emit = count > 1
                    slots[("mid", gp.gi, op.name, d)] = (
                        count, np.full(n, ext[d], dtype=I8), m_emit)
                    bits.append(m_emit)
            if bits:
                mat = np.stack(bits, axis=1).astype(np.uint8)
                packed = np.packbits(mat, axis=1)
                group_keys.append([row.tobytes() for row in packed])
            else:
                group_keys.append([b""] * n)

        keys = [b"".join(gk[i] for gk in group_keys) for i in range(n)]
        return CohortPlan([tuple(int(i) for i in m) for m in members],
                          slots, keys, group_keys)
