"""Structure templates: the scalar analysis, re-executed on arrays.

The batched layer exploits that fused groups are *independent analysis
cones*: the root of every genome tree is either a single group node or a
loop-free DRAM Seq wrapper, so slice coverage, truncated ancestor walks,
NumPE/footprint/instance recursions and the latency composition of one
group never read another group's loops (eviction verdicts at the root
depend only on which operators use a tensor — genome structure, not
factor values).  The analysis therefore factorizes:

* a :class:`GroupTemplate` re-executes one group subtree for every
  cohort member sharing that group's *skeleton* (its per-group structure
  key from :mod:`repro.analysis.batched.cohort`) with ``(K,)``
  int64/float64 arrays in place of scalars, and
* :func:`compose_costs` combines per-group aggregates exactly the way
  the scalar passes combine them at the root wrapper — Seq shares
  compute in time (NumPE max, latency sum) and buffers across time
  (footprint max-merge).

Factorizing per group is what makes batching pay: members that differ
only in *another* group's factors share this group's template, so the
prefix groups of a sibling cohort collapse into one full-width class,
and a template (keyed by ``(gi, group key)``) survives cohort after
cohort instead of being rebuilt whenever an unrelated factor changes
the whole-tree skeleton.

A template is built from one *representative* member's real tree
(:class:`RepStructure`).  Everything structural — slice (leaf, access)
pairs, crossing predicates, Seq-eviction verdicts, tensor homes, the
truncated ancestor walks — is resolved once on the representative; the
per-group key proves every member takes identical control flow.  All
integer math uses the checked kernels (overflow raises, the class falls
back to the scalar path); float composition replays the scalar
accumulation order operation for operation, so results are
bit-identical, not just close.  The composed search cost of a member is
``inf`` iff its resource violations are non-empty, else its latency —
exactly ``latency_cost`` of a scalar ``evaluate(until="latency",
stop_on_violation=True)`` run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...tile.bindings import Binding
from ...tile.tree import FusionNode, OpTile, TileNode
from ..context import AnalysisContext
from ..datamovement import DataMovementAnalysis
from .cohort import CohortPlan, CohortPlanner
from .kernels import (F8, I8, BatchedPlanError, add64, box64, movement64,
                      mul64, sub64, abs64)

#: ``publish(kind, key, value)`` — lands batched artifacts in the tiered
#: cache under the same per-kind keys the scalar path uses.
Publisher = Callable[[str, Tuple, int], None]

#: Rows kept per node memo (a runaway-space backstop, not a tuning knob).
MEMO_LIMIT = 65536


@dataclass
class _WalkPlan:
    """One (node, tensor, direction) truncated ancestor walk."""

    access: object
    walked: List  # Loop objects, outer -> inner
    mult: List    # Loop objects, scalar append order
    #: Writer walks only: reduction dims + the ideal (reduction-free)
    #: walk loops for the §5.1.2 RMW correction.
    red: frozenset = frozenset()
    ideal_loops: List = field(default_factory=list)
    #: ``(L, D)`` int64 access coefficients — ``coeff[l, d]`` is the
    #: walked loop ``l``'s coefficient in access expression ``d``.
    #: Structural, so resolved once; the stacked walk recursion reads
    #: them instead of calling ``expr.coeff`` per loop per member.
    coeff: Optional[np.ndarray] = None
    ideal_coeff: Optional[np.ndarray] = None


def _coeff_matrix(access, loops) -> np.ndarray:
    """``(L, D)`` int64 matrix of ``access.exprs[d].coeff(loops[l].dim)``."""
    mat = np.zeros((len(loops), len(access.exprs)), dtype=I8)
    for li, lp in enumerate(loops):
        for di, expr in enumerate(access.exprs):
            mat[li, di] = int(expr.coeff(lp.dim))
    return mat


@dataclass
class _TensorPlan:
    name: str
    word_bytes: float
    crossing: bool
    #: (leaf, access) pairs in readers+writers order (extent merging).
    pairs: List
    reader: Optional[_WalkPlan]
    writer: Optional[_WalkPlan]


@dataclass
class _NodePlan:
    node: TileNode
    #: Unit-step spatial loops of the node (slice-coverage lanes).
    lanes: List
    tensors: List[_TensorPlan]
    #: Slot-backed loops (ids) whose count/step feed this node's flows —
    #: the memo key columns.  Constant loops never vary, so they are
    #: excluded; a node whose flows touch no slot-backed loop has one
    #: memo row shared by every member of every cohort.
    dep_loops: List[int] = field(default_factory=list)
    #: Flow-name sets are structural (maximal insertion makes ``fills``
    #: membership value-independent), so memo rows store plain floats.
    fill_names: Tuple[str, ...] = ()
    update_names: Tuple[str, ...] = ()
    staged_names: Tuple[str, ...] = ()
    #: row bytes -> ({fills}, {updates}, {staged}) per-member floats.
    memo: Dict[bytes, Tuple] = field(default_factory=dict)


@dataclass
class GroupResult:
    """Per-member aggregates of one group subtree — everything the root
    composition needs, nothing node-local."""

    latency: np.ndarray           # float64 (K,)
    mac: np.ndarray               # int64 (K,)
    vec: np.ndarray               # int64 (K,)
    footprint: Dict[int, np.ndarray]   # level -> float64 bytes (K,)
    instances: Dict[int, np.ndarray]   # level -> int64 (K,)


class RepStructure:
    """One representative member's real tree plus analysis context.

    Built once per representative; the :class:`GroupTemplate` objects
    harvested from it (one per group) share its tree, context, movement
    analysis and loop-to-slot resolution.  Construction raises
    :class:`BatchedPlanError` when the tree does not match the planner's
    slot layout (a planner bug, never a data condition).
    """

    def __init__(self, planner: CohortPlanner, rep_member: Sequence[int],
                 *, model_eviction: bool = True, model_rmw: bool = True):
        from ...mapper.encoding import build_genome_tree

        self.planner = planner
        self.arch = planner.arch
        self.workload = planner.workload
        rep_point = planner.point_at(rep_member)
        self.tree = build_genome_tree(planner.workload, planner.arch,
                                      planner.genome, rep_point)
        self.ctx = AnalysisContext(self.tree, self.arch,
                                   model_eviction=model_eviction,
                                   model_rmw=model_rmw)
        self.dm = DataMovementAnalysis(self.tree, self.arch,
                                       context=self.ctx)
        self.model_rmw = self.ctx.model_rmw
        root = self.tree.root
        self.wrapped = root.level == self.arch.dram_index
        if self.wrapped:
            # The DRAM Seq wrapper (loop-free by construction).
            if root.loops:
                raise BatchedPlanError("root wrapper carries loops")
            self.group_nodes: List[TileNode] = list(root.children_nodes())
        else:
            self.group_nodes = [root]
        #: id(loop) -> planner slot (factor-dependent) or None (constant).
        self.slot_of: Dict[int, Optional[Tuple]] = {}
        self._resolve_slots()

    def _resolve_slots(self) -> None:
        if len(self.group_nodes) != len(self.planner.group_plans):
            raise BatchedPlanError("group count mismatch")
        for gp, gnode in zip(self.planner.group_plans, self.group_nodes):
            for lp in gnode.loops:
                slot = ("gs" if lp.spatial else "gt", gp.gi, lp.dim)
                if slot not in self.planner.slot_ids:
                    raise BatchedPlanError(f"unknown group loop {lp!r}")
                self.slot_of[id(lp)] = slot
            if isinstance(gnode, FusionNode):
                chains = list(gnode.children)
            elif isinstance(gnode, OpTile) and gnode.child is not None:
                chains = [gnode.child]
            else:
                raise BatchedPlanError("group node without chain")
            if len(chains) != len(gp.ops):
                raise BatchedPlanError("chain count mismatch")
            for chain, (op, _ext) in zip(chains, gp.ops):
                if not isinstance(chain, OpTile) or chain.op is not op:
                    raise BatchedPlanError("chain/op order mismatch")
                for lp in chain.loops:
                    if lp.dim in gp.dim_set:
                        slot = ("mid", gp.gi, op.name, lp.dim)
                        if slot not in self.planner.slot_ids:
                            raise BatchedPlanError(
                                f"unknown mid loop {lp!r}")
                        self.slot_of[id(lp)] = slot
                    else:
                        self.slot_of[id(lp)] = None
                leaf = chain.child
                if leaf is None or not leaf.is_leaf():
                    raise BatchedPlanError("chain without leaf")
                for lp in leaf.loops:
                    self.slot_of[id(lp)] = None
        for node in self.tree.root.walk():
            for lp in node.loops:
                if id(lp) not in self.slot_of:
                    raise BatchedPlanError(f"unresolved loop {lp!r}")


class GroupTemplate:
    """Array-polymorphic re-execution of one group subtree."""

    def __init__(self, structure: RepStructure, gi: int):
        self.structure = structure
        self.gi = gi
        self.planner = structure.planner
        self.arch = structure.arch
        self.workload = structure.workload
        self.ctx = structure.ctx
        self._dm = structure.dm
        self.model_rmw = structure.model_rmw
        self.gnode: TileNode = structure.group_nodes[gi]
        self.nodes: List[TileNode] = list(self.gnode.walk())
        self._slot_of = structure.slot_of
        self._node_plans: List[_NodePlan] = [self._plan_node(n)
                                             for n in self.nodes]
        #: Slot-backed loops anywhere in the subtree, in walk order —
        #: the whole-result memo key columns (a member's aggregates are
        #: a pure function of these counts/steps).
        self._dep_slots: List[Tuple] = []
        for node in self.nodes:
            for lp in node.loops:
                slot = self._slot_of[id(lp)]
                if slot is not None:
                    self._dep_slots.append(slot)
        #: subtree row bytes -> flat aggregate floats/ints.
        self.result_memo: Dict[bytes, Tuple] = {}
        #: Footprint/instance level orders (structural; fixed after the
        #: first evaluation) for exact memo reassembly.
        self._fp_levels: Optional[Tuple[int, ...]] = None
        self._inst_levels: Optional[Tuple[int, ...]] = None

    def _plan_node(self, node: TileNode) -> _NodePlan:
        slices = self.ctx.node_slices(node)
        lanes = [lp for lp in node.spatial_loops if lp.step == 1]
        tensors: List[_TensorPlan] = []
        for name in slices.tensors:
            crossing = self.ctx.tensor_crossing(node, name)
            pairs = (slices.readers.get(name, [])
                     + slices.writers.get(name, []))
            reader = writer = None
            if crossing:
                home = self.ctx.home(name)
                reader_pairs = slices.readers.get(name, [])
                writer_pairs = slices.writers.get(name, [])
                if reader_pairs:
                    _leaf, access = reader_pairs[0]
                    walked, mult = self._mirror_walk(node, name, access,
                                                     home)
                    reader = _WalkPlan(access, walked, mult,
                                       coeff=_coeff_matrix(access, walked))
                if writer_pairs:
                    leaf, access = writer_pairs[0]
                    walked, mult = self._mirror_walk(node, name, access,
                                                     home)
                    red = leaf.op.reduction_dims
                    ideal = [lp for lp in walked if lp.dim not in red]
                    writer = _WalkPlan(access, walked, mult,
                                       red=frozenset(red),
                                       ideal_loops=ideal,
                                       coeff=_coeff_matrix(access, walked),
                                       ideal_coeff=_coeff_matrix(access,
                                                                 ideal))
            tensors.append(_TensorPlan(
                name=name,
                word_bytes=float(self.workload.tensor(name).word_bytes),
                crossing=crossing, pairs=pairs,
                reader=reader, writer=writer))
        nplan = _NodePlan(node=node, lanes=lanes, tensors=tensors)
        nplan.dep_loops = self._flow_deps(nplan)
        nplan.staged_names = tuple(t.name for t in tensors)
        nplan.fill_names = tuple(
            t.name for t in tensors
            if t.crossing and (t.reader is not None
                               or (t.writer is not None and self.model_rmw)))
        nplan.update_names = tuple(t.name for t in tensors
                                   if t.crossing and t.writer is not None)
        return nplan

    def _flow_deps(self, nplan: _NodePlan) -> List[int]:
        """Slot-backed loops read anywhere in ``_node_flows`` for this
        node (coverage paths, lanes, walk/multiplier loops) in a fixed
        order — the memo key columns."""
        seen: Dict[int, None] = {}

        def add(loops) -> None:
            for lp in loops:
                if self._slot_of.get(id(lp)) is not None:
                    seen.setdefault(id(lp), None)

        for tplan in nplan.tensors:
            for leaf, _access in tplan.pairs:
                current = leaf
                while current is not nplan.node:
                    add(current.loops)
                    current = current.parent
            add(nplan.lanes)
            for wp in (tplan.reader, tplan.writer):
                if wp is not None:
                    add(wp.walked)
                    add(wp.mult)
        return list(seen)

    def _mirror_walk(self, node: TileNode, tensor_name: str, access,
                     home) -> Tuple[List, List]:
        """``DataMovementAnalysis._build_walk`` collecting Loop objects.

        The branch structure (Seq eviction, unit-step skip, displacement,
        LCA truncation) is evaluated on the representative via the real
        analysis predicates; the group key guarantees every member takes
        the same branches (the walk may climb into the loop-free root
        wrapper, whose eviction verdicts are genome structure, not factor
        values).  ``mult`` preserves the scalar append order — the float
        multiplier product replays it element for element.
        """
        dm = self._dm
        walked: List = []
        mult: List = []
        stopped = False
        if dm._self_evicts(node, tensor_name):
            for lp in node.temporal_loops:
                mult.append(lp)
        else:
            walked.extend(reversed(node.temporal_loops))
        for lp in node.spatial_loops:
            if lp.step == 1:
                continue
            if dm._loop_displaces(access, lp):
                mult.append(lp)
        current: TileNode = node
        while current.parent is not None:
            parent = current.parent
            for lp in parent.spatial_loops:
                if dm._loop_displaces(access, lp):
                    mult.append(lp)
            if (not stopped and self.ctx.model_eviction
                    and dm._evicted_at(parent, current, tensor_name)):
                stopped = True
            if stopped:
                for lp in parent.temporal_loops:
                    mult.append(lp)
            else:
                walked.extend(reversed(parent.temporal_loops))
            if parent is home:
                stopped = True
            current = parent
        walked.reverse()
        return walked, mult

    # -- evaluation -----------------------------------------------------
    def evaluate(self, plan: CohortPlan, positions: Sequence[int],
                 publish: Optional[Publisher] = None,
                 pending: Optional[list] = None) -> GroupResult:
        """Aggregates of the group's members at ``positions`` of ``plan``.

        ``publish`` optionally receives every computed boundary-recursion
        volume under its scalar ``walkvol`` cache key.  ``pending``, when
        given, collects ``(memo, row, value)`` flow-memo insertions for
        the caller to commit once the sweep is validated (a wrong
        template must not leave rows behind); without it insertions are
        immediate.
        """
        pos = np.asarray(positions, dtype=np.intp)
        k = int(pos.shape[0])
        lv = self._loop_values(plan, pos, k)

        t_trip: Dict[int, np.ndarray] = {}
        s_trip: Dict[int, np.ndarray] = {}
        execs: Dict[int, np.ndarray] = {}
        for node in self.nodes:
            t = np.ones(k, dtype=I8)
            for lp in node.temporal_loops:
                t = mul64(t, lv[id(lp)][0], "temporal trip")
            s = np.ones(k, dtype=I8)
            for lp in node.spatial_loops:
                s = mul64(s, lv[id(lp)][0], "spatial trip")
            t_trip[id(node)] = t
            s_trip[id(node)] = s
            if node is self.gnode:
                # Group executions are 1: the parent is either absent or
                # the loop-free root wrapper (trip 1 x 1).
                execs[id(node)] = np.ones(k, dtype=I8)
            else:
                parent = node.parent
                trip = mul64(t_trip[id(parent)], s_trip[id(parent)],
                             "trip count")
                execs[id(node)] = mul64(execs[id(parent)], trip,
                                        "executions")

        flows: Dict[int, Tuple[Dict[str, np.ndarray],
                               Dict[str, np.ndarray],
                               Dict[str, np.ndarray]]] = {}
        for nplan in self._node_plans:
            flows[id(nplan.node)] = self._node_flows_cached(
                nplan, lv, k, publish, pending)

        mac, vec = self._num_pe(self.gnode, s_trip, k)
        footprint = self._footprint(self.gnode, flows, s_trip, k)
        instances = self._instances(self.gnode, s_trip, k)
        latency = self._latency(self.gnode, np.ones(k, dtype=F8), flows,
                                t_trip, s_trip, execs, lv, k)
        return GroupResult(latency=latency, mac=mac, vec=vec,
                           footprint=footprint, instances=instances)

    def evaluate_cached(self, plan: CohortPlan, positions: Sequence[int],
                        publish: Optional[Publisher] = None,
                        pending: Optional[list] = None) -> GroupResult:
        """:meth:`evaluate` behind a whole-result memo.

        A member's aggregates are a pure function of the subtree's
        slot-backed ``(count, step)`` values, so recurring rows — the
        suffix factors of a sibling cohort repeat verbatim sweep after
        sweep — are served as stored floats/ints and reassembled
        exactly (``float``/``int`` round-trip their numpy scalars).
        Memo hits skip publishing, like the per-node flow memo.
        """
        pos = np.asarray(positions, dtype=np.intp)
        k = int(pos.shape[0])
        if self._dep_slots:
            cols = []
            for slot in self._dep_slots:
                counts, steps, _emitted = plan.slots[slot]
                cols.append(counts[pos])
                cols.append(steps[pos])
            mat = np.stack(cols, axis=1)
            rows = [mat[i].tobytes() for i in range(k)]
        else:
            rows = [b""] * k
        memo = self.result_memo
        missing: Dict[bytes, int] = {}
        for i, r in enumerate(rows):
            if r not in memo and r not in missing:
                missing[r] = i
        fresh: Dict[bytes, Tuple] = {}
        if missing:
            # Evaluate one representative per distinct missing row — a
            # sibling cohort's prefix groups collapse to a single row,
            # so their whole class costs one lane of array work.
            sub = list(missing.values())
            res = self.evaluate(plan, [positions[i] for i in sub],
                                publish=publish, pending=pending)
            if self._fp_levels is None:
                self._fp_levels = tuple(res.footprint)
                self._inst_levels = tuple(res.instances)
            for j, r in enumerate(missing):
                fresh[r] = (
                    float(res.latency[j]),
                    int(res.mac[j]), int(res.vec[j]),
                    tuple(float(res.footprint[lev][j])
                          for lev in self._fp_levels),
                    tuple(int(res.instances[lev][j])
                          for lev in self._inst_levels))
            if len(memo) < MEMO_LIMIT:
                if pending is None:
                    memo.update(fresh)
                else:
                    pending.extend((memo, r, v)
                                   for r, v in fresh.items())
        hit = [memo.get(r) or fresh[r] for r in rows]
        footprint = {lev: np.array([h[3][j] for h in hit], dtype=F8)
                     for j, lev in enumerate(self._fp_levels)}
        instances = {lev: np.array([h[4][j] for h in hit], dtype=I8)
                     for j, lev in enumerate(self._inst_levels)}
        return GroupResult(
            latency=np.array([h[0] for h in hit], dtype=F8),
            mac=np.array([h[1] for h in hit], dtype=I8),
            vec=np.array([h[2] for h in hit], dtype=I8),
            footprint=footprint, instances=instances)

    def _loop_values(self, plan: CohortPlan, pos: np.ndarray, k: int
                     ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        lv: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for node in self.nodes:
            for lp in node.loops:
                slot = self._slot_of[id(lp)]
                if slot is None:
                    count = np.full(k, int(lp.count), dtype=I8)
                    step = np.full(k, int(lp.step), dtype=I8)
                else:
                    counts, steps, emitted = plan.slots[slot]
                    if not bool(np.all(emitted[pos])):
                        raise BatchedPlanError(
                            f"slot {slot} not emitted class-wide")
                    count = counts[pos]
                    step = steps[pos]
                    # The rep's unit-step verdict (slice lane vs block
                    # distributor) must hold class-wide; the s_step1 key
                    # bit guarantees it, this guards planner bugs.
                    if lp.spatial:
                        unit = bool(np.all(step == 1))
                        if unit != (lp.step == 1):
                            raise BatchedPlanError(
                                f"slot {slot} lane/block mismatch")
                lv[id(lp)] = (count, step)
        return lv

    # -- slices ---------------------------------------------------------
    def _merged_extents(self, nplan: _NodePlan, tplan: _TensorPlan,
                        lv, k: int) -> List[np.ndarray]:
        node = nplan.node
        merged: List[np.ndarray] = []
        for leaf, access in tplan.pairs:
            op_dims = leaf.op.dims
            cov: Dict[str, np.ndarray] = {
                d: np.ones(k, dtype=I8) for d in op_dims}
            current = leaf
            while current is not node:
                self._apply_loops(cov, current.loops, op_dims, lv)
                current = current.parent
            self._apply_loops(cov, nplan.lanes, op_dims, lv)
            extents = []
            for expr in access.exprs:
                span = np.ones(k, dtype=I8)
                for d, c in expr.terms.items():
                    n = np.maximum(np.int64(1),
                                   cov.get(d, np.ones(k, dtype=I8)))
                    span = add64(span, mul64(np.int64(abs(int(c))),
                                             sub64(n, np.int64(1),
                                                   "extent"),
                                             "extent"), "extent")
                extents.append(span)
            if not merged:
                merged = extents
            else:
                merged = [np.maximum(a, b)
                          for a, b in zip(merged, extents)]
        return merged

    def _apply_loops(self, cov, loops, op_dims, lv) -> None:
        for lp in reversed(list(loops)):
            if lp.dim not in op_dims:
                continue
            count, step = lv[id(lp)]
            inner = cov[lp.dim]
            cov[lp.dim] = add64(
                mul64(step, sub64(count, np.int64(1), "coverage"),
                      "coverage"), inner, "coverage")

    # -- data movement --------------------------------------------------
    def _node_flows_cached(self, nplan: _NodePlan, lv, k: int,
                           publish: Optional[Publisher],
                           pending: Optional[list]):
        """Per-node flows with a value-row memo.

        A node's flows depend only on the counts/steps of its
        ``dep_loops``; rows that recur — across sweeps of different
        cohorts, and for every member at once on nodes whose loops are
        cohort-constant — are served from the memo as plain floats and
        reassembled.  Reassembly is exact (``float`` round-trips
        float64), so downstream composition is bit-identical either
        way.  Memo hits skip publishing: the identical row was already
        published (or buffered) when first computed.
        """
        memo = nplan.memo
        if nplan.dep_loops:
            cols = []
            for lid in nplan.dep_loops:
                count, step = lv[lid]
                cols.append(count)
                cols.append(step)
            mat = np.stack(cols, axis=1)
            rows = [mat[i].tobytes() for i in range(k)]
        else:
            rows = [b""] * k
        if any(r not in memo for r in rows):
            fills, updates, staged = self._node_flows(nplan, lv, k,
                                                      publish)
            if len(memo) < MEMO_LIMIT:
                fresh: Dict[bytes, Tuple] = {}
                for i, r in enumerate(rows):
                    if r not in memo and r not in fresh:
                        fresh[r] = (
                            tuple(float(fills[t][i])
                                  for t in nplan.fill_names),
                            tuple(float(updates[t][i])
                                  for t in nplan.update_names),
                            tuple(float(staged[t][i])
                                  for t in nplan.staged_names))
                if pending is None:
                    memo.update(fresh)
                else:
                    pending.extend((memo, r, v) for r, v in fresh.items())
            return fills, updates, staged
        hit = [memo[r] for r in rows]
        fills = {t: np.array([h[0][j] for h in hit], dtype=F8)
                 for j, t in enumerate(nplan.fill_names)}
        updates = {t: np.array([h[1][j] for h in hit], dtype=F8)
                   for j, t in enumerate(nplan.update_names)}
        staged = {t: np.array([h[2][j] for h in hit], dtype=F8)
                  for j, t in enumerate(nplan.staged_names)}
        return fills, updates, staged

    def _node_flows(self, nplan: _NodePlan, lv, k: int,
                    publish: Optional[Publisher]):
        fills: Dict[str, np.ndarray] = {}
        updates: Dict[str, np.ndarray] = {}
        staged: Dict[str, np.ndarray] = {}
        # Collect every walk of the node first, run the boundary
        # recursion for all of them in one stacked pass, then assemble
        # fills/updates in the scalar's per-tensor order.
        extents_of: Dict[str, List[np.ndarray]] = {}
        requests: List[Tuple[_WalkPlan, List, List, np.ndarray]] = []
        for tplan in nplan.tensors:
            extents = self._merged_extents(nplan, tplan, lv, k)
            extents_of[tplan.name] = extents
            staged[tplan.name] = box64(extents, k).astype(F8)
            if not tplan.crossing:
                continue
            if tplan.reader is not None:
                rp = tplan.reader
                requests.append((rp, extents, rp.walked, rp.coeff))
            if tplan.writer is not None:
                wp = tplan.writer
                requests.append((wp, extents, wp.walked, wp.coeff))
                if self.model_rmw:
                    requests.append((wp, extents, wp.ideal_loops,
                                     wp.ideal_coeff))
        moved = self._stacked_walks(requests, lv, k)
        wi = 0
        for tplan in nplan.tensors:
            if not tplan.crossing:
                continue
            extents = extents_of[tplan.name]
            if tplan.reader is not None:
                rp = tplan.reader
                words = self._walk_words(moved[wi], rp, rp.walked,
                                         extents, lv, k, publish)
                wi += 1
                fills[tplan.name] = fills.get(tplan.name, 0.0) + words
            if tplan.writer is not None:
                wp = tplan.writer
                words = self._walk_words(moved[wi], wp, wp.walked,
                                         extents, lv, k, publish)
                wi += 1
                updates[tplan.name] = (updates.get(tplan.name, 0.0)
                                       + words)
                if self.model_rmw:
                    # Ideal (reduction-free) volume: the scalar divides
                    # the multiplier by the reduction-loop product in
                    # its append order before multiplying.
                    mult_red = np.ones(k, dtype=F8)
                    for lp in wp.mult:
                        if lp.dim in wp.red:
                            mult_red = mult_red * lv[id(lp)][0].astype(F8)
                    ideal = self._walk_words(
                        moved[wi], wp, wp.ideal_loops, extents, lv, k,
                        publish, mult_div=np.maximum(1.0, mult_red))
                    wi += 1
                    # Maximal-insertion mirror of the scalar's
                    # ``if rmw > 0`` guard: adding the +0.0 of rmw-free
                    # members is bitwise neutral, and every membership
                    # test downstream is covered by ``updates``.
                    rmw = np.maximum(0.0, words - ideal)
                    fills[tplan.name] = fills.get(tplan.name, 0.0) + rmw
        return fills, updates, staged

    def _walk_words(self, moved: np.ndarray, wp: _WalkPlan, loops,
                    extents, lv, k: int, publish: Optional[Publisher],
                    mult_div: Optional[np.ndarray] = None) -> np.ndarray:
        multiplier = np.ones(k, dtype=F8)
        for lp in wp.mult:
            multiplier = multiplier * lv[id(lp)][0].astype(F8)
        if mult_div is not None:
            multiplier = multiplier / mult_div
        if publish is not None:
            self._publish_volumes(publish, wp.access, extents, loops, lv,
                                  k, moved)
        return moved.astype(F8) * multiplier

    def _stacked_walks(self, requests, lv, k: int) -> np.ndarray:
        """All of a node's boundary recursions in one padded pass.

        Walks are stacked into ``(W, L, D, K)`` arrays (walk, walk
        level, access expression, member).  Padding is exactly neutral:
        a padded level has ``count = 1``/``step = 0`` (the recursion's
        ``s = (count-1)*(delta+s)+s`` leaves ``s`` untouched and its
        wrap term is 0), a padded expression has ``extent = 1``/
        ``coeff = 0`` (its overlap factor is ``max(0, 1-|0|) = 1``).
        All arithmetic stays exact int64 through the checked kernels,
        so stacking changes the *grouping* of operations, never a
        value; an overflow anywhere still aborts the whole node exactly
        like the per-walk ordering did.
        """
        zero = np.int64(0)
        n_levels = max((len(loops) for _w, _e, loops, _c in requests),
                       default=0)
        n_dims = max((len(ext) for _w, ext, _l, _c in requests),
                     default=0)
        shape = (len(requests), max(n_levels, 1), max(n_dims, 1))
        counts = np.ones(shape[:2] + (k,), dtype=I8)
        steps = np.zeros(shape[:2] + (k,), dtype=I8)
        coeffs = np.zeros(shape, dtype=I8)
        exts = np.ones((shape[0], shape[2], k), dtype=I8)
        for w, (_wp, extents, loops, coeff) in enumerate(requests):
            for li, lp in enumerate(loops):
                cnt, stp = lv[id(lp)]
                counts[w, li] = cnt
                steps[w, li] = stp
            if len(loops) and len(extents):
                coeffs[w, :len(loops), :len(extents)] = coeff
            for di, ext in enumerate(extents):
                exts[w, di] = ext
        volumes = np.ones((shape[0], k), dtype=I8)
        for di in range(shape[2]):
            volumes = mul64(volumes, np.maximum(zero, exts[:, di, :]),
                            "walk volume")
        # wrap[w, l, d] = coeff * (count - 1) * step; the back term of
        # level l is the wrap sum over inner levels l' > l.
        spans = mul64(sub64(counts, np.int64(1), "wrap"), steps, "wrap")
        wrap = mul64(coeffs[:, :, :, None], spans[:, :, None, :], "wrap")
        back = np.zeros_like(wrap)
        for li in range(n_levels - 2, -1, -1):
            back[:, li] = add64(back[:, li + 1], wrap[:, li + 1], "wrap")
        forward = mul64(coeffs[:, :, :, None], steps[:, :, None, :],
                        "displacement")
        disp = sub64(forward, back, "displacement")
        gap = sub64(exts[:, None, :, :], abs64(disp, "displacement"),
                    "overlap")
        term = np.maximum(zero, gap)
        overlap = np.ones(shape[:2] + (k,), dtype=I8)
        for di in range(shape[2]):
            overlap = mul64(overlap, term[:, :, di, :], "overlap")
        deltas = sub64(volumes[:, None, :], overlap, "delta volume")
        return movement64(volumes,
                          [counts[:, li] for li in range(n_levels)],
                          [deltas[:, li] for li in range(n_levels)])

    def _publish_volumes(self, publish: Publisher, access, extents,
                         loops, lv, k: int, moved: np.ndarray) -> None:
        """Land per-member volumes under their scalar ``walkvol`` keys.

        Every emitted loop has trip count >= 2 for every member of the
        class (the planner only emits loops it proved > 1), so the
        projected-walk string has the same token structure class-wide
        and only the numbers vary.
        """
        sig, referenced = access.signature()
        counts = [lv[id(lp)][0] for lp in loops]
        steps = [lv[id(lp)][1] for lp in loops]
        flags = [lp.dim in referenced for lp in loops]
        dims = [lp.dim for lp in loops]
        ext_cols = [e for e in extents]
        for i in range(k):
            parts: List[str] = []
            pending = 1
            for j, ref in enumerate(flags):
                c = int(counts[j][i])
                if ref:
                    if pending != 1:
                        parts.append(f"*{pending}")
                        pending = 1
                    if c != 1:
                        parts.append(f"{dims[j]}:{c}x{int(steps[j][i])}")
                elif c != 1:
                    pending *= c
            key = (sig, tuple(int(col[i]) for col in ext_cols),
                   ",".join(parts))
            publish("walkvol", key, int(moved[i]))

    # -- resources ------------------------------------------------------
    def _num_pe(self, node: TileNode, s_trip, k: int):
        if node.is_leaf():
            used = s_trip[id(node)]
            zero = np.zeros(k, dtype=I8)
            return ((used, zero) if node.op.kind == "mac"
                    else (zero, used))
        sp = s_trip[id(node)]
        if isinstance(node, OpTile):
            mac, vec = self._num_pe(node.child, s_trip, k)
            return (mul64(sp, mac, "num_pe"), mul64(sp, vec, "num_pe"))
        demands = [self._num_pe(c, s_trip, k) for c in node.children]
        if node.binding.shares_compute_in_time:
            mac = demands[0][0]
            vec = demands[0][1]
            for d in demands[1:]:
                mac = np.maximum(mac, d[0])
                vec = np.maximum(vec, d[1])
        else:
            mac = demands[0][0]
            vec = demands[0][1]
            for d in demands[1:]:
                mac = add64(mac, d[0], "num_pe")
                vec = add64(vec, d[1], "num_pe")
        return mul64(sp, mac, "num_pe"), mul64(sp, vec, "num_pe")

    def _staged_bytes(self, node: TileNode, flows, k: int) -> np.ndarray:
        fills, updates, staged = flows[id(node)]
        total = np.zeros(k, dtype=F8)
        for name, words in staged.items():
            wb = self.workload.tensor(name).word_bytes
            crossing = name in fills or name in updates
            factor = 2.0 if crossing else 1.0
            total = total + words * wb * factor
        return total

    def _footprint(self, node: TileNode, flows, s_trip, k: int):
        if node.is_leaf():
            return {node.level: self._staged_bytes(node, flows, k)}
        if isinstance(node, OpTile):
            usage = dict(self._footprint(node.child, flows, s_trip, k))
        else:
            child_maps = [self._footprint(c, flows, s_trip, k)
                          for c in node.children]
            usage = {}
            for cmap in child_maps:
                for level, used in cmap.items():
                    if node.binding is Binding.SEQ:
                        usage[level] = np.maximum(
                            usage.get(level, 0.0), used)
                    else:
                        usage[level] = usage.get(level, 0.0) + used
        own = self._staged_bytes(node, flows, k)
        usage[node.level] = usage.get(node.level, 0.0) + own
        return usage

    def _instances(self, node: TileNode, s_trip, k: int):
        if node.is_leaf():
            return {node.level: np.ones(k, dtype=I8)}
        if isinstance(node, OpTile):
            usage = dict(self._instances(node.child, s_trip, k))
        else:
            usage = {}
            for child in node.children:
                for level, n in self._instances(child, s_trip,
                                                k).items():
                    usage[level] = np.maximum(
                        usage.get(level, np.zeros(k, dtype=I8)), n)
        one = np.ones(k, dtype=I8)
        usage[node.level] = np.maximum(usage.get(node.level,
                                                 np.zeros(k, dtype=I8)),
                                       one)
        sp = s_trip[id(node)]
        return {level: mul64(n, sp, "instances")
                for level, n in usage.items()}

    # -- latency --------------------------------------------------------
    def _bytes(self, words_by_tensor: Dict[str, np.ndarray],
               k: int) -> np.ndarray:
        total = np.zeros(k, dtype=F8)
        for name, words in words_by_tensor.items():
            total = total + words * self.workload.tensor(name).word_bytes
        return total

    def _shared_bandwidth(self, level_idx: int,
                          concurrency: np.ndarray) -> np.ndarray:
        level = self.arch.level(level_idx)
        aggregate = level.bytes_per_cycle(self.arch.frequency_ghz)
        aggregate *= level.fanout
        return np.maximum(1e-9, aggregate / np.maximum(1.0, concurrency))

    def _latency(self, node: TileNode, concurrency: np.ndarray, flows,
                 t_trip, s_trip, execs, lv, k: int) -> np.ndarray:
        fills, updates, _staged = flows[id(node)]
        executions = np.maximum(1.0, execs[id(node)].astype(F8))
        source_level = (node.parent.level if node.parent is not None
                        else self.arch.dram_index)
        io_cycles = np.zeros(k, dtype=F8)
        if node.level < source_level:
            load_bytes = self._bytes(fills, k) / executions
            store_bytes = self._bytes(updates, k) / executions
            bw = self._shared_bandwidth(source_level, concurrency)
            io_cycles = (load_bytes + store_bytes) / bw

        t_f8 = t_trip[id(node)].astype(F8)
        s_f8 = s_trip[id(node)].astype(F8)
        if node.is_leaf():
            pool = self.arch.compute_units(node.op.kind)
            waves = np.maximum(1.0, s_f8 / float(pool))
            inner = t_f8 * waves * float(node.op.ops_per_point)
        elif isinstance(node, OpTile):
            inner = t_f8 * self._latency(node.child, concurrency * s_f8,
                                         flows, t_trip, s_trip, execs,
                                         lv, k)
        else:
            child_conc = concurrency * s_f8
            lats = [self._latency(c, child_conc, flows, t_trip, s_trip,
                                  execs, lv, k) for c in node.children]
            if node.binding.shares_compute_in_time:
                acc = np.zeros(k, dtype=F8)
                for lat in lats:
                    acc = acc + lat
                inner = t_f8 * acc
            else:
                io_sum = np.zeros(k, dtype=F8)
                for c in node.children:
                    io_sum = io_sum + self._child_io(c, child_conc,
                                                     flows, execs, k)
                peak = lats[0]
                for lat in lats[1:]:
                    peak = np.maximum(peak, lat)
                inner = t_f8 * np.maximum(peak, io_sum)
        return np.maximum(io_cycles, inner)

    def _child_io(self, child: TileNode, concurrency: np.ndarray, flows,
                  execs, k: int) -> np.ndarray:
        if child.parent is None or child.level >= child.parent.level:
            return np.zeros(k, dtype=F8)
        fills, updates, _staged = flows[id(child)]
        executions = np.maximum(1.0, execs[id(child)].astype(F8))
        total_bytes = (self._bytes(fills, k)
                       + self._bytes(updates, k)) / executions
        bw = self._shared_bandwidth(child.parent.level, concurrency)
        return total_bytes / bw


def compose_costs(arch, wrapped: bool, results: Sequence[GroupResult],
                  k: int) -> np.ndarray:
    """Root-wrapper composition of per-group aggregates.

    Mirrors the scalar passes over a Seq root exactly: NumPE is the max
    over groups (Seq shares compute in time), footprint is a per-level
    max-merge, instances a per-level max with at least one root-level
    instance, latency the sum of group latencies in group order (the
    wrapper itself is loop-free and sits at the DRAM level, so its trip
    counts are 1 and its own IO cycles are 0).  With a single unwrapped
    group the aggregates pass through untouched.  Requires the DRAM
    level to be capacity-free — :class:`repro.analysis.batched.sweep`
    refuses to batch otherwise, because the wrapper's own staged bytes
    would then enter the capacity check.
    """
    bad = np.zeros(k, dtype=bool)

    mac = results[0].mac
    vec = results[0].vec
    for res in results[1:]:
        mac = np.maximum(mac, res.mac)
        vec = np.maximum(vec, res.vec)
    bad |= mac > arch.pe_count
    bad |= vec > arch.vector_pe_count

    footprint: Dict[int, np.ndarray] = dict(results[0].footprint)
    for res in results[1:]:
        for level, used in res.footprint.items():
            prev = footprint.get(level)
            footprint[level] = (used if prev is None
                                else np.maximum(prev, used))
    for level_idx, used in footprint.items():
        cap = arch.level(level_idx).capacity_bytes
        if cap is not None:
            bad |= used > cap

    instances: Dict[int, np.ndarray] = dict(results[0].instances)
    for res in results[1:]:
        for level, n in res.instances.items():
            prev = instances.get(level)
            instances[level] = (n if prev is None
                                else np.maximum(prev, n))
    if wrapped:
        dram = arch.dram_index
        one = np.ones(k, dtype=I8)
        prev = instances.get(dram)
        instances[dram] = one if prev is None else np.maximum(prev, one)
    for level_idx, n in instances.items():
        bad |= n > arch.level(level_idx).fanout

    latency = results[0].latency
    if wrapped:
        acc = np.zeros(k, dtype=F8)
        for res in results:
            acc = acc + res.latency
        latency = acc
    return np.where(~bad, latency, np.float64("inf"))
