"""Cohort sweep driver: the batched layer's engine-facing surface.

One :class:`CohortEvaluator` serves one ``(engine, genome)`` pair.  It
owns the :class:`~repro.analysis.batched.cohort.CohortPlanner`, the
per-``(group, group key)``
:class:`~repro.analysis.batched.template.GroupTemplate` registry, and a
persistent cost table that outlives individual MCTS tuners — a GA
re-tuning the same genome next generation starts with every previously
swept sibling already priced.

A sweep prices a cohort per *group*: members are classed by each
group's structure key, every class runs one array evaluation (behind
the group template's whole-result memo), and the per-group aggregates
are composed at the root exactly as the scalar passes compose them
(:func:`~repro.analysis.batched.template.compose_costs`).  Because the
sibling cohort's prefix factors are constant, the prefix groups form
one full-width class each, and their templates — keyed by group, not by
the whole-tree skeleton — survive from sweep to sweep.

The MCTS hook contract (``mcts_hook``): called with the candidate's
factor-index tuple on every tuner-cache miss, it may return a dict of
``indices -> cost`` entries to prefill the tuner cache (always including
the requested point when it was covered), or ``None`` to let the scalar
evaluator run.  Sweeps are *adaptive*: a sibling cohort is only swept
once the tuner has missed ``min_misses`` times inside the same prefix,
so one-off random rollouts early in the search do not pay for 100+
evaluations nobody will ask about, while UCT-concentrated regions are
batch-filled wholesale.

Safety valves, in increasing order of scope:

* no member's cost is committed before every fresh template it touched
  has passed a composed cross-check against one real scalar evaluation;
  published walk volumes and memo rows are buffered per class and
  dropped with their sweep on a mismatch (a wrong template must not
  poison the shared cache — or mask its own mismatch by warming the
  very scalar run that checks it);
* :class:`~repro.analysis.batched.kernels.BatchedError` (overflow, plan
  mismatch) breaks the class; its members fall back to the scalar path
  and are remembered in ``_scalar_only``;
* any other exception escapes to the tuner, which permanently disables
  the hook for that search (batching is strictly a performance layer).

Counter parity: the hook bumps ``mapper.evaluations`` (and
``mapper.infeasible``) exactly when it covers the requested point —
i.e. exactly where the scalar path would have called
``engine.genome_cost`` — so mapper-level counters are identical between
scalar and batched runs.  Engine ``cache_misses``/``evaluations``
legitimately drop (covered points never reach the engine memo); the
new ``batched_evaluations``/``batch_fill``/``batch_fallbacks`` stats
carry the attribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ... import obs
from .cohort import CohortPlanner
from .kernels import BatchedError
from .template import (MEMO_LIMIT, GroupResult, GroupTemplate,
                       RepStructure, compose_costs)

_UNSET = object()

#: Largest sibling-cohort cross product enumerated per sweep.
DEFAULT_LIMIT = 128
#: Factor spaces at most this large may be swept whole — one dispatch
#: then prices every point and the array work finally has enough lanes
#: to amortize the per-sweep Python overhead.  Fused genomes (the
#: paper's subject) share few tileable dims, so their spaces are small
#: and land below this routinely.
FULL_SWEEP_LIMIT = 8192
#: Cohort-limit growth per dispatched sweep (progressive widening): the
#: first sweep stays at ``DEFAULT_LIMIT`` so short tunes (a GA pricing
#: a generation with a few dozen samples each) never pay for a large
#: sweep nobody will revisit, while long searches escalate to the full
#: space within two or three sweeps.
WIDEN_FACTOR = 8
#: Tuner-cache misses inside one prefix before that cohort is swept.
DEFAULT_MIN_MISSES = 2
#: Smallest MCTS sample budget worth batching.  A sweep prices a whole
#: sibling cohort up front (including per-class template builds and a
#: scalar cross-check), so it only pays once the tuner revisits enough
#: of the priced space; measured on the GA fitness path, sub-1k-sample
#: tunes of fresh genomes lose time to probe sweeps while 1k+ budgets
#: break even or win.  Below this budget the engine leaves the search
#: purely scalar.
BATCH_MIN_SAMPLES = 1024
#: Sweep credit: an evaluator starts with this many free sweeps; each
#: covered request earns ``CREDIT_PER_HIT`` more.  Searches whose
#: requests never revisit swept cohorts (rollouts scattering over a
#: huge prefix space) drain the balance and stop sweeping — batching
#: self-throttles to where it demonstrably pays.
INITIAL_CREDIT = 2.0
CREDIT_PER_HIT = 0.25


class CohortEvaluator:
    """Batched cohort pricing for one genome on one engine."""

    def __init__(self, engine, genome, space, *,
                 limit: int = DEFAULT_LIMIT,
                 min_misses: int = DEFAULT_MIN_MISSES,
                 publish: bool = True):
        self.engine = engine
        self.genome = genome
        arch = engine.arch
        if arch.level(arch.dram_index).capacity_bytes is not None:
            # The root wrapper's own staged bytes would enter the
            # capacity check, and those are not per-group composable.
            raise BatchedError("capacity-bounded DRAM is not batchable")
        self.planner = CohortPlanner(engine.workload, arch, genome, space)
        self.limit = int(limit)
        total = 1
        for c in self.planner.choices:
            total *= len(c)
        #: Whole-space sweep target for progressive widening (0 when
        #: the space is too large to ever sweep whole).
        self._full = total if 2 <= total <= FULL_SWEEP_LIMIT else 0
        self.min_misses = max(1, int(min_misses))
        #: (gi, group key) -> GroupTemplate (None = proven unsafe).
        self._templates: Dict[Tuple[int, bytes],
                              Optional[GroupTemplate]] = {}
        #: (gi, group key) pairs validated by a composed cross-check.
        self._checked: Set[Tuple[int, bytes]] = set()
        #: Whether the genome tree has the DRAM Seq wrapper (set when
        #: the first representative structure is built).
        self._wrapped: Optional[bool] = None
        #: indices tuple -> cost; persists across tuners/generations.
        self._costs: Dict[Tuple[int, ...], float] = {}
        #: Members that must go through the scalar path.
        self._scalar_only: set = set()
        #: prefix tuple -> tuner-miss count (the adaptive trigger).
        self._prefix_misses: Dict[Tuple[int, ...], int] = {}
        #: Sweep budget (see INITIAL_CREDIT); deterministic per run.
        self._credit = float(INITIAL_CREDIT)
        self._store = None
        if publish and engine.subtree_cache is not None:
            # Batched walk volumes land in the same tiered "walkvol"
            # store the scalar DataMovementAnalysis publishes to, under
            # identical keys — a swept cohort warms later scalar
            # evaluations (the champion re-run, sibling genomes).
            self._store = engine.subtree_cache.store(
                engine._subtree_ns, "walkvol")

    # -- MCTS integration ------------------------------------------------
    def mcts_hook(self, indices: Sequence[int]
                  ) -> Optional[Dict[Tuple[int, ...], float]]:
        """Tuner-cache-miss hook; see the module docstring contract."""
        indices = tuple(int(i) for i in indices)
        if indices not in self._costs:
            if (indices not in self._scalar_only
                    and self._credit > 0.0):
                prefix = indices[:self._prefix_len()]
                n = self._prefix_misses.get(prefix, 0) + 1
                self._prefix_misses[prefix] = n
                if n >= self.min_misses:
                    cohort = self.planner.sibling_cohort(indices,
                                                         self.limit)
                    if cohort is not None:
                        swept = self._sweep(cohort)
                        self._credit -= swept / float(self.limit)
                        if swept and self._full > self.limit:
                            # The search keeps missing: widen the next
                            # sweep toward the whole factor space.
                            self.limit = min(self._full,
                                             self.limit * WIDEN_FACTOR)
        cost = self._costs.get(indices)
        if cost is None:
            return None
        # Return only the requested point (not the whole cohort): every
        # later first touch of a swept sibling then flows through this
        # hook too, which keeps the credit signal honest and bumps the
        # mapper counters exactly where the scalar path's genome_cost
        # would (a tuner cache miss) — counter parity between modes.
        self._credit += CREDIT_PER_HIT
        obs.count("mapper.evaluations")
        if cost == float("inf"):
            obs.count("mapper.infeasible")
        return {indices: cost}

    def _prefix_len(self) -> int:
        sizes = [len(c) for c in self.planner.choices]
        k, total = 0, 1
        for j in range(len(sizes) - 1, -1, -1):
            if total * sizes[j] > self.limit:
                break
            total *= sizes[j]
            k += 1
        if k == 0 or total < 2:
            return len(sizes)
        return len(sizes) - k

    # -- explicit cohorts (tests, spot checks) ---------------------------
    def costs_for(self, members: Sequence[Sequence[int]]
                  ) -> Dict[Tuple[int, ...], Optional[float]]:
        """Batched costs of an explicit cohort (``None`` where the
        member fell back to the scalar path or is not yet priced)."""
        members = [tuple(int(i) for i in m) for m in members]
        todo = [m for m in members
                if m not in self._costs and m not in self._scalar_only]
        if todo:
            self._dispatch(todo)
        return {m: self._costs.get(m) for m in members}

    # -- sweep core ------------------------------------------------------
    def _sweep(self, cohort: List[Tuple[int, ...]]) -> int:
        todo = [m for m in cohort
                if m not in self._costs and m not in self._scalar_only]
        if len(todo) >= 2:
            self._dispatch(todo)
            return len(todo)
        return 0

    def _dispatch(self, todo: List[Tuple[int, ...]]) -> None:
        engine = self.engine
        engine._bump("batch_fill", len(todo))
        try:
            plan = self.planner.plan(todo)
        except BatchedError:
            self._fallback(todo)
            return
        n = len(todo)
        ngroups = len(self.planner.group_plans)
        ok = np.ones(n, dtype=bool)
        structures: Dict[int, RepStructure] = {}

        def structure_for(p: int) -> RepStructure:
            struct = structures.get(p)
            if struct is None:
                struct = RepStructure(
                    self.planner, todo[p],
                    model_eviction=engine.model.model_eviction,
                    model_rmw=engine.model.model_rmw)
                structures[p] = struct
                if self._wrapped is None:
                    self._wrapped = struct.wrapped
            return struct

        # Per-class evaluation.  Publishes and memo insertions are
        # buffered per class so an invalidated sweep commits nothing.
        records: List[Tuple[Tuple[int, bytes], List[int], list, list]] = []
        fresh: Set[Tuple[int, bytes]] = set()
        per_group: List[Optional[Dict[str, object]]] = []
        for gi in range(ngroups):
            agg: Optional[Dict[str, object]] = None
            for gkey, poss in plan.group_classes(gi).items():
                tkey = (gi, gkey)
                template = self._templates.get(tkey, _UNSET)
                if template is _UNSET:
                    try:
                        template = GroupTemplate(structure_for(poss[0]),
                                                 gi)
                    except BatchedError:
                        template = None
                    self._templates[tkey] = template
                    if template is not None:
                        fresh.add(tkey)
                if template is None:
                    ok[poss] = False
                    self._fallback([todo[p] for p in poss])
                    continue
                buf: list = []
                pend: list = []
                publish = None
                if self._store is not None:
                    publish = (lambda kind, key, value, _b=buf:
                               _b.append((kind, key, value)))
                try:
                    res = template.evaluate_cached(plan, poss,
                                                   publish=publish,
                                                   pending=pend)
                except BatchedError:
                    self._templates[tkey] = None
                    fresh.discard(tkey)
                    ok[poss] = False
                    self._fallback([todo[p] for p in poss])
                    continue
                records.append((tkey, poss, buf, pend))
                if agg is None:
                    agg = {"lat": np.zeros(n, dtype=np.float64),
                           "mac": np.zeros(n, dtype=np.int64),
                           "vec": np.zeros(n, dtype=np.int64),
                           "fp": {}, "inst": {}}
                idx = np.asarray(poss, dtype=np.intp)
                agg["lat"][idx] = res.latency
                agg["mac"][idx] = res.mac
                agg["vec"][idx] = res.vec
                for store_key, values in (("fp", res.footprint),
                                          ("inst", res.instances)):
                    dest: Dict[int, np.ndarray] = agg[store_key]
                    for level, arr in values.items():
                        full = dest.get(level)
                        if full is None:
                            full = np.zeros(
                                n, dtype=np.float64
                                if store_key == "fp" else np.int64)
                            dest[level] = full
                        full[idx] = arr
            per_group.append(agg)

        if not bool(ok.any()) or any(agg is None for agg in per_group):
            self._fallback([m for m, good in zip(todo, ok) if not good])
            return
        results = [GroupResult(latency=agg["lat"], mac=agg["mac"],
                               vec=agg["vec"], footprint=agg["fp"],
                               instances=agg["inst"])
                   for agg in per_group]
        costs = compose_costs(engine.arch, bool(self._wrapped), results, n)

        if not self._cross_check(plan, todo, costs, ok, fresh):
            self._fallback(todo)
            return

        # Members whose templates are all validated get committed;
        # classes that could not be cross-checked this sweep (all their
        # members failed in another group) stay uncommitted — their
        # members fall through to the scalar path on request and the
        # class is retried next sweep.
        for tkey, poss, _buf, _pend in records:
            if tkey not in self._checked:
                ok[poss] = False
        committed = 0
        store = self._store
        for tkey, poss, buf, pend in records:
            if tkey not in self._checked:
                continue
            for memo, row, value in pend:
                if len(memo) < MEMO_LIMIT:
                    memo[row] = value
            if store is not None:
                for kind, key, value in buf:
                    if kind == "walkvol" and store.data.get(key) is None:
                        store.put(key, value)
        for pos in np.nonzero(ok)[0]:
            self._costs[todo[pos]] = float(costs[pos])
            committed += 1
        if committed:
            engine._bump("batched_evaluations", committed)

    def _cross_check(self, plan, todo, costs, ok, fresh) -> bool:
        """Validate every checkable fresh template via composed members.

        Greedy cover: one scalar evaluation validates all fresh
        templates its member touches.  Returns False on any mismatch
        (the member's fresh templates are marked unsafe and the whole
        sweep is dropped).
        """
        engine = self.engine
        ngroups = len(self.planner.group_plans)
        need = {t for t in fresh if t not in self._checked}
        while need:
            pick: Optional[int] = None
            for gi, gkey in need:
                gkeys = plan.group_keys[gi]
                for pos in range(len(todo)):
                    if ok[pos] and gkeys[pos] == gkey:
                        pick = pos
                        break
                if pick is not None:
                    break
            if pick is None:
                # Remaining fresh classes have no composable member this
                # sweep; leave them unchecked (commit gating skips them).
                return True
            member = todo[pick]
            scalar = engine.cost_of(
                engine.evaluate_genome(self.genome,
                                       self.planner.point_at(member)))
            if float(costs[pick]) != float(scalar):
                for gi in range(ngroups):
                    tkey = (gi, plan.group_keys[gi][pick])
                    if tkey in fresh:
                        self._templates[tkey] = None
                return False
            for gi in range(ngroups):
                tkey = (gi, plan.group_keys[gi][pick])
                self._checked.add(tkey)
                need.discard(tkey)
        return True

    def _fallback(self, members: List[Tuple[int, ...]]) -> None:
        new = [m for m in members if m not in self._scalar_only]
        if not new:
            return
        self._scalar_only.update(new)
        self.engine._bump("batch_fallbacks", len(new))
