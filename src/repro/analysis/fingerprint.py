"""Structural subtree fingerprints for cross-tree artifact reuse.

A mapper move (one MCTS factor change, one GA mutation) perturbs one
subtree of the analysis tree; every other subtree is *structurally
identical* to its counterpart in the previous candidate — same operators,
same levels, same loops — just a different Python object.  The functions
here reduce a subtree to a short content digest so memoized per-subtree
artifacts (slice geometry, ``NumPE`` demands, per-node data-movement
flows) can be recognised and reused across trees instead of being keyed
by ``id(node)`` and dying with each tree.

Digests are sha256-hex prefixes computed bottom-up: a node's fingerprint
covers its own ``(kind, op-or-binding, level, loops)`` tuple plus its
children's fingerprints, so two nodes share a fingerprint iff their
subtrees are structurally interchangeable for any subtree-local
analysis.  Within one :class:`~repro.tile.tree.AnalysisTree` fingerprints
are unique per node (each operator appears in exactly one leaf, so
sibling subtrees always differ).  Short *strings* are used as keys
rather than nested tuples because CPython caches a string's hash —
repeated dict lookups stay O(1) instead of re-hashing the whole subtree
shape.

:func:`workload_digest` and :func:`cache_namespace` scope shared-cache
keys to one (workload, architecture, model-configuration) world so a
single :class:`~repro.engine.cache.SubtreeArtifactCache` can safely be
shared across engines and tests without cross-talk between equal-named
nodes of different problems.

This module lives under ``analysis`` (not ``engine``) so that
:mod:`repro.analysis.context` can use it without importing the engine
package; :mod:`repro.engine.signature` re-exports it.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from ..arch import Architecture
from ..ir import Operator, Workload
from ..tile.tree import FusionNode, OpTile, TileNode

#: Hex chars kept per digest — 128 bits, far beyond collision reach for
#: the number of distinct subtrees any search can visit.
_DIGEST_LEN = 32


def _local_signature(node: TileNode) -> str:
    """The node's own structural identity, excluding its children."""
    loops = ",".join(repr(lp) for lp in node.loops)
    if isinstance(node, OpTile):
        return f"op:{node.op.name}@{node.level}[{loops}]"
    assert isinstance(node, FusionNode)
    return f"fusion:{node.binding.value}@{node.level}[{loops}]"


def node_fingerprints(root: TileNode) -> Dict[int, str]:
    """Fingerprint of every subtree under ``root``, keyed by ``id(node)``.

    One bottom-up walk; the map is what
    :meth:`~repro.analysis.context.AnalysisContext.fingerprint` serves
    lookups from (and how it detects nodes foreign to its tree).
    """
    fps: Dict[int, str] = {}

    def visit(node: TileNode) -> str:
        hasher = hashlib.sha256(_local_signature(node).encode())
        for child in node.children_nodes():
            hasher.update(b"|")
            hasher.update(visit(child).encode())
        fp = hasher.hexdigest()[:_DIGEST_LEN]
        fps[id(node)] = fp
        return fp

    visit(root)
    return fps


def subtree_fingerprint(node: TileNode) -> str:
    """Fingerprint of one subtree (convenience over a full-tree map)."""
    return node_fingerprints(node)[id(node)]


def _operator_signature(op: Operator) -> str:
    def access_sig(access) -> str:
        return (f"{access.tensor.name}{access.tensor.shape}"
                f"x{access.tensor.word_bytes}"
                f"[{','.join(repr(e) for e in access.exprs)}]")

    ins = ";".join(access_sig(a) for a in op.inputs)
    return (f"{op.name}/{op.kind}/{sorted(op.dims.items())}"
            f"/{sorted(op.reduction_dims)}/{op.ops_per_point}"
            f"<{ins}>{access_sig(op.output)}")


def workload_digest(workload: Workload) -> str:
    """Content digest of a workload's operators, accesses, and shapes.

    Memoized on the workload instance (workloads are immutable after
    construction) so per-evaluation contexts do not re-hash it.
    """
    cached = getattr(workload, "_structural_digest", None)
    if cached is None:
        text = workload.name + "\n" + "\n".join(
            _operator_signature(op) for op in workload.operators)
        cached = hashlib.sha256(text.encode()).hexdigest()[:_DIGEST_LEN]
        workload._structural_digest = cached
    return cached


def cache_namespace(workload: Workload, arch: Architecture,
                    model_eviction: bool, model_rmw: bool) -> str:
    """Shared-cache key prefix scoping entries to one analysis world.

    Subtree artifacts depend on the workload's operators/accesses, the
    architecture only through its DRAM index (slice geometry and the
    movement recursion never read capacities or bandwidths), and the two
    data-movement ablation flags.
    """
    return (f"{workload_digest(workload)}|{arch.name}#{arch.dram_index}"
            f"|e{int(model_eviction)}r{int(model_rmw)}")
