"""Result containers for the tree-based analysis.

:class:`LevelTraffic` records the three access directions the paper's
breakdown distinguishes (Fig. 10d):

* ``fill``   — words loaded *into* this level from the level above,
* ``read``   — words served *from* this level to the level below,
* ``update`` — words written back *into* this level from below.

:class:`EvaluationResult` aggregates everything a caller needs: latency,
energy, per-level traffic, footprints, resource usage, and any resource
violations (mappers use those to reject/penalize candidates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class LevelTraffic:
    """Word-granularity traffic counters for one memory level."""

    __slots__ = ("fill", "read", "update")

    def __init__(self) -> None:
        self.fill: Dict[str, float] = {}
        self.read: Dict[str, float] = {}
        self.update: Dict[str, float] = {}

    def add(self, direction: str, tensor: str, words: float) -> None:
        counter = getattr(self, direction)
        counter[tensor] = counter.get(tensor, 0.0) + words

    def total(self, direction: str) -> float:
        return sum(getattr(self, direction).values())

    @property
    def total_words(self) -> float:
        """All words moved through this level (fill + read + update)."""
        return self.total("fill") + self.total("read") + self.total("update")

    def breakdown(self) -> Dict[str, float]:
        return {"fill": self.total("fill"), "read": self.total("read"),
                "update": self.total("update")}

    def __repr__(self) -> str:
        b = self.breakdown()
        return (f"LevelTraffic(fill={b['fill']:.3g}, read={b['read']:.3g}, "
                f"update={b['update']:.3g})")


@dataclass
class ResourceUsage:
    """Peak resource usage of a mapping (§5.2)."""

    num_pe: int = 0
    num_vector_pe: int = 0
    #: Peak bytes resident per *instance* of each memory level.
    footprint_bytes: Dict[int, float] = field(default_factory=dict)
    #: Spatial instances of each level the mapping occupies.
    instances_used: Dict[int, int] = field(default_factory=dict)


@dataclass
class EvaluationResult:
    """Complete output of one model evaluation."""

    tree_name: str
    arch_name: str
    latency_cycles: float
    energy_pj: float
    total_ops: float
    #: Traffic per memory-level index (0 = innermost).
    traffic: Dict[int, LevelTraffic]
    resources: ResourceUsage
    #: Human-readable capacity/PE violations; empty for a feasible mapping.
    violations: List[str]
    #: Energy by component name ("MAC", "Reg", "L1", "DRAM", ...).
    energy_breakdown_pj: Dict[str, float] = field(default_factory=dict)
    #: Latency seconds derived from cycles and the clock; set by the model.
    latency_seconds: float = 0.0
    #: Per-level bandwidth-pressure metric of §7.5 (access/compute ratio).
    slowdown: Dict[int, float] = field(default_factory=dict)
    #: True when the producing pipeline run stopped early (``until=`` or
    #: a violation short-circuit); unset fields then hold their defaults.
    partial: bool = False
    #: Pipeline passes that actually ran, in order.
    completed_passes: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @property
    def feasible(self) -> bool:
        return not self.violations

    def level_traffic(self, level: int) -> LevelTraffic:
        return self.traffic.setdefault(level, LevelTraffic())

    def dram_words(self) -> float:
        """Words crossing the DRAM boundary (read + update at DRAM)."""
        dram = max(self.traffic) if self.traffic else 0
        t = self.traffic.get(dram)
        if t is None:
            return 0.0
        return t.total("read") + t.total("update")

    def onchip_words(self, level: int) -> float:
        """All words moved through an on-chip level."""
        t = self.traffic.get(level)
        return t.total_words if t is not None else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of peak compute the mapping sustains (0..1)."""
        if self.latency_cycles <= 0 or self.resources.num_pe <= 0:
            return 0.0
        return min(1.0, self.total_ops
                   / (self.latency_cycles * self.resources.num_pe))

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (CLI ``--json``, logging)."""
        return {
            "tree": self.tree_name,
            "arch": self.arch_name,
            "latency_cycles": self.latency_cycles,
            "latency_seconds": self.latency_seconds,
            "energy_pj": self.energy_pj,
            "total_ops": self.total_ops,
            "num_pe": self.resources.num_pe,
            "num_vector_pe": self.resources.num_vector_pe,
            "utilization": self.utilization,
            "dram_words": self.dram_words(),
            "violations": list(self.violations),
            "traffic": {level: t.breakdown()
                        for level, t in sorted(self.traffic.items())},
            "energy_breakdown_pj": dict(self.energy_breakdown_pj),
            "footprint_bytes": {str(k): v for k, v in
                                self.resources.footprint_bytes.items()},
        }

    def summary(self) -> str:
        lines = [
            f"mapping {self.tree_name} on {self.arch_name}:",
            f"  latency : {self.latency_cycles:.4g} cycles"
            f" ({self.latency_seconds * 1e3:.4g} ms)",
            f"  energy  : {self.energy_pj / 1e6:.4g} uJ",
            f"  ops     : {self.total_ops:.4g}",
            f"  PEs     : {self.resources.num_pe}",
        ]
        for level in sorted(self.traffic):
            lines.append(f"  L{level} traffic: {self.traffic[level]!r}")
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        return "\n".join(lines)
