"""The pass-based analysis pipeline.

The TileFlow model (§5) is a sequence of tree analyses — validation,
slice geometry, data movement, resources, latency, energy — and this
module makes that sequence explicit: each :class:`AnalysisPass` declares
the context artifacts it ``reads`` and ``writes``, and a
:class:`Pipeline` runs passes in order over one
:class:`~repro.analysis.context.AnalysisContext`, statically checking at
construction that every read is produced by an earlier pass.

Partial evaluation falls out of the structure:

* ``run(ctx, until="resources")`` stops after a named pass (mapper cost
  functions that only need latency skip the energy stage),
* ``run(ctx, stop_on_violation=True)`` stops as soon as a pass records
  resource violations (infeasible candidates never pay for latency or
  energy),
* re-running a pipeline on the same context skips completed passes, so
  the engine's cheap feasibility prefix (:data:`PRESCREEN_PIPELINE`) is
  free work for a later full evaluation of the same tree.

Each pass runs under an ``obs`` span named ``model.pass.<name>`` so the
profile report breaks evaluation time down per pass.

Run ``python -m repro.analysis.pipeline`` to re-check the wiring of the
built-in pipelines (CI calls this so mis-ordered passes fail fast).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..tile.validate import validate_tree, validate_tree_cached
from .context import AnalysisContext
from .energy import compute_energy

#: Suffix marking violations produced by the resource-bounds pass (the
#: engine uses it to recognise short-circuited results and re-evaluate
#: champions).  Historically the engine-side pre-screen's tag; kept
#: verbatim so cached traces and tests keep matching.
PRESCREEN_TAG = "(prescreen lower bound)"


class PipelineError(Exception):
    """A pipeline's pass wiring is inconsistent."""


class AnalysisPass:
    """One stage of the analysis pipeline.

    Subclasses set ``name``, the artifact names they ``reads`` from and
    ``writes`` to the context, and implement :meth:`run`.  Passes must
    communicate only through declared artifacts (plus the context's
    shared memo accessors); the pipeline's static check relies on the
    declarations being honest.
    """

    name: str = ""
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    def run(self, ctx: AnalysisContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"reads={self.reads!r}, writes={self.writes!r})")


class ValidatePass(AnalysisPass):
    """Structural validation (§4); raises on malformed trees.

    With a shared artifact cache attached the pass validates per
    subtree fingerprint (:func:`~repro.tile.validate.validate_tree_cached`)
    so only fresh subtrees are re-inspected; invalid trees raise the
    same error as the uncached path.
    """

    name = "validate"
    writes = ("validated",)

    def run(self, ctx: AnalysisContext) -> None:
        if ctx.artifact_cache is not None:
            validate_tree_cached(ctx)
        else:
            validate_tree(ctx.tree)
        ctx.put("validated", True)


class SlicesPass(AnalysisPass):
    """Populate per-node slice geometry (extents, staged words)."""

    name = "slices"
    writes = ("slices",)

    def run(self, ctx: AnalysisContext) -> None:
        for node in ctx.tree.nodes():
            ctx.node_slices(node)
        ctx.put("slices", True)


class DataMovementPass(AnalysisPass):
    """The §5.1 boundary recursion over the whole tree."""

    name = "datamovement"
    reads = ("slices",)
    writes = ("movement",)

    def run(self, ctx: AnalysisContext) -> None:
        from .datamovement import DataMovementAnalysis
        ctx.put("movement", DataMovementAnalysis(
            ctx.tree, ctx.arch, context=ctx).run())


class ResourceBoundsPass(AnalysisPass):
    """Cheap feasibility bounds from tree structure alone (pre-screen).

    * **Compute** — the §5.2 ``NumPE`` recursion is purely structural,
      so the bound is exact.
    * **Memory** — each node's staged slice bytes, with crossing
      tensors double-buffered exactly as the full resource analysis
      does (``AnalysisContext.tensor_crossing``), lower-bound its
      level's final per-instance footprint: the footprint recursion
      only *adds* child contributions on top.

    Both are conservative: a mapping rejected here would also be
    rejected by the full resource analysis (property-tested in
    ``tests/property/test_prop_engine.py``).  At most one compute and
    one memory violation are reported — one proof is enough to reject.
    """

    name = "resource_bounds"
    reads = ("slices",)
    writes = ("bound_violations", "bound_violation_codes")

    def run(self, ctx: AnalysisContext) -> None:
        problems: List[str] = []
        #: Machine-readable reason codes, index-parallel to ``problems``
        #: (``prescreen.reject`` events and ``repro explain`` report
        #: them; the human strings stay byte-compatible with PR-3).
        codes: List[str] = []
        mac, vec = ctx.num_pe(ctx.tree.root)
        if mac > ctx.arch.pe_count:
            problems.append(f"compute: {mac} MAC PEs needed, "
                            f"{ctx.arch.pe_count} available {PRESCREEN_TAG}")
            codes.append(f"compute.mac:{mac}>{ctx.arch.pe_count}")
        elif vec > ctx.arch.vector_pe_count:
            problems.append(
                f"compute: {vec} vector lanes needed, "
                f"{ctx.arch.vector_pe_count} available {PRESCREEN_TAG}")
            codes.append(f"compute.vector:{vec}>{ctx.arch.vector_pe_count}")
        if ctx.check_memory:
            for node in ctx.tree.nodes():
                level = ctx.arch.level(node.level)
                if level.capacity_bytes is None:
                    continue
                used = ctx.staged_bytes_lower_bound(node)
                if used > level.capacity_bytes:
                    problems.append(
                        f"memory: level {level.name} needs at least "
                        f"{used / 1024:.1f} KB per instance "
                        f"(double-buffered), capacity "
                        f"{level.capacity_bytes / 1024:.1f} KB "
                        f"{PRESCREEN_TAG}")
                    codes.append(f"memory.capacity:{level.name}")
                    break
        ctx.put("bound_violations", problems)
        ctx.put("bound_violation_codes", codes)


class ResourcesPass(AnalysisPass):
    """The §5.2 NumPE/FootPrint recursions and violation checks."""

    name = "resources"
    reads = ("slices", "movement")
    writes = ("resources", "violations")

    def run(self, ctx: AnalysisContext) -> None:
        from .resources import ResourceAnalysis
        usage, violations = ResourceAnalysis(
            ctx.tree, ctx.arch, ctx.get("movement"), context=ctx).run()
        ctx.put("resources", usage)
        ctx.put("violations", violations)


class LatencyPass(AnalysisPass):
    """The §5.3 bottom-up latency composition + §7.5 slow-down."""

    name = "latency"
    reads = ("movement",)
    writes = ("latency",)

    def run(self, ctx: AnalysisContext) -> None:
        from .latency import LatencyAnalysis
        ctx.put("latency", LatencyAnalysis(
            ctx.tree, ctx.arch, ctx.get("movement"), context=ctx).run())


class EnergyPass(AnalysisPass):
    """Per-component energy from the aggregate traffic (§5.3)."""

    name = "energy"
    reads = ("movement",)
    writes = ("energy",)

    def run(self, ctx: AnalysisContext) -> None:
        movement = ctx.get("movement")
        ctx.put("energy", compute_energy(
            ctx.tree.workload, ctx.arch, movement.traffic))


class Pipeline:
    """An ordered sequence of passes with statically checked wiring."""

    def __init__(self, passes: Sequence[AnalysisPass]):
        self.passes: Tuple[AnalysisPass, ...] = tuple(passes)
        self.check()

    def check(self) -> None:
        """Raise :class:`PipelineError` unless every read is satisfied.

        Each pass may only read artifacts some *earlier* pass writes,
        and pass names must be unique (they key resume bookkeeping).
        """
        produced: set = set()
        seen: set = set()
        for p in self.passes:
            if not p.name:
                raise PipelineError(f"pass {p!r} has no name")
            if p.name in seen:
                raise PipelineError(f"duplicate pass name {p.name!r}")
            seen.add(p.name)
            missing = [r for r in p.reads if r not in produced]
            if missing:
                raise PipelineError(
                    f"pass {p.name!r} reads {missing} before any earlier "
                    f"pass writes them (order: "
                    f"{[q.name for q in self.passes]})")
            produced.update(p.writes)

    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    # ------------------------------------------------------------------
    def run(self, ctx: AnalysisContext, until: Optional[str] = None,
            stop_on_violation: bool = False) -> AnalysisContext:
        """Run the passes over ``ctx`` in order.

        Passes already recorded in ``ctx.completed`` are skipped, so a
        context that ran a prefix pipeline resumes where it stopped.

        Parameters
        ----------
        until:
            Stop (inclusively) after the named pass.  Must name a pass
            of this pipeline.
        stop_on_violation:
            Stop as soon as the ``violations`` artifact is non-empty
            (sets ``ctx.early_exit`` and bumps ``model.early_exit``).
        """
        if until is not None and until not in self.names():
            raise ValueError(f"until={until!r} names no pass in "
                             f"{self.names()}")
        for p in self.passes:
            if p.name in ctx.completed:
                if p.name == until:
                    break
                continue
            with obs.span(f"model.pass.{p.name}", "analysis",
                          tree=ctx.tree.name):
                p.run(ctx)
            ctx.completed.append(p.name)
            if stop_on_violation and ctx.get("violations"):
                ctx.early_exit = True
                obs.count("model.early_exit")
                break
            if p.name == until:
                break
        return ctx


def default_passes() -> Tuple[AnalysisPass, ...]:
    """Fresh instances of the full §5 pipeline, in canonical order."""
    return (ValidatePass(), SlicesPass(), DataMovementPass(),
            ResourcesPass(), LatencyPass(), EnergyPass())


def prescreen_passes() -> Tuple[AnalysisPass, ...]:
    """The cheap feasibility prefix the engine runs before full work."""
    return (ValidatePass(), SlicesPass(), ResourceBoundsPass())


#: The full §5 analysis, in canonical order.
DEFAULT_PIPELINE = Pipeline(default_passes())

#: The cheap feasibility prefix (validate -> slices -> resource bounds).
PRESCREEN_PIPELINE = Pipeline(prescreen_passes())


def check_builtin_pipelines() -> str:
    """Re-check the wiring of the built-in pipelines (CI entry point)."""
    lines = []
    for label, pipe in (("default", DEFAULT_PIPELINE),
                        ("prescreen", PRESCREEN_PIPELINE)):
        pipe.check()
        lines.append(f"{label}: {' -> '.join(pipe.names())} OK")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    print(check_builtin_pipelines())
