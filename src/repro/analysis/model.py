"""The TileFlow performance model: orchestration of the tree analyses.

:class:`TileFlowModel` ties together structural validation (§4), data
movement (§5.1), resource usage (§5.2), and latency/energy estimation
(§5.3) and returns an :class:`~repro.analysis.metrics.EvaluationResult`.

By default resource violations are *recorded* in the result (mappers
reject or penalize infeasible candidates); ``strict=True`` raises
:class:`~repro.errors.ResourceExceededError` instead.
"""

from __future__ import annotations

from typing import Optional

from .. import obs
from ..arch import Architecture
from ..errors import ResourceExceededError
from ..tile.tree import AnalysisTree
from ..tile.validate import validate_tree
from .datamovement import DataMovementAnalysis, DataMovementResult
from .energy import compute_energy
from .latency import LatencyAnalysis
from .metrics import EvaluationResult
from .resources import ResourceAnalysis


class TileFlowModel:
    """Evaluates analysis trees against an architecture specification.

    ``model_eviction`` / ``model_rmw`` ablate the corresponding
    data-movement refinements (see
    :class:`~repro.analysis.datamovement.DataMovementAnalysis`).
    """

    def __init__(self, arch: Architecture, model_eviction: bool = True,
                 model_rmw: bool = True):
        self.arch = arch
        self.model_eviction = model_eviction
        self.model_rmw = model_rmw

    def evaluate(self, tree: AnalysisTree, validate: bool = True,
                 strict: bool = False) -> EvaluationResult:
        """Run the full tree-based analysis on one mapping.

        Parameters
        ----------
        tree:
            The fusion dataflow to evaluate.
        validate:
            Run structural validation first (recommended; disable only for
            deliberately partial trees in tests).
        strict:
            Raise on resource violations instead of recording them.
        """
        with obs.span("model.evaluate", "analysis", tree=tree.name):
            obs.count("model.evaluations")
            if validate:
                with obs.span("model.validate", "analysis"):
                    validate_tree(tree)
            with obs.span("model.datamovement", "analysis"):
                movement = DataMovementAnalysis(
                    tree, self.arch, model_eviction=self.model_eviction,
                    model_rmw=self.model_rmw).run()
            with obs.span("model.resources", "analysis"):
                usage, violations = ResourceAnalysis(
                    tree, self.arch, movement).run()
            with obs.span("model.latency", "analysis"):
                cycles, slowdown = LatencyAnalysis(
                    tree, self.arch, movement).run()
            with obs.span("model.energy", "analysis"):
                energy_pj, breakdown = compute_energy(
                    tree.workload, self.arch, movement.traffic)
        if violations:
            obs.count("model.infeasible")
        if strict and violations:
            raise ResourceExceededError(
                f"mapping {tree.name!r} infeasible on {self.arch.name!r}: "
                + "; ".join(violations))
        result = EvaluationResult(
            tree_name=tree.name,
            arch_name=self.arch.name,
            latency_cycles=cycles,
            energy_pj=energy_pj,
            total_ops=tree.workload.total_ops,
            traffic=movement.traffic,
            resources=usage,
            violations=violations,
            energy_breakdown_pj=breakdown,
            latency_seconds=cycles / (self.arch.frequency_ghz * 1e9),
            slowdown=slowdown,
        )
        return result

    def movement(self, tree: AnalysisTree,
                 validate: bool = True) -> DataMovementResult:
        """Run only the data-movement analysis (used by sub-studies)."""
        if validate:
            validate_tree(tree)
        return DataMovementAnalysis(
            tree, self.arch, model_eviction=self.model_eviction,
            model_rmw=self.model_rmw).run()
