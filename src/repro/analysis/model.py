"""The TileFlow performance model: a pass pipeline over analysis trees.

:class:`TileFlowModel` runs the §5 analyses — structural validation
(§4), slice geometry, data movement (§5.1), resource usage (§5.2), and
latency/energy estimation (§5.3) — as an explicit pass pipeline
(:mod:`repro.analysis.pipeline`) over a shared per-evaluation
:class:`~repro.analysis.context.AnalysisContext`, and assembles an
:class:`~repro.analysis.metrics.EvaluationResult` from the context's
artifacts.

Partial evaluation: ``evaluate(until="resources")`` stops after a named
pass, ``stop_on_violation=True`` stops at the first pass that records
resource violations, and ``strict=True`` raises
:class:`~repro.errors.ResourceExceededError` as soon as violations are
known — before latency or energy are computed.  Results from shortened
runs have ``result.partial == True`` and hold defaults (zeros / empty
dicts) for the skipped stages.

By default resource violations are *recorded* in the result (mappers
reject or penalize infeasible candidates).
"""

from __future__ import annotations

from typing import Optional

from .. import obs
from ..arch import Architecture
from ..errors import ResourceExceededError
from ..tile.tree import AnalysisTree
from .context import AnalysisContext
from .datamovement import DataMovementResult
from .metrics import EvaluationResult, ResourceUsage
from .pipeline import DEFAULT_PIPELINE, Pipeline


class TileFlowModel:
    """Evaluates analysis trees against an architecture specification.

    ``model_eviction`` / ``model_rmw`` ablate the corresponding
    data-movement refinements (see
    :class:`~repro.analysis.datamovement.DataMovementAnalysis`).
    ``pipeline`` substitutes a custom pass sequence (the graph-based
    baseline, for example, skips the resource pass); the default is the
    full §5 pipeline.
    """

    def __init__(self, arch: Architecture, model_eviction: bool = True,
                 model_rmw: bool = True,
                 pipeline: Optional[Pipeline] = None):
        self.arch = arch
        self.model_eviction = model_eviction
        self.model_rmw = model_rmw
        self.pipeline = pipeline if pipeline is not None else DEFAULT_PIPELINE

    def context(self, tree: AnalysisTree,
                artifact_cache=None) -> AnalysisContext:
        """A fresh evaluation context for ``tree`` on this model's arch.

        Callers that run several pipeline (prefixes) over the same tree
        — the engine's pre-screen-then-evaluate path — create the
        context once and thread it through, so completed passes and
        memoized intermediates carry over.  ``artifact_cache`` plugs in
        a persistent cross-evaluation subtree store
        (:class:`~repro.engine.cache.SubtreeArtifactCache`), the
        incremental-evaluation layer.
        """
        return AnalysisContext(tree, self.arch,
                               model_eviction=self.model_eviction,
                               model_rmw=self.model_rmw,
                               artifact_cache=artifact_cache)

    def evaluate(self, tree: AnalysisTree, validate: bool = True,
                 strict: bool = False, *, until: Optional[str] = None,
                 stop_on_violation: bool = False,
                 context: Optional[AnalysisContext] = None
                 ) -> EvaluationResult:
        """Run the tree-based analysis pipeline on one mapping.

        Parameters
        ----------
        tree:
            The fusion dataflow to evaluate.
        validate:
            Run structural validation first (recommended; disable only for
            deliberately partial trees in tests).
        strict:
            Raise on resource violations instead of recording them; the
            exception fires before latency/energy run (implies
            ``stop_on_violation``).
        until:
            Stop (inclusively) after the named pass; the result is then
            partial.
        stop_on_violation:
            Stop at the first pass recording violations.
        context:
            Resume an existing context (its completed passes are
            skipped) instead of starting fresh.
        """
        ctx = context if context is not None else self.context(tree)
        if not validate:
            ctx.mark_completed("validate")
        with obs.span("model.evaluate", "analysis", tree=tree.name):
            obs.count("model.evaluations")
            self.pipeline.run(ctx, until=until,
                              stop_on_violation=stop_on_violation or strict)
        violations = list(ctx.get("violations") or ())
        if violations:
            obs.count("model.infeasible")
        if strict and violations:
            raise ResourceExceededError(
                f"mapping {tree.name!r} infeasible on {self.arch.name!r}: "
                + "; ".join(violations))
        return self._assemble(tree, ctx, violations)

    def _assemble(self, tree: AnalysisTree, ctx: AnalysisContext,
                  violations) -> EvaluationResult:
        movement = ctx.get("movement")
        cycles, slowdown = ctx.get("latency", (0.0, {}))
        energy_pj, breakdown = ctx.get("energy", (0.0, {}))
        partial = ctx.early_exit or any(
            p.name not in ctx.completed for p in self.pipeline.passes)
        return EvaluationResult(
            tree_name=tree.name,
            arch_name=self.arch.name,
            latency_cycles=cycles,
            energy_pj=energy_pj,
            total_ops=tree.workload.total_ops,
            traffic=movement.traffic if movement is not None else {},
            resources=ctx.get("resources") or ResourceUsage(),
            violations=violations,
            energy_breakdown_pj=breakdown,
            latency_seconds=cycles / (self.arch.frequency_ghz * 1e9),
            slowdown=slowdown,
            partial=partial,
            completed_passes=tuple(ctx.completed),
        )

    def movement(self, tree: AnalysisTree,
                 validate: bool = True) -> DataMovementResult:
        """Run only the pipeline prefix up to data movement (sub-studies)."""
        ctx = self.context(tree)
        if not validate:
            ctx.mark_completed("validate")
        with obs.span("model.movement", "analysis", tree=tree.name):
            obs.count("model.movements")
            self.pipeline.run(ctx, until="datamovement")
        return ctx.get("movement")
