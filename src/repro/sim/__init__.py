"""Cycle-approximate simulated accelerator (the paper's RTL substitute)."""

from .accelerator import (ARRAY_FILL_CYCLES, DRAM_BURST_BYTES,
                          SimulatedAccelerator, SimulationReport)
from .program import TilePhase, lower

__all__ = [
    "SimulatedAccelerator", "SimulationReport",
    "ARRAY_FILL_CYCLES", "DRAM_BURST_BYTES",
    "TilePhase", "lower",
]
