"""Cycle-approximate simulated accelerator (RTL/Verilator substitute).

The paper validates TileFlow against a Chisel RTL design simulated with
Verilator (§7.1).  Offline, we substitute a discrete simulator that
executes the same lowered tile programs with hardware-faithful effects the
*analytical* model deliberately smooths over:

* **Integer-cycle transfers** — every tile load/store rounds up to whole
  cycles and whole DRAM bursts.
* **Pipeline fill/drain** — double buffering overlaps steady-state
  iterations only; the first load and last store are exposed, and each
  PE-array tile pays a systolic fill latency.
* **Retention of small working sets** — if a node's whole sweep fits in
  its buffer, the hardware does not replace the data between iterations;
  the analytical model assumes replacement every outer iteration, which
  is exactly the small-tile overestimation the paper reports for its
  energy validation (Fig. 8d discussion).

These effects produce deviations of the same character (and roughly the
same magnitude) as the paper's model-vs-RTL comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from .. import obs
from ..analysis import DataMovementAnalysis, DataMovementResult
from ..analysis.energy import compute_energy
from ..arch import Architecture
from ..tile.bindings import Binding
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode

#: Cycles to fill/drain the PE array pipeline per tile execution.
ARRAY_FILL_CYCLES = 4

#: DRAM transfers round up to this burst size (bytes).
DRAM_BURST_BYTES = 64


@dataclass
class SimulationReport:
    """Output of one simulated execution."""

    cycles: float
    energy_pj: float
    traffic_words: Dict[int, float]

    @property
    def milliseconds(self) -> float:  # pragma: no cover - convenience
        return self.cycles


class SimulatedAccelerator:
    """Executes analysis trees at tile-event granularity."""

    def __init__(self, arch: Architecture):
        self.arch = arch

    # ------------------------------------------------------------------
    def run(self, tree: AnalysisTree,
            movement: Optional[DataMovementResult] = None
            ) -> SimulationReport:
        with obs.span("sim.run", "sim", tree=tree.name):
            with obs.span("sim.movement", "sim"):
                movement = (movement
                            or DataMovementAnalysis(tree, self.arch).run())
            self._tree = tree
            self._movement = movement
            self._word_bytes = {t.name: t.word_bytes
                                for t in tree.workload.tensors()}
            self._executions: Dict[int, float] = {}
            self._count_executions(tree.root, 1.0)
            self._retention: Dict[int, float] = {}

            with obs.span("sim.event_loop", "sim"):
                cycles = self._sim_node(tree.root, concurrency=1.0)
            with obs.span("sim.energy", "sim"):
                energy, traffic = self._energy(tree, movement)
            if obs.is_enabled():
                self._record_occupancy(tree)
        return SimulationReport(cycles=cycles, energy_pj=energy,
                                traffic_words=traffic)

    def _record_occupancy(self, tree: AnalysisTree) -> None:
        """Buffer-occupancy high-water marks (gauges track the max)."""
        for node in tree.nodes():
            flows = self._movement.flows(node)
            staged = sum(w * self._word_bytes[t]
                         for t, w in flows.staged_words.items())
            obs.gauge(f"sim.occupancy_bytes.L{node.level}", staged)

    # ------------------------------------------------------------------
    def _count_executions(self, node: TileNode, times: float) -> None:
        self._executions[id(node)] = times
        inner = times * node.trip_count
        for child in node.children_nodes():
            self._count_executions(child, inner)

    def _io_bytes_per_iter(self, node: TileNode) -> float:
        flows = self._movement.flows(node)
        execs = max(1.0, self._executions[id(node)])
        trips = max(1, node.temporal_trip_count)
        total = sum(w * self._word_bytes[t]
                    for t, w in flows.fills.items())
        total += sum(w * self._word_bytes[t]
                     for t, w in flows.updates.items())
        total *= self._retention_factor(node)
        return total / (execs * trips)

    def _retention_factor(self, node: TileNode) -> float:
        """<1 when the node's whole sweep stays resident in its buffer."""
        cached = self._retention.get(id(node))
        if cached is not None:
            return cached
        factor = 1.0
        level = self.arch.level(node.level)
        trips = max(1, node.temporal_trip_count)
        if level.capacity_bytes is not None and trips > 1:
            flows = self._movement.flows(node)
            staged = sum(w * self._word_bytes[t]
                         for t, w in flows.staged_words.items())
            sweep = staged * trips
            if 0 < sweep <= level.capacity_bytes / 2:
                factor = 1.0 / trips  # data loaded once, kept resident
        self._retention[id(node)] = factor
        return factor

    def _transfer_cycles(self, byt: float, source_level: int,
                         concurrency: float) -> float:
        level = self.arch.level(source_level)
        if source_level == self.arch.dram_index:
            byt = math.ceil(byt / DRAM_BURST_BYTES) * DRAM_BURST_BYTES
        bw = (level.bytes_per_cycle(self.arch.frequency_ghz) * level.fanout
              / max(1.0, concurrency))
        return byt / max(1e-9, bw)

    # ------------------------------------------------------------------
    def _sim_node(self, node: TileNode, concurrency: float) -> float:
        """Cycles of one execution of ``node`` (integer-cycle semantics)."""
        obs.count("sim.events")
        source_level = (node.parent.level if node.parent is not None
                        else self.arch.dram_index)
        io_per_iter = 0.0
        if node.level < source_level:
            io_per_iter = self._transfer_cycles(
                self._io_bytes_per_iter(node), source_level, concurrency)

        trips = max(1, node.temporal_trip_count)
        if node.is_leaf():
            assert isinstance(node, OpTile)
            pool = self.arch.compute_units(node.op.kind)
            waves = max(1.0, node.spatial_trip_count / pool)
            inner = math.ceil(waves * node.op.ops_per_point)
            steady = trips * max(io_per_iter, inner)
            return io_per_iter + steady + ARRAY_FILL_CYCLES
        if isinstance(node, OpTile):
            child = self._sim_node(node.child,
                                   concurrency * node.spatial_trip_count)
            steady = trips * max(io_per_iter, child)
            return io_per_iter + steady
        assert isinstance(node, FusionNode)
        child_conc = concurrency * node.spatial_trip_count
        kids = [self._sim_node(c, child_conc) for c in node.children]
        if node.binding.shares_compute_in_time:
            per_iter = sum(kids)
        else:
            # Pipeline: steady-state is the slowest stage; the other
            # stages' first iterations are exposed as fill.
            per_iter = max(kids)
            fill = sum(kids) - max(kids)
            return io_per_iter + trips * max(io_per_iter, per_iter) \
                + fill / max(1, trips) * min(2, len(kids))
        return io_per_iter + trips * max(io_per_iter, per_iter)

    # ------------------------------------------------------------------
    def _energy(self, tree: AnalysisTree, movement: DataMovementResult):
        """Discrete energy: per-level traffic with retention applied."""
        traffic_words: Dict[int, float] = {}
        scaled = {}
        for level_idx, lt in movement.traffic.items():
            scaled[level_idx] = lt
            traffic_words[level_idx] = lt.total_words
        # Apply retention per node by discounting its fills at its level.
        for node in tree.nodes():
            factor = self._retention_factor(node)
            if factor >= 1.0:
                continue
            flows = movement.flows(node)
            saved = sum(flows.fills.values()) * (1.0 - factor)
            traffic_words[node.level] = max(
                0.0, traffic_words.get(node.level, 0.0) - saved)
        total = tree.workload.total_ops * self.arch.mac_energy_pj
        for level_idx, words in traffic_words.items():
            level = self.arch.level(level_idx)
            total += words * (level.read_energy_pj
                              + level.write_energy_pj) / 2.0
        return total, traffic_words
