"""Lowering analysis trees to tile programs.

The RTL accelerator of §7.1 executes matrix / vector / load / store
instructions.  :func:`lower` walks an analysis tree and emits the
corresponding tile program: a nested structure of phases, each with the
per-iteration load/store bytes and the compute instruction it issues.
The cycle-approximate simulator consumes this structure, and the
instruction summary doubles as the "compiled binary" statistics the
examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import DataMovementResult
from ..arch import Architecture
from ..ir import Workload
from ..tile.bindings import Binding
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode


@dataclass
class TilePhase:
    """One node of the lowered program."""

    label: str
    level: int
    temporal_trips: int
    spatial_trips: int
    load_bytes_per_iter: float
    store_bytes_per_iter: float
    binding: Optional[Binding]
    compute_kind: Optional[str]        # set on leaves
    compute_lanes: int = 1
    compute_cycles_per_iter: float = 0.0
    children: List["TilePhase"] = field(default_factory=list)

    def instruction_counts(self) -> Dict[str, int]:
        """Total instruction counts for one execution of this phase."""
        counts = {"matrix": 0, "vector": 0, "load": 0, "store": 0}
        if self.compute_kind is not None:
            key = "matrix" if self.compute_kind == "mac" else "vector"
            counts[key] += self.temporal_trips
        if self.load_bytes_per_iter > 0:
            counts["load"] += self.temporal_trips
        if self.store_bytes_per_iter > 0:
            counts["store"] += self.temporal_trips
        for child in self.children:
            for k, v in child.instruction_counts().items():
                counts[k] += v * self.temporal_trips
        return counts


def lower(tree: AnalysisTree, arch: Architecture,
          movement: DataMovementResult) -> TilePhase:
    """Lower a tree (with its analyzed flows) into a tile program."""
    word_bytes = {t.name: t.word_bytes for t in tree.workload.tensors()}

    def bytes_of(words_by_tensor: Dict[str, float]) -> float:
        return sum(w * word_bytes[t] for t, w in words_by_tensor.items())

    def executions(node: TileNode) -> float:
        n = 1.0
        for a in node.ancestors():
            n *= a.trip_count
        return max(1.0, n)

    def visit(node: TileNode) -> TilePhase:
        flows = movement.flows(node)
        execs = executions(node)
        trips = max(1, node.temporal_trip_count)
        phase = TilePhase(
            label=node.label(),
            level=node.level,
            temporal_trips=trips,
            spatial_trips=max(1, node.spatial_trip_count),
            load_bytes_per_iter=bytes_of(flows.fills) / (execs * trips),
            store_bytes_per_iter=bytes_of(flows.updates) / (execs * trips),
            binding=(node.binding if isinstance(node, FusionNode) else None),
            compute_kind=(node.op.kind if node.is_leaf()
                          and isinstance(node, OpTile) else None),
        )
        if node.is_leaf() and isinstance(node, OpTile):
            phase.compute_lanes = node.spatial_trip_count
            phase.compute_cycles_per_iter = node.op.ops_per_point
        phase.children = [visit(c) for c in node.children_nodes()]
        return phase

    return visit(tree.root)
