"""Graph-based fusion estimation (the §2.3 strawman, Fig. 8c yellow dots).

Graph-based approaches evaluate each operator separately with a
single-operator model and then strip the inter-operator data-movement
latency implied by the compute-graph topology — without modeling the
memory hierarchy's actual behaviour under fusion.  The paper measures
~48.8% average error for this scheme against real hardware; we reproduce
the scheme so the validation experiment can reproduce the *gap*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import (DataMovementPass, EnergyPass, LatencyPass, Pipeline,
                        SlicesPass, TileFlowModel, ValidatePass)
from ..arch import Architecture
from ..dataflows.attention_dataflows import layerwise as attention_layerwise
from ..dataflows.conv_dataflows import conv_layerwise
from ..errors import MappingError
from ..ir import Workload

#: The scheme only reads latency + energy, and single-op layerwise
#: mappings need no feasibility verdict — so its pipeline drops the
#: resource pass entirely instead of computing and discarding it.
_GRAPH_PIPELINE = Pipeline((ValidatePass(), SlicesPass(),
                            DataMovementPass(), LatencyPass(), EnergyPass()))


@dataclass
class GraphBasedResult:
    """Latency/energy estimate of the graph-based scheme."""

    cycles: float
    energy_pj: float
    per_op_cycles: Dict[str, float]
    stripped_cycles: float


class GraphBasedModel:
    """Per-op evaluation + topological transfer stripping."""

    def __init__(self, arch: Architecture):
        self.arch = arch
        self.model = TileFlowModel(arch, pipeline=_GRAPH_PIPELINE)

    def evaluate(self, workload: Workload) -> GraphBasedResult:
        """Estimate a fused execution from unfused per-op evaluations.

        1. Evaluate the workload layerwise (each op alone, intermediates
           through DRAM) — the only thing single-op models can do.
        2. Strip the DRAM transfer latency of every intermediate tensor
           (it would stay on-chip under fusion) from the total.

        The scheme has no notion of on-chip capacity, pipelining, or
        intra-fusion reuse, which is where its error comes from.
        """
        tree = self._layerwise_tree(workload)
        baseline = self.model.evaluate(tree)
        dram = self.arch.dram
        bw = dram.bytes_per_cycle(self.arch.frequency_ghz)

        stripped = 0.0
        for tensor in workload.intermediate_tensors():
            consumers = len(workload.consumers(tensor.name))
            # One write by the producer plus one read per consumer.
            words = tensor.volume * (1 + consumers)
            stripped += words * tensor.word_bytes / bw

        cycles = max(baseline.latency_cycles - stripped,
                     baseline.latency_cycles * 0.05)
        # Energy: remove the DRAM access energy of the stripped transfers.
        stripped_pj = sum(
            t.volume * (1 + len(workload.consumers(t.name)))
            * (dram.read_energy_pj + dram.write_energy_pj) / 2.0
            for t in workload.intermediate_tensors())
        energy = max(baseline.energy_pj - stripped_pj,
                     baseline.energy_pj * 0.05)
        per_op = {op.name: 0.0 for op in workload.operators}
        return GraphBasedResult(cycles=cycles, energy_pj=energy,
                                per_op_cycles=per_op,
                                stripped_cycles=stripped)

    # ------------------------------------------------------------------
    def _layerwise_tree(self, workload: Workload):
        names = {op.name for op in workload.operators}
        if "qk" in names and "av" in names:
            return attention_layerwise(workload, self.arch)
        if "conv1" in names and "conv2" in names:
            return conv_layerwise(workload, self.arch)
        raise MappingError(
            f"graph-based model has no layerwise builder for "
            f"{workload.name!r}")
