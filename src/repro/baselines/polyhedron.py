"""Polyhedron-based single-operator performance model (Timeloop stand-in).

This is an *independent* implementation of the classic per-level reuse
analysis used by Timeloop/MAESTRO-class models (§2.3): a single operator's
perfectly nested loops are split across memory levels, and each level's
fill traffic is its resident slice times the product of the loop counts
above that cannot be reused across.  No tree machinery, no box-delta
arithmetic — so agreement with the tree-based engine on single operators
(Fig. 8a/8b) is a meaningful cross-check, not a tautology.

The model deliberately supports only single operators; that limitation is
exactly why the paper needs tree-based analysis for fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch import Architecture
from ..errors import MappingError
from ..ir import Operator, TensorAccess, Workload


@dataclass(frozen=True)
class MappingLoop:
    """One loop of a polyhedron mapping."""

    dim: str
    count: int
    spatial: bool = False


@dataclass
class PolyhedronMapping:
    """A single-operator mapping: loops per level, outermost level first.

    ``levels[0]`` holds the loops at the outermost on-chip boundary (fills
    from DRAM), the last entry holds the innermost (register) loops.  The
    product of counts per dim over all levels must equal the dim size.
    """

    levels: List[List[MappingLoop]]

    def validate(self, op: Operator) -> None:
        totals: Dict[str, int] = {d: 1 for d in op.dims}
        for level in self.levels:
            for loop in level:
                if loop.dim not in op.dims:
                    raise MappingError(
                        f"mapping loop over unknown dim {loop.dim!r}")
                totals[loop.dim] *= loop.count
        for d, size in op.dims.items():
            if totals[d] != size:
                raise MappingError(
                    f"mapping covers {totals[d]} of dim {d!r} (size {size})")

    def coverage_below(self, level_index: int) -> Dict[str, int]:
        """Per-dim extent of one resident slice at ``level_index``.

        Covers every loop of deeper levels plus the *spatial* loops of the
        level itself (spatial instances co-reside; the level's temporal
        loops are the time steps that replace the slice).
        """
        cov: Dict[str, int] = {}
        for loop in self.levels[level_index]:
            if loop.spatial:
                cov[loop.dim] = cov.get(loop.dim, 1) * loop.count
        for level in self.levels[level_index + 1:]:
            for loop in level:
                cov[loop.dim] = cov.get(loop.dim, 1) * loop.count
        return cov

    def temporal_loops_above(self, level_index: int
                             ) -> List[MappingLoop]:
        """Temporal loops at and above ``level_index``, inner to outer."""
        loops: List[MappingLoop] = []
        for level in reversed(self.levels[:level_index + 1]):
            for loop in reversed(level):
                if not loop.spatial:
                    loops.append(loop)
        return loops

    def spatial_size(self) -> int:
        n = 1
        for level in self.levels:
            for loop in level:
                if loop.spatial:
                    n *= loop.count
        return n


@dataclass
class PolyhedronResult:
    """Cycle/energy estimate plus per-level word traffic."""

    cycles: float
    energy_pj: float
    traffic_words: Dict[int, Dict[str, float]] = field(default_factory=dict)
    compute_cycles: float = 0.0
    io_cycles: Dict[int, float] = field(default_factory=dict)


class PolyhedronModel:
    """Evaluates single-operator mappings on an architecture."""

    def __init__(self, arch: Architecture):
        self.arch = arch

    # ------------------------------------------------------------------
    def evaluate(self, workload: Workload,
                 mapping: PolyhedronMapping) -> PolyhedronResult:
        if len(workload.operators) != 1:
            raise MappingError(
                "the polyhedron model supports single-operator workloads "
                "only (this is the limitation fusion analysis removes)")
        op = workload.operators[0]
        mapping.validate(op)
        n_onchip = len(mapping.levels)
        if n_onchip != self.arch.dram_index:
            raise MappingError(
                f"mapping has {n_onchip} levels; architecture "
                f"{self.arch.name!r} has {self.arch.dram_index} on-chip "
                f"levels")

        traffic: Dict[int, Dict[str, float]] = {
            i: {} for i in range(self.arch.num_levels)}
        # Level i of the mapping corresponds to buffer level
        # (dram_index - 1 - i): mapping level 0 fills from DRAM.
        for mi in range(n_onchip):
            buffer_level = self.arch.dram_index - 1 - mi
            for access, is_output in self._accesses(op):
                words = self._fill_words(op, mapping, mi, access, is_output)
                name = access.tensor.name
                traffic[buffer_level][name] = (
                    traffic[buffer_level].get(name, 0.0) + words)

        cycles, compute, io = self._latency(op, mapping, traffic)
        energy = self._energy(op, traffic)
        return PolyhedronResult(cycles=cycles, energy_pj=energy,
                                traffic_words=traffic,
                                compute_cycles=compute, io_cycles=io)

    # ------------------------------------------------------------------
    @staticmethod
    def _accesses(op: Operator):
        for a in op.inputs:
            yield a, False
        yield op.output, True

    @staticmethod
    def _relevant(access: TensorAccess, dim: str) -> bool:
        return any(e.coeff(dim) != 0 for e in access.exprs)

    def _fill_words(self, op: Operator, mapping: PolyhedronMapping,
                    level_index: int, access: TensorAccess,
                    is_output: bool) -> float:
        """Words moved into mapping level ``level_index`` for one tensor.

        Classic reuse rule: walking the temporal loops above the buffer
        from inner to outer, a loop multiplies the traffic if it is
        relevant to the tensor *or* if any relevant loop is nested inside
        it (the inner sweep displaced the resident slice, so it cannot be
        reused).  Irrelevant loops with no relevant loop inside permit
        full reuse.
        """
        cov = mapping.coverage_below(level_index)
        slice_words = float(access.footprint_over(cov))
        mult = 1.0
        relevant_seen = False
        rmw = False
        for loop in mapping.temporal_loops_above(level_index):
            if loop.count == 1:
                continue  # degenerate loop: no time steps, no reuse break
            relevant = self._relevant(access, loop.dim)
            if relevant:
                relevant_seen = True
                mult *= loop.count
            elif relevant_seen:
                mult *= loop.count
                if is_output and loop.dim in op.reduction_dims:
                    rmw = True
            # else: fully reusable across this loop.
        words = slice_words * mult
        if is_output and rmw:
            words *= 2.0  # partial sums written back and refetched
        return words

    # ------------------------------------------------------------------
    def _latency(self, op: Operator, mapping: PolyhedronMapping,
                 traffic: Dict[int, Dict[str, float]]
                 ) -> Tuple[float, float, Dict[int, float]]:
        spatial = max(1, mapping.spatial_size())
        pool = self.arch.compute_units(op.kind)
        waves = max(1.0, spatial / pool)
        compute = (op.iteration_volume / spatial) * waves \
            * op.ops_per_point
        word_bytes = op.output.tensor.word_bytes
        io: Dict[int, float] = {}
        for mi in range(len(mapping.levels)):
            source = self.arch.dram_index - mi  # level data comes from
            level = self.arch.level(source)
            buffer_level = source - 1
            words = sum(traffic[buffer_level].values())
            bw = level.bytes_per_cycle(self.arch.frequency_ghz) \
                * level.fanout
            io[source] = words * word_bytes / bw
        cycles = max([compute] + list(io.values()))
        return cycles, compute, io

    def _energy(self, op: Operator,
                traffic: Dict[int, Dict[str, float]]) -> float:
        total = op.total_ops * self.arch.mac_energy_pj
        # Compute-side register accesses: each iteration point reads its
        # operands from and writes its accumulator to the innermost level.
        reg = self.arch.innermost
        total += op.iteration_volume * (
            len(op.inputs) * reg.read_energy_pj + reg.write_energy_pj)
        for buffer_level, tensors in traffic.items():
            words = sum(tensors.values())
            if not words:
                continue
            # A fill writes the buffer and reads its source level.
            level = self.arch.level(buffer_level)
            source = self.arch.level(
                min(buffer_level + 1, self.arch.dram_index))
            total += words * (level.write_energy_pj + source.read_energy_pj)
        return total
