"""Baseline performance models used in the validation experiments."""

from .graphbased import GraphBasedModel, GraphBasedResult
from .polyhedron import (MappingLoop, PolyhedronMapping, PolyhedronModel,
                         PolyhedronResult)

__all__ = [
    "PolyhedronModel", "PolyhedronMapping", "PolyhedronResult",
    "MappingLoop",
    "GraphBasedModel", "GraphBasedResult",
]
