"""Monte Carlo Tree Search over tiling factors (§6).

The mapper assigns tiling factors loop by loop: each MCTS tree level fixes
one named factor, and a leaf (all factors decided) is a complete mapping
that is evaluated with the TileFlow model.  Rewards feed back through UCB
(upper confidence bound) statistics, exactly the scheme of Fig. 7c.

The search is deliberately small and dependency-free; it treats the
evaluation callback as a black box returning a *cost* (lower is better),
so the same machinery tunes analytical mappings, baseline models, and
tests.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..obs import events
from .factors import FactorSpace

Cost = float
Evaluator = Callable[[Dict[str, int]], Cost]

#: Cost assigned when the evaluator raises (malformed candidate).
FAILURE_COST = float("inf")


class _Node:
    """One MCTS node: a prefix of factor assignments."""

    __slots__ = ("depth", "children", "visits", "total_reward", "best_cost")

    def __init__(self, depth: int):
        self.depth = depth
        self.children: Dict[int, "_Node"] = {}
        self.visits = 0
        self.total_reward = 0.0
        self.best_cost = FAILURE_COST

    def ucb_child(self, num_choices: int, exploration: float,
                  rng: random.Random) -> int:
        """Index of the child to descend into (UCB1 with random ties)."""
        unvisited = [i for i in range(num_choices) if i not in self.children
                     or self.children[i].visits == 0]
        if unvisited:
            return rng.choice(unvisited)
        scores: List[Tuple[float, int]] = []
        for i in range(num_choices):
            child = self.children[i]
            exploit = child.total_reward / child.visits
            explore = exploration * math.sqrt(
                math.log(max(2, self.visits)) / child.visits)
            scores.append((exploit + explore, i))
        best = max(s for s, _ in scores)
        return rng.choice([i for s, i in scores if s == best])


class MCTSTuner:
    """Tunes a :class:`FactorSpace` against a cost evaluator."""

    def __init__(self, space: FactorSpace, evaluator: Evaluator,
                 exploration: float = 0.7, seed: int = 0,
                 batch: Optional[Callable[[Tuple[int, ...]],
                                          Optional[Dict[Tuple[int, ...],
                                                        Cost]]]] = None):
        self.space = space
        self.evaluator = evaluator
        self.exploration = exploration
        self.rng = random.Random(seed)
        self.root = _Node(depth=0)
        self.best_point: Optional[Dict[str, int]] = None
        self.best_cost: Cost = FAILURE_COST
        self.history: List[Cost] = []
        self._cache: Dict[Tuple[int, ...], Cost] = {}
        #: Optional cohort hook (engine batched layer): called on every
        #: tuner-cache miss with the candidate's index tuple; may return
        #: ``indices -> cost`` entries to prefill the cache.  Any
        #: exception disables the hook for the rest of this search —
        #: batching never changes results, only who computes them.
        self._batch = batch

    # ------------------------------------------------------------------
    def search(self, samples: int) -> Tuple[Optional[Dict[str, int]], Cost]:
        """Run ``samples`` select/rollout/backpropagate steps.

        Returns the best (point, cost) found; ``history`` records the
        best-so-far cost after each sample (the Fig. 9a convergence trace).
        """
        if not self.space.names:
            point: Dict[str, int] = {}
            cost = self._evaluate(())
            self.best_point, self.best_cost = point, cost
            self.history = [cost] * max(1, samples)
            return point, cost
        for i in range(samples):
            with obs.span("mcts.sample", "mapper"):
                cost = self._sample_once()
            obs.count("mcts.samples")
            self.history.append(self.best_cost)
            if events.is_enabled():
                events.emit("mcts.sample", sample=i,
                            cost=events.jsonable_cost(cost),
                            best_cost=events.jsonable_cost(self.best_cost))
        return self.best_point, self.best_cost

    # ------------------------------------------------------------------
    def _sample_once(self) -> Cost:
        path: List[_Node] = [self.root]
        indices: List[int] = []
        node = self.root
        # Selection/expansion down the decided prefix.
        while node.depth < len(self.space.names):
            name = self.space.names[node.depth]
            num = len(self.space.choices[name])
            idx = node.ucb_child(num, self.exploration, self.rng)
            child = node.children.get(idx)
            if child is None:
                child = _Node(node.depth + 1)
                node.children[idx] = child
            indices.append(idx)
            path.append(child)
            node = child
            if child.visits == 0:
                break
        # Rollout: random completion of the remaining factors.
        while len(indices) < len(self.space.names):
            name = self.space.names[len(indices)]
            indices.append(self.rng.randrange(len(self.space.choices[name])))
        cost = self._evaluate(tuple(indices))
        if cost < self.best_cost:
            self.best_cost = cost
            self.best_point = self.space.point_at(indices)
        reward = self._reward(cost)
        for visited in path:
            visited.visits += 1
            visited.total_reward += reward
            visited.best_cost = min(visited.best_cost, cost)
        return cost

    def _evaluate(self, indices: Tuple[int, ...]) -> Cost:
        cached = self._cache.get(indices)
        if cached is not None:
            obs.count("mcts.cache_hits")
            return cached
        if self._batch is not None:
            try:
                entries = self._batch(indices)
            except Exception:
                entries = None
                self._batch = None
            if entries:
                for idx, cost in entries.items():
                    self._cache.setdefault(tuple(idx), cost)
                cost = self._cache.get(indices)
                if cost is not None:
                    if cost == FAILURE_COST:
                        obs.count("mcts.infeasible")
                    return cost
        point = self.space.point_at(indices)
        try:
            cost = float(self.evaluator(point))
        except Exception:
            cost = FAILURE_COST
            obs.count("mcts.failures")
        if cost == FAILURE_COST:
            # Infeasible candidates are the partial-evaluation fast
            # path: the engine's evaluator stops their pipeline at the
            # resource pass instead of computing latency/energy.
            obs.count("mcts.infeasible")
        self._cache[indices] = cost
        return cost

    def _reward(self, cost: Cost) -> float:
        """Map a cost to (0, 1]; infeasible candidates get 0."""
        if not math.isfinite(cost) or cost <= 0:
            return 0.0
        reference = self.best_cost if math.isfinite(self.best_cost) else cost
        return reference / max(cost, reference)
