"""The TileFlow mapper: GA over orderings/bindings, MCTS over tilings."""

from .cost import INFEASIBLE, edp_cost, latency_cost
from .encoding import (EDGE_BINDINGS, Genome, build_genome_tree,
                       genome_factor_space, shared_tileable_dims)
from .factors import FactorSpace, count_factorizations, factorizations
from .genetic import GenerationStats, GeneticExplorer
from .mapper import MapperResult, TileFlowMapper, tune_template
from .mcts import MCTSTuner
from .random_search import RandomSearch

__all__ = [
    "TileFlowMapper", "MapperResult", "tune_template",
    "Genome", "EDGE_BINDINGS", "build_genome_tree", "genome_factor_space",
    "shared_tileable_dims",
    "GeneticExplorer", "GenerationStats",
    "MCTSTuner", "RandomSearch",
    "FactorSpace", "factorizations", "count_factorizations",
    "latency_cost", "edp_cost", "INFEASIBLE",
]
