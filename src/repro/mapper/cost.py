"""Cost functions turning model evaluations into scalar search objectives."""

from __future__ import annotations

from typing import Callable, Optional

from ..analysis import EvaluationResult

Cost = float
INFEASIBLE = float("inf")


def latency_cost(result: EvaluationResult,
                 respect_memory: bool = True) -> Cost:
    """Latency in cycles; infeasible mappings cost infinity.

    ``respect_memory=False`` ignores capacity/fanout violations — the
    Table 7 "No Memory Limit" scenario — while still rejecting compute
    over-subscription.
    """
    if result.violations:
        if respect_memory:
            return INFEASIBLE
        compute_violations = [v for v in result.violations
                              if v.startswith("compute")]
        if compute_violations:
            return INFEASIBLE
    return result.latency_cycles


def edp_cost(result: EvaluationResult,
             respect_memory: bool = True) -> Cost:
    """Energy-delay product objective (optional alternative)."""
    base = latency_cost(result, respect_memory)
    if base == INFEASIBLE:
        return INFEASIBLE
    return base * result.energy_pj
