"""Random-search baseline for factor tuning (sanity yardstick for MCTS)."""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from .factors import FactorSpace
from .mcts import Cost, Evaluator, FAILURE_COST


class RandomSearch:
    """Uniform random sampling of a :class:`FactorSpace`."""

    def __init__(self, space: FactorSpace, evaluator: Evaluator,
                 seed: int = 0):
        self.space = space
        self.evaluator = evaluator
        self.rng = random.Random(seed)
        self.best_point: Optional[Dict[str, int]] = None
        self.best_cost: Cost = FAILURE_COST
        self.history: List[Cost] = []

    def search(self, samples: int) -> Tuple[Optional[Dict[str, int]], Cost]:
        for _ in range(max(1, samples)):
            point = (self.space.random_point(self.rng)
                     if self.space.names else {})
            try:
                cost = float(self.evaluator(point))
            except Exception:
                cost = FAILURE_COST
            if cost < self.best_cost:
                self.best_cost = cost
                self.best_point = point
            self.history.append(self.best_cost)
        return self.best_point, self.best_cost
