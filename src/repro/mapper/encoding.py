"""Genome encoding and generic tree construction for the mapper (Fig. 7b).

The paper encodes an ordering tree plus binding primitives as a table with
one column per operator (which operator to fuse into, at which memory
level, with which binding).  For the linear operator chains this
reproduction targets (attention stages, convolution chains), that table is
equivalent to:

* one *fusion bit* per edge between consecutive operators (fused edges
  merge the operators into one fusion group — the compute-ordering
  dimension), and
* one *binding* per edge (the group's binding is taken from its first
  fused edge — the resource-binding dimension).

Loop tiling (the third dimension) is the genome's :class:`FactorSpace`:
one tiling factor per shared dimension of each fusion group, assigned by
the MCTS stage.  :func:`build_genome_tree` turns a genome plus factors
into an analysis tree using generic (workload-agnostic) chain
construction with imperfect tiling.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch import Architecture
from ..errors import MappingError
from ..ir import Operator, Workload
from ..tile.bindings import Binding
from ..tile.loops import Loop, spatial, temporal
from ..tile.tree import AnalysisTree, FusionNode, OpTile, TileNode
from ..tile.validate import ASSOCIATIVE_KINDS
from .factors import FactorSpace

#: Bindings the GA may assign to a fused edge.
EDGE_BINDINGS: Tuple[Binding, ...] = (Binding.SEQ, Binding.SHAR,
                                      Binding.PIPE)


def _ceil(a: int, b: int) -> int:
    return -(-a // b)


def _ladder(size: int) -> List[int]:
    out, v = [], 1
    while v < size:
        out.append(v)
        v *= 2
    out.append(size)
    return out


@dataclass(frozen=True)
class Genome:
    """One point in the (ordering x binding) plane of the 3D space."""

    fuse_edges: Tuple[bool, ...]
    bindings: Tuple[Binding, ...]

    def __post_init__(self):
        if len(self.fuse_edges) != len(self.bindings):
            raise MappingError("genome edge/binding length mismatch")

    # ------------------------------------------------------------------
    def groups(self, workload: Workload) -> List[List[Operator]]:
        """Fusion groups: maximal runs of operators joined by fused edges."""
        ops = list(workload.operators)
        groups: List[List[Operator]] = [[ops[0]]]
        for edge, op in enumerate(ops[1:]):
            if self.fuse_edges[edge]:
                groups[-1].append(op)
            else:
                groups.append([op])
        return groups

    def group_binding(self, workload: Workload,
                      group_index: int) -> Binding:
        """Binding of a group: its first fused edge's binding."""
        ops = list(workload.operators)
        start = 0
        for g in range(group_index):
            start += len(self.groups(workload)[g])
        # Edge indices inside the group start at `start`.
        groups = self.groups(workload)
        if len(groups[group_index]) == 1:
            return Binding.SEQ
        return self.bindings[start]

    @staticmethod
    def random(workload: Workload, rng: random.Random) -> "Genome":
        n = max(0, len(workload.operators) - 1)
        return Genome(
            fuse_edges=tuple(rng.random() < 0.5 for _ in range(n)),
            bindings=tuple(rng.choice(EDGE_BINDINGS) for _ in range(n)))

    @staticmethod
    def unfused(workload: Workload) -> "Genome":
        n = max(0, len(workload.operators) - 1)
        return Genome((False,) * n, (Binding.SEQ,) * n)

    @staticmethod
    def fully_fused(workload: Workload,
                    binding: Binding = Binding.SHAR) -> "Genome":
        n = max(0, len(workload.operators) - 1)
        return Genome((True,) * n, (binding,) * n)

    # ------------------------------------------------------------------
    def crossover(self, other: "Genome", rng: random.Random) -> "Genome":
        """Single-point crossover over the edge tables."""
        n = len(self.fuse_edges)
        if n == 0:
            return self
        cut = rng.randrange(n + 1)
        return Genome(self.fuse_edges[:cut] + other.fuse_edges[cut:],
                      self.bindings[:cut] + other.bindings[cut:])

    def mutate(self, rng: random.Random, rate: float = 0.25) -> "Genome":
        """Flip fusion bits / re-draw bindings with probability ``rate``."""
        edges = list(self.fuse_edges)
        bindings = list(self.bindings)
        for i in range(len(edges)):
            if rng.random() < rate:
                edges[i] = not edges[i]
            if rng.random() < rate:
                bindings[i] = rng.choice(EDGE_BINDINGS)
        return Genome(tuple(edges), tuple(bindings))

    # ------------------------------------------------------------------
    def encode(self) -> Dict[str, list]:
        """JSON-safe encoding — ledger manifests carry this so a
        recorded champion can be rebuilt into a tree later
        (``repro explain --run``)."""
        return {"fuse_edges": [bool(e) for e in self.fuse_edges],
                "bindings": [b.value for b in self.bindings]}

    @staticmethod
    def from_encoding(data: Mapping[str, Sequence]) -> "Genome":
        """Inverse of :meth:`encode`; raises :class:`MappingError` on a
        malformed payload."""
        try:
            return Genome(
                fuse_edges=tuple(bool(e) for e in data["fuse_edges"]),
                bindings=tuple(Binding(b) for b in data["bindings"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise MappingError(f"bad genome encoding {data!r}: {exc}")

    def describe(self, workload: Workload) -> str:
        parts = []
        for group_idx, group in enumerate(self.groups(workload)):
            names = "+".join(op.name for op in group)
            if len(group) > 1:
                names = (f"{self.group_binding(workload, group_idx).value}"
                         f"({names})")
            parts.append(names)
        return " ; ".join(parts)


# ----------------------------------------------------------------------
# Generic tree construction
# ----------------------------------------------------------------------
def shared_tileable_dims(workload: Workload,
                         group: Sequence[Operator]) -> List[str]:
    """Dims a fusion group may legally tile at its fusion node.

    A dim qualifies when every operator in the group declares it and the
    §4.1 reduction rule allows it: it must not be a reduction dim of a
    non-associative producer whose output is consumed inside the group.
    """
    if not group:
        return []
    common = set(group[0].dims)
    for op in group[1:]:
        common &= set(op.dims)
    names_in_group = {op.name for op in group}
    for op in group:
        if op.kind in ASSOCIATIVE_KINDS:
            continue
        consumed_inside = any(
            c.name in names_in_group
            for c in workload.consumers(op.output.tensor.name))
        if consumed_inside:
            common -= op.reduction_dims
    sizes = group[-1].dims
    # Tie-break equal-sized dims by name: ``common`` is a set, so sorting
    # by size alone would leave ties in hash order, making tree
    # construction depend on PYTHONHASHSEED across processes.
    return sorted((d for d in common if sizes.get(d, 1) > 1),
                  key=lambda d: (-sizes[d], d))


def genome_factor_space(workload: Workload, genome: Genome,
                        max_dims_per_group: int = 3) -> FactorSpace:
    """The tiling-factor space the MCTS explores for one genome."""
    choices: Dict[str, List[int]] = {}
    for gi, group in enumerate(genome.groups(workload)):
        dims = shared_tileable_dims(workload, group)[:max_dims_per_group]
        sizes = group[-1].dims
        for d in dims:
            choices[f"g{gi}_{d}"] = _ladder(sizes[d])
    return FactorSpace(choices)


def _generic_leaf(op: Operator, budget: int) -> Tuple[Dict[str, int],
                                                      Dict[str, int]]:
    """Heuristic PE tile: spread the two largest output dims spatially."""
    out_dims = [d for d in op.dims if d not in op.reduction_dims]
    out_dims.sort(key=lambda d: -op.dims[d])
    sp: Dict[str, int] = {}
    remaining = budget
    for d in out_dims[:2]:
        ext = min(op.dims[d], max(1, int(math.sqrt(remaining))
                                  if not sp else remaining))
        if ext > 1:
            sp[d] = ext
            remaining = max(1, remaining // ext)
    tp = {d: op.dims[d] for d in op.reduction_dims if op.dims[d] > 1}
    return sp, tp


def _generic_chain(op: Operator, tile: Mapping[str, int], budget: int,
                   level: int) -> OpTile:
    sp, tp = _generic_leaf(op, budget)
    leaf_loops: List[Loop] = []
    for d, n in tp.items():
        leaf_loops.append(temporal(d, n, 1))
    for d, n in sp.items():
        leaf_loops.append(spatial(d, n, 1))
    leaf = OpTile(op, leaf_loops, level=0)
    mid: List[Loop] = []
    for d, size in op.dims.items():
        want = min(size, tile.get(d, size))
        ext = sp.get(d, 1) * tp.get(d, 1)
        count = _ceil(want, ext)
        if count > 1:
            mid.append(temporal(d, count, ext))
    return OpTile(op, mid, level=level, child=leaf)


def build_genome_tree(workload: Workload, arch: Architecture,
                      genome: Genome,
                      factors: Mapping[str, int]) -> AnalysisTree:
    """Construct the analysis tree for a genome plus tiling factors.

    Fusion groups become fusion nodes at the outermost on-chip level with
    loops over their shared tileable dims (factor ``g{i}_{dim}``);
    singleton groups become plain operator chains.  Groups are children
    of a Seq root at the DRAM level.  All tiling is imperfect (ceil), so
    any factor assignment yields a structurally valid tree.
    """
    top_level = arch.num_levels - 2
    units = arch.level(1).fanout
    budget = max(4, arch.pe_count // units)
    vector_budget = max(2, arch.vector_pe_count // units)
    group_nodes: List[TileNode] = []
    for gi, group in enumerate(genome.groups(workload)):
        binding = genome.group_binding(workload, gi)
        dims = shared_tileable_dims(workload, group)[:3]
        sizes = group[-1].dims
        tile: Dict[str, int] = {}
        loops: List[Loop] = []
        spatial_budget = units
        for d in dims:
            size = sizes[d]
            step = min(size, int(factors.get(f"g{gi}_{d}", size)))
            tile[d] = step
            blocks = _ceil(size, step)
            if spatial_budget > 1 and blocks > 1:
                split = min(spatial_budget, blocks)
                per = _ceil(blocks, split)
                loops.append(spatial(d, split, per * step))
                blocks = per
                spatial_budget = max(1, spatial_budget // split)
            if blocks > 1:
                loops.append(temporal(d, blocks, step))
        pipe = binding is Binding.PIPE and len(group) > 1
        mac_chains = sum(1 for op in group if op.kind == "mac") or 1
        vec_chains = sum(1 for op in group if op.kind != "mac") or 1

        def chain_budget(op):
            if op.kind == "mac":
                return max(4, budget // (mac_chains if pipe else 1))
            return max(2, vector_budget // (vec_chains if pipe else 1))

        if len(group) == 1:
            op = group[0]
            chain = _generic_chain(op, tile, chain_budget(op), level=1)
            top_loops = [lp for lp in loops if lp.dim in op.dims]
            group_nodes.append(OpTile(op, top_loops, level=top_level,
                                      child=chain))
        else:
            children = [_generic_chain(op, tile, chain_budget(op), level=1)
                        for op in group]
            group_nodes.append(FusionNode(loops, level=top_level,
                                          children=children,
                                          binding=binding,
                                          name=f"group{gi}"))
    if len(group_nodes) == 1 and isinstance(group_nodes[0], FusionNode):
        root: TileNode = group_nodes[0]
    else:
        root = FusionNode([], level=arch.dram_index, children=group_nodes,
                          binding=Binding.SEQ, name="root")
    return AnalysisTree(workload, root,
                        name=f"genome[{genome.describe(workload)}]")
