"""Genetic exploration of the ordering/binding plane (§6).

The GA maintains a population of :class:`~repro.mapper.encoding.Genome`
candidates (compute ordering + resource binding).  Each generation, every
genome's tiling factors are tuned by a small MCTS run (§6, Fig. 7c), the
resulting cost is the genome's fitness, the top-K genomes survive, and
offspring are produced by single-point crossover plus mutation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..arch import Architecture
from ..ir import Workload
from .cost import INFEASIBLE, Cost
from .encoding import Genome, build_genome_tree, genome_factor_space
from .mcts import MCTSTuner

TreeEvaluator = Callable[["Genome", Dict[str, int]], Cost]


@dataclass
class GenerationStats:
    """Best/mean fitness of one GA generation (Fig. 9b/9c traces)."""

    generation: int
    best_cost: Cost
    mean_cost: Cost
    best_genome: Genome
    best_factors: Dict[str, int] = field(default_factory=dict)


class GeneticExplorer:
    """GA over genomes with per-candidate MCTS factor tuning."""

    def __init__(self, workload: Workload,
                 evaluate: TreeEvaluator,
                 population: int = 12, survivors: int = 4,
                 mcts_samples: int = 40, mutation_rate: float = 0.25,
                 seed: int = 0):
        if survivors < 1 or survivors > population:
            raise ValueError("survivors must be in [1, population]")
        self.workload = workload
        self.evaluate = evaluate
        self.population_size = population
        self.survivors = survivors
        self.mcts_samples = mcts_samples
        self.mutation_rate = mutation_rate
        self.rng = random.Random(seed)
        self.stats: List[GenerationStats] = []
        self.best: Optional[Tuple[Cost, Genome, Dict[str, int]]] = None

    # ------------------------------------------------------------------
    def _initial_population(self) -> List[Genome]:
        seeds = [Genome.unfused(self.workload),
                 Genome.fully_fused(self.workload)]
        while len(seeds) < self.population_size:
            seeds.append(Genome.random(self.workload, self.rng))
        return seeds[:self.population_size]

    def _fitness(self, genome: Genome) -> Tuple[Cost, Dict[str, int]]:
        space = genome_factor_space(self.workload, genome)
        tuner = MCTSTuner(space,
                          lambda point: self.evaluate(genome, point),
                          seed=self.rng.randrange(1 << 30))
        point, cost = tuner.search(self.mcts_samples)
        return cost, (point or {})

    # ------------------------------------------------------------------
    def run(self, generations: int) -> Tuple[Genome, Dict[str, int], Cost]:
        """Evolve for ``generations``; returns the champion found."""
        population = self._initial_population()
        for gen in range(generations):
            with obs.span("ga.generation", "mapper", generation=gen):
                scored: List[Tuple[Cost, Genome, Dict[str, int]]] = []
                for genome in population:
                    cost, factors = self._fitness(genome)
                    scored.append((cost, genome, factors))
                    if self.best is None or cost < self.best[0]:
                        self.best = (cost, genome, factors)
                scored.sort(key=lambda item: item[0])
                finite = [c for c, _, _ in scored if c != INFEASIBLE]
                mean = (sum(finite) / len(finite)) if finite else INFEASIBLE
                self.stats.append(GenerationStats(
                    generation=gen, best_cost=scored[0][0], mean_cost=mean,
                    best_genome=scored[0][1], best_factors=scored[0][2]))
                parents = [g for _, g, _ in scored[:self.survivors]]
                population = list(parents)
                while len(population) < self.population_size:
                    mother = self.rng.choice(parents)
                    father = self.rng.choice(parents)
                    child = mother.crossover(father, self.rng)
                    population.append(child.mutate(self.rng,
                                                   self.mutation_rate))
            obs.count("ga.generations")
            if self.best is not None and self.best[0] != INFEASIBLE:
                obs.gauge("mapper.best_cost", self.best[0])
        assert self.best is not None
        cost, genome, factors = self.best
        return genome, factors, cost
