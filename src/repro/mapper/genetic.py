"""Genetic exploration of the ordering/binding plane (§6).

The GA maintains a population of :class:`~repro.mapper.encoding.Genome`
candidates (compute ordering + resource binding).  Each generation, every
*new* genome's tiling factors are tuned by a small MCTS run (§6, Fig. 7c),
the resulting cost is the genome's fitness, the top-K genomes survive, and
offspring are produced by single-point crossover plus mutation.

Fitness is carried forward: a genome tuned in an earlier generation
(surviving elites, re-created offspring) keeps its ``(cost, factors)``
instead of being re-tuned from scratch — re-tuning was pure waste and the
source of the non-monotone per-generation traces that
``MapperResult.normalized_trace`` has to cummin around.  Set
``reuse_elites=False`` to restore the old re-tune-everything behaviour
(the perf benchmark's baseline).

Tuning itself is pluggable: pass ``tuner`` (a batch callable, e.g.
:meth:`repro.engine.EvaluationEngine.tune_population`) to evaluate a whole
generation through the memoized/parallel evaluation engine; without it the
GA falls back to in-process per-genome MCTS over the ``evaluate`` callback.
Per-genome MCTS seeds are drawn up front from the generation RNG, so the
outcome is deterministic regardless of how the batch is executed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..arch import Architecture
from ..ir import Workload
from ..obs import events
from .cost import INFEASIBLE, Cost
from .encoding import Genome, build_genome_tree, genome_factor_space
from .mcts import MCTSTuner

TreeEvaluator = Callable[["Genome", Dict[str, int]], Cost]
#: Batch fitness: (genomes, per-genome MCTS seeds, samples) -> [(cost,
#: factors)] in input order.
BatchTuner = Callable[[Sequence[Genome], Sequence[int], int],
                      List[Tuple[Cost, Dict[str, int]]]]


@dataclass
class GenerationStats:
    """Best/mean fitness of one GA generation (Fig. 9b/9c traces)."""

    generation: int
    best_cost: Cost
    mean_cost: Cost
    best_genome: Genome
    best_factors: Dict[str, int] = field(default_factory=dict)


class GeneticExplorer:
    """GA over genomes with per-candidate MCTS factor tuning."""

    def __init__(self, workload: Workload,
                 evaluate: Optional[TreeEvaluator] = None,
                 population: int = 12, survivors: int = 4,
                 mcts_samples: int = 40, mutation_rate: float = 0.25,
                 seed: int = 0, tuner: Optional[BatchTuner] = None,
                 reuse_elites: bool = True):
        if survivors < 1 or survivors > population:
            raise ValueError("survivors must be in [1, population]")
        if evaluate is None and tuner is None:
            raise ValueError("need an evaluate callback or a batch tuner")
        self.workload = workload
        self.evaluate = evaluate
        self.tuner = tuner
        self.reuse_elites = reuse_elites
        self.population_size = population
        self.survivors = survivors
        self.mcts_samples = mcts_samples
        self.mutation_rate = mutation_rate
        self.rng = random.Random(seed)
        self.stats: List[GenerationStats] = []
        self.best: Optional[Tuple[Cost, Genome, Dict[str, int]]] = None

    # ------------------------------------------------------------------
    def _initial_population(self) -> List[Genome]:
        seeds = [Genome.unfused(self.workload),
                 Genome.fully_fused(self.workload)]
        while len(seeds) < self.population_size:
            seeds.append(Genome.random(self.workload, self.rng))
        return seeds[:self.population_size]

    def _fitness(self, genome: Genome,
                 seed: int) -> Tuple[Cost, Dict[str, int]]:
        space = genome_factor_space(self.workload, genome)
        tuner = MCTSTuner(space,
                          lambda point: self.evaluate(genome, point),
                          seed=seed)
        point, cost = tuner.search(self.mcts_samples)
        return cost, (point or {})

    def _tune_batch(self, genomes: Sequence[Genome], seeds: Sequence[int]
                    ) -> List[Tuple[Cost, Dict[str, int]]]:
        if self.tuner is not None:
            return self.tuner(genomes, seeds, self.mcts_samples)
        return [self._fitness(g, s) for g, s in zip(genomes, seeds)]

    # ------------------------------------------------------------------
    def run(self, generations: int) -> Tuple[Genome, Dict[str, int], Cost]:
        """Evolve for ``generations``; returns the champion found."""
        population = self._initial_population()
        scores: Dict[Genome, Tuple[Cost, Dict[str, int]]] = {}
        for gen in range(generations):
            with obs.span("ga.generation", "mapper", generation=gen):
                pending: List[Genome] = []
                seen = set()
                for genome in population:
                    if genome not in scores and genome not in seen:
                        pending.append(genome)
                        seen.add(genome)
                reused = len(population) - len(pending)
                if reused:
                    obs.count("ga.fitness_reused", reused)
                seeds = [self.rng.randrange(1 << 30) for _ in pending]
                for genome, outcome in zip(pending,
                                           self._tune_batch(pending, seeds)):
                    scores[genome] = outcome
                scored = [(scores[g][0], g, scores[g][1])
                          for g in population]
                for cost, genome, factors in scored:
                    if self.best is None or cost < self.best[0]:
                        self.best = (cost, genome, factors)
                scored.sort(key=lambda item: item[0])
                finite = [c for c, _, _ in scored if c != INFEASIBLE]
                mean = (sum(finite) / len(finite)) if finite else INFEASIBLE
                self.stats.append(GenerationStats(
                    generation=gen, best_cost=scored[0][0], mean_cost=mean,
                    best_genome=scored[0][1], best_factors=scored[0][2]))
                if events.is_enabled():
                    events.emit(
                        "ga.generation", generation=gen,
                        best_cost=events.jsonable_cost(scored[0][0]),
                        mean_cost=events.jsonable_cost(mean),
                        evaluated=len(pending), reused=reused)
                    events.emit(
                        "search.progress", phase="ga", step=gen + 1,
                        total=generations,
                        best_cost=events.jsonable_cost(self.best[0]))
                parents = [g for _, g, _ in scored[:self.survivors]]
                if not self.reuse_elites:
                    # Old behaviour: survivors are re-tuned next generation.
                    scores = {}
                population = list(parents)
                while len(population) < self.population_size:
                    mother = self.rng.choice(parents)
                    father = self.rng.choice(parents)
                    child = mother.crossover(father, self.rng)
                    population.append(child.mutate(self.rng,
                                                   self.mutation_rate))
            obs.count("ga.generations")
            if self.best is not None and self.best[0] != INFEASIBLE:
                obs.gauge("mapper.best_cost", self.best[0])
        assert self.best is not None
        cost, genome, factors = self.best
        return genome, factors, cost
