"""The TileFlow mapper: GA over trees + MCTS over tiling factors (§6).

Two entry points:

* :class:`TileFlowMapper` — full 3D-space exploration: a genetic algorithm
  proposes ordering/binding genomes, MCTS tunes each genome's tiling
  factors, and the TileFlow model scores every complete mapping
  (Fig. 9b/9c).
* :func:`tune_template` — tiling-factor-only tuning of a *named* dataflow
  template (Fig. 9a and the fair-comparison protocol of §7.3, which tunes
  every baseline dataflow's factors with the same mapper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..analysis import EvaluationResult, TileFlowModel
from ..arch import Architecture
from ..ir import Workload
from ..tile.tree import AnalysisTree
from .cost import INFEASIBLE, Cost, latency_cost
from .encoding import Genome, build_genome_tree
from .factors import FactorSpace
from .genetic import GenerationStats, GeneticExplorer
from .mcts import MCTSTuner

TemplateFn = Callable[..., AnalysisTree]


@dataclass
class MapperResult:
    """Outcome of an exploration run."""

    best_tree: AnalysisTree
    best_result: EvaluationResult
    best_cost: Cost
    best_factors: Dict[str, int]
    #: Best-so-far cost per GA generation or per MCTS sample.
    trace: List[Cost] = field(default_factory=list)
    best_genome: Optional[Genome] = None

    def normalized_trace(self) -> List[float]:
        """Trace normalized so the final (best) value is 1 (Fig. 9)."""
        finite = [c for c in self.trace if c != INFEASIBLE]
        if not finite:
            return [0.0 for _ in self.trace]
        best = min(finite)
        return [best / c if c != INFEASIBLE and c > 0 else 0.0
                for c in self.trace]


class TileFlowMapper:
    """Full 3D design-space exploration for one workload/architecture."""

    def __init__(self, workload: Workload, arch: Architecture,
                 respect_memory: bool = True, seed: int = 0):
        self.workload = workload
        self.arch = arch
        self.model = TileFlowModel(arch)
        self.respect_memory = respect_memory
        self.seed = seed

    # ------------------------------------------------------------------
    def _evaluate_genome(self, genome: Genome,
                         factors: Dict[str, int]) -> Cost:
        tree = build_genome_tree(self.workload, self.arch, genome, factors)
        result = self.model.evaluate(tree)
        return latency_cost(result, self.respect_memory)

    def explore(self, generations: int = 8, population: int = 12,
                mcts_samples: int = 30) -> MapperResult:
        """Run the combined GA+MCTS search (§6)."""
        explorer = GeneticExplorer(
            self.workload, self._evaluate_genome,
            population=population, mcts_samples=mcts_samples,
            seed=self.seed)
        genome, factors, cost = explorer.run(generations)
        tree = build_genome_tree(self.workload, self.arch, genome, factors)
        result = self.model.evaluate(tree)
        return MapperResult(
            best_tree=tree, best_result=result, best_cost=cost,
            best_factors=factors,
            trace=[s.best_cost for s in explorer.stats],
            best_genome=genome)


def tune_template(template: TemplateFn, space: Mapping[str, List[int]],
                  workload: Workload, arch: Architecture,
                  samples: int = 100, respect_memory: bool = True,
                  seed: int = 0) -> MapperResult:
    """Tune a named dataflow template's tiling factors with MCTS.

    This is the §7.3 fair-comparison protocol: every dataflow (FLAT,
    Chimera, Fused-Layer, ...) gets its tiling factors chosen by
    TileFlow's own mapper before dataflows are compared.
    """
    model = TileFlowModel(arch)
    cache: Dict[Tuple[Tuple[str, int], ...], EvaluationResult] = {}

    def evaluate(point: Dict[str, int]) -> Cost:
        key = tuple(sorted(point.items()))
        result = cache.get(key)
        if result is None:
            tree = template(workload, arch, point)
            result = model.evaluate(tree)
            cache[key] = result
        return latency_cost(result, respect_memory)

    factor_space = FactorSpace({k: list(v) for k, v in space.items()})
    tuner = MCTSTuner(factor_space, evaluate, seed=seed)
    point, cost = tuner.search(samples)
    factors = point or factor_space.default_point()
    tree = template(workload, arch, factors)
    result = model.evaluate(tree)
    return MapperResult(best_tree=tree, best_result=result, best_cost=cost,
                        best_factors=factors, trace=list(tuner.history))
