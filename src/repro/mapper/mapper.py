"""The TileFlow mapper: GA over trees + MCTS over tiling factors (§6).

Two entry points:

* :class:`TileFlowMapper` — full 3D-space exploration: a genetic algorithm
  proposes ordering/binding genomes, MCTS tunes each genome's tiling
  factors, and the TileFlow model scores every complete mapping
  (Fig. 9b/9c).
* :func:`tune_template` — tiling-factor-only tuning of a *named* dataflow
  template (Fig. 9a and the fair-comparison protocol of §7.3, which tunes
  every baseline dataflow's factors with the same mapper).

Both run on the :class:`~repro.engine.EvaluationEngine` hot path: every
complete mapping is canonically signed and memoized, obviously infeasible
points are rejected by a cheap pre-screen before the full analysis, and
``workers > 1`` evaluates a GA generation's population concurrently with
deterministic, worker-count-independent results (docs/PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from .. import obs
from ..analysis import EvaluationResult, TileFlowModel
from ..arch import Architecture
from ..ir import Workload
from ..tile.tree import AnalysisTree
from .cost import INFEASIBLE, Cost, latency_cost
from .encoding import Genome, build_genome_tree
from .factors import FactorSpace
from .genetic import GenerationStats, GeneticExplorer
from .mcts import MCTSTuner

TemplateFn = Callable[..., AnalysisTree]


@dataclass
class MapperResult:
    """Outcome of an exploration run."""

    best_tree: AnalysisTree
    best_result: EvaluationResult
    best_cost: Cost
    best_factors: Dict[str, int]
    #: Best-so-far cost per GA generation or per MCTS sample.
    trace: List[Cost] = field(default_factory=list)
    best_genome: Optional[Genome] = None
    #: Per-run metric deltas (``MetricsScope.delta()``) when metrics were
    #: enabled during the search; None otherwise.  Deliberately *not*
    #: part of :meth:`to_dict` — result payloads stay byte-identical
    #: across worker counts and observability settings.
    run_metrics: Optional[Dict[str, Dict[str, object]]] = None

    def cummin_trace(self) -> List[Cost]:
        """Best-so-far (monotone non-increasing) view of the raw trace."""
        out: List[Cost] = []
        best = INFEASIBLE
        for cost in self.trace:
            if cost < best:
                best = cost
            out.append(best)
        return out

    def normalized_trace(self) -> List[float]:
        """Best-so-far trace normalized so the final value is 1 (Fig. 9).

        The raw trace is not guaranteed monotone (per-generation best
        costs can regress when survivors' MCTS re-tuning gets a worse
        seed — only possible with ``reuse_elites=False``), so a
        best-so-far cummin is applied first; the final cummin entry is
        then the global best by construction.
        """
        trace = self.cummin_trace()
        finite = [c for c in trace if c != INFEASIBLE]
        if not finite:
            return [0.0 for _ in trace]
        best = finite[-1]
        return [best / c if c != INFEASIBLE and c > 0 else 0.0
                for c in trace]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (mirrors
        :meth:`EvaluationResult.to_dict`); ``INFEASIBLE`` costs map to
        ``None`` so the output is strict JSON."""
        def cost_or_none(cost: Cost):
            return None if cost == INFEASIBLE else cost

        genome = None
        if self.best_genome is not None:
            genome = self.best_genome.describe(self.best_tree.workload)
        return {
            "tree": self.best_tree.name,
            "best_cost": cost_or_none(self.best_cost),
            "best_factors": dict(self.best_factors),
            "best_genome": genome,
            "trace": [cost_or_none(c) for c in self.trace],
            "best_so_far_trace": [cost_or_none(c)
                                  for c in self.cummin_trace()],
            "normalized_trace": self.normalized_trace(),
            "result": self.best_result.to_dict(),
        }


class TileFlowMapper:
    """Full 3D design-space exploration for one workload/architecture.

    ``workers``, ``cache_size``, and ``prescreen`` configure the
    evaluation engine backing the search; alternatively pass a
    pre-built ``engine`` (it is then shared and *not* shut down by
    :meth:`explore`, so its memo cache persists across searches).
    """

    def __init__(self, workload: Workload, arch: Architecture,
                 respect_memory: bool = True, seed: int = 0,
                 workers: int = 1, cache_size: Optional[int] = None,
                 prescreen: bool = True, incremental: bool = True,
                 batched: bool = True, engine=None):
        self.workload = workload
        self.arch = arch
        self.model = TileFlowModel(arch)
        self.respect_memory = respect_memory
        self.seed = seed
        self.workers = workers
        self.cache_size = cache_size
        self.prescreen = prescreen
        #: Incremental subtree re-analysis across mapper moves (purely a
        #: performance knob; trajectories are unchanged).
        self.incremental = incremental
        #: Batched cohort pricing inside the engine's MCTS factor tuner
        #: (also purely a performance knob — results are bit-identical).
        self.batched = batched
        self._engine = engine

    # ------------------------------------------------------------------
    def _make_engine(self):
        from ..engine import DEFAULT_CACHE_SIZE, EvaluationEngine
        cache_size = (DEFAULT_CACHE_SIZE if self.cache_size is None
                      else self.cache_size)
        return EvaluationEngine(
            self.workload, self.arch, respect_memory=self.respect_memory,
            workers=self.workers, cache_size=cache_size,
            prescreen=self.prescreen, incremental=self.incremental,
            batched=self.batched)

    def _evaluate_genome(self, genome: Genome,
                         factors: Dict[str, int]) -> Cost:
        """Direct (engine-less) evaluation; kept for custom callers.

        Runs the pipeline only as far as the latency cost needs: the
        energy pass is skipped, and candidates with resource violations
        stop at the resource pass when violations mean rejection.
        """
        tree = build_genome_tree(self.workload, self.arch, genome, factors)
        result = self.model.evaluate(
            tree, until="latency",
            stop_on_violation=self.respect_memory)
        cost = latency_cost(result, self.respect_memory)
        obs.count("mapper.evaluations")
        if cost == INFEASIBLE:
            obs.count("mapper.infeasible")
        return cost

    def explore(self, generations: int = 8, population: int = 12,
                mcts_samples: int = 30,
                reuse_elites: bool = True) -> MapperResult:
        """Run the combined GA+MCTS search (§6)."""
        engine = self._engine if self._engine is not None else (
            self._make_engine())
        # Scope the (process-global) metrics registry so run_metrics
        # reports this search alone, not everything since obs.enable().
        scope = obs.metrics_registry().scope()
        try:
            with scope, obs.span("mapper.explore", "mapper",
                                 workload=self.workload.name,
                                 arch=self.arch.name):
                explorer = GeneticExplorer(
                    self.workload,
                    population=population, mcts_samples=mcts_samples,
                    seed=self.seed, tuner=engine.tune_population,
                    reuse_elites=reuse_elites)
                genome, factors, cost = explorer.run(generations)
                tree = build_genome_tree(self.workload, self.arch, genome,
                                         factors)
                result = engine.evaluate_genome(genome, factors, full=True)
        finally:
            if self._engine is None:
                engine.shutdown()
        return MapperResult(
            best_tree=tree, best_result=result, best_cost=cost,
            best_factors=factors,
            trace=[s.best_cost for s in explorer.stats],
            best_genome=genome,
            run_metrics=scope.delta() if obs.metrics.is_enabled() else None)


def tune_template(template: TemplateFn, space: Mapping[str, List[int]],
                  workload: Workload, arch: Architecture,
                  samples: int = 100, respect_memory: bool = True,
                  seed: int = 0, engine=None) -> MapperResult:
    """Tune a named dataflow template's tiling factors with MCTS.

    This is the §7.3 fair-comparison protocol: every dataflow (FLAT,
    Chimera, Fused-Layer, ...) gets its tiling factors chosen by
    TileFlow's own mapper before dataflows are compared.

    Evaluations are memoized by the evaluation engine (pass ``engine``
    to share one — and its cache — across several tuning runs); the
    champion's result is served from that cache instead of being
    re-evaluated at the end.
    """
    if engine is None:
        from ..engine import EvaluationEngine
        engine = EvaluationEngine(workload, arch,
                                  respect_memory=respect_memory)

    def evaluate(point: Dict[str, int]) -> Cost:
        return engine.cost_of(engine.evaluate_template(template, point))

    factor_space = FactorSpace({k: list(v) for k, v in space.items()})
    tuner = MCTSTuner(factor_space, evaluate, seed=seed)
    scope = obs.metrics_registry().scope()
    with scope, obs.span("mapper.tune_template", "mapper",
                         workload=workload.name, arch=arch.name):
        point, cost = tuner.search(samples)
    factors = point or factor_space.default_point()
    tree = template(workload, arch, factors)
    result = engine.evaluate_template(template, factors, full=True)
    return MapperResult(best_tree=tree, best_result=result, best_cost=cost,
                        best_factors=factors, trace=list(tuner.history),
                        run_metrics=(scope.delta()
                                     if obs.metrics.is_enabled() else None))
