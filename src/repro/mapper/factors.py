"""Tiling-factor utilities shared by the mapper and the baselines."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..dataflows.builders import divisors, floor_divisor, near_divisor


def factorizations(n: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ordered factorizations of ``n`` into ``parts`` positive factors.

    Used by the polyhedron baseline to enumerate perfect tilings of a loop
    over the memory levels (the Fig. 8a experiment enumerates 1152 matmul
    mappings this way).
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if parts == 1:
        yield (n,)
        return
    for d in divisors(n):
        for rest in factorizations(n // d, parts - 1):
            yield (d,) + rest


def count_factorizations(n: int, parts: int) -> int:
    """Number of ordered factorizations (size of a perfect tiling space)."""
    return sum(1 for _ in factorizations(n, parts))


class FactorSpace:
    """A named, finite space of tiling-factor choices.

    Wraps ``{factor name: [choices]}`` with deterministic ordering, point
    indexing, and neighborhood enumeration — the substrate both the MCTS
    and the random-search baseline operate on.
    """

    def __init__(self, choices: Dict[str, Sequence[int]]):
        self.names: List[str] = sorted(choices)
        self.choices: Dict[str, List[int]] = {
            name: list(choices[name]) for name in self.names}
        for name, values in self.choices.items():
            if not values:
                raise ValueError(f"factor {name!r} has no choices")

    @property
    def size(self) -> int:
        n = 1
        for values in self.choices.values():
            n *= len(values)
        return n

    def default_point(self) -> Dict[str, int]:
        """Middle-of-the-road assignment (median choice per factor)."""
        return {name: values[len(values) // 2]
                for name, values in self.choices.items()}

    def point_at(self, indices: Sequence[int]) -> Dict[str, int]:
        return {name: self.choices[name][i]
                for name, i in zip(self.names, indices)}

    def random_point(self, rng) -> Dict[str, int]:
        return {name: rng.choice(values)
                for name, values in self.choices.items()}

    def neighbors(self, point: Dict[str, int]) -> Iterator[Dict[str, int]]:
        """Points differing by one step in one factor."""
        for name in self.names:
            values = self.choices[name]
            idx = values.index(point[name])
            for j in (idx - 1, idx + 1):
                if 0 <= j < len(values):
                    neighbor = dict(point)
                    neighbor[name] = values[j]
                    yield neighbor

    def __repr__(self) -> str:
        dims = ", ".join(f"{n}:{len(v)}" for n, v in self.choices.items())
        return f"FactorSpace({dims}; size={self.size})"
