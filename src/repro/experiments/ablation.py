"""Ablation studies of the model's design choices (DESIGN.md inventory).

Quantifies what each analysis refinement contributes by re-evaluating the
dataflow comparison with the refinement disabled:

* **Seq eviction** (§5.1.2) — without it, sequentially bound siblings
  keep each other's data resident, under-predicting the DRAM traffic of
  eviction-prone dataflows.
* **Read-modify-write accounting** — without it, partial-sum writebacks
  are free, under-predicting mappings with outer reduction loops.
* **Pipelining** (Pipe vs Shar binding) — re-binding the TileFlow
  dataflow's fusion node to ``Shar`` isolates how much of its speedup
  comes from stage overlap rather than tiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from ..analysis import TileFlowModel
from ..arch import Architecture, edge, validation_accelerator
from ..dataflows import ATTENTION_DATAFLOWS
from ..tile.bindings import Binding
from ..tile.tree import FusionNode
from ..workloads import ATTENTION_SHAPES, attention_from_shape
from .report import format_table


@dataclass
class AblationRow:
    """One dataflow under full vs ablated models."""

    dataflow: str
    full_cycles: float
    full_dram: float
    ablated_cycles: float
    ablated_dram: float

    @property
    def dram_ratio(self) -> float:
        return (self.ablated_dram / self.full_dram
                if self.full_dram else 1.0)

    @property
    def cycle_ratio(self) -> float:
        return (self.ablated_cycles / self.full_cycles
                if self.full_cycles else 1.0)


@obs.traced()
def movement_rule_ablation(rule: str, shape_name: str = "Bert-S",
                           arch: Optional[Architecture] = None
                           ) -> List[AblationRow]:
    """Compare the full model vs the model without one movement rule.

    ``rule`` is "eviction" or "rmw".
    """
    if rule not in ("eviction", "rmw"):
        raise ValueError(f"unknown ablation rule {rule!r}")
    arch = arch or edge()
    workload = attention_from_shape(ATTENTION_SHAPES[shape_name])
    full = TileFlowModel(arch)
    ablated = TileFlowModel(arch,
                            model_eviction=(rule != "eviction"),
                            model_rmw=(rule != "rmw"))
    rows: List[AblationRow] = []
    for name, template in ATTENTION_DATAFLOWS.items():
        tree_a = template(workload, arch)
        tree_b = template(workload, arch)
        # The rows read cycles + DRAM words only — stop after latency.
        fr = full.evaluate(tree_a, until="latency")
        ar = ablated.evaluate(tree_b, until="latency")
        rows.append(AblationRow(
            dataflow=name,
            full_cycles=fr.latency_cycles, full_dram=fr.dram_words(),
            ablated_cycles=ar.latency_cycles, ablated_dram=ar.dram_words()))
    return rows


@obs.traced()
def binding_ablation(shape_name: str = "Bert-S",
                     arch: Optional[Architecture] = None
                     ) -> Dict[str, float]:
    """Isolate the pipelining benefit: TileFlow dataflow, Pipe vs Shar.

    Returns cycles under each binding; the ratio is the pure stage-overlap
    speedup at identical tiling.
    """
    arch = arch or edge()
    workload = attention_from_shape(ATTENTION_SHAPES[shape_name])
    model = TileFlowModel(arch)
    out: Dict[str, float] = {}
    for binding in (Binding.PIPE, Binding.SHAR, Binding.SEQ):
        tree = ATTENTION_DATAFLOWS["tileflow"](workload, arch)
        for node in tree.nodes():
            if isinstance(node, FusionNode) and len(node.children) > 1:
                node.binding = binding
        out[binding.value] = model.evaluate(
            tree, until="latency").latency_cycles
    return out


def format_rule_ablation(rule: str, rows: List[AblationRow]) -> str:
    body = [[r.dataflow, f"{r.full_dram:.4g}", f"{r.ablated_dram:.4g}",
             f"{r.dram_ratio:.3f}", f"{r.cycle_ratio:.3f}"]
            for r in rows]
    return format_table(
        f"Ablation: data-movement rule '{rule}' disabled",
        ["dataflow", "DRAM (full)", "DRAM (ablated)", "DRAM ratio",
         "cycle ratio"], body)


def format_binding_ablation(cycles: Dict[str, float]) -> str:
    base = cycles.get("Pipe", 1.0)
    body = [[name, f"{c:.4g}", f"{c / base:.2f}x"]
            for name, c in cycles.items()]
    return format_table("Ablation: TileFlow dataflow binding",
                        ["binding", "cycles", "vs Pipe"], body)
