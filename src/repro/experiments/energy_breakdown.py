"""Energy-breakdown experiment (Fig. 13).

Evaluates FLAT-RGran on the Edge accelerator with two L1 sizes (200 KB
and 1 MB) for the attention shapes and reports the MAC / Reg / L1 / DRAM
energy shares.  The paper's observation — larger SRAM raises per-access
cost so L1 dominates (80.1% at 1 MB vs 46.5% at 200 KB) — falls out of
the size-scaled SRAM energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..analysis import TileFlowModel
from ..arch import Architecture, edge, sram_access_energy_pj
from ..dataflows import ATTENTION_DATAFLOWS
from ..workloads import ATTENTION_SHAPES, attention_from_shape
from .report import format_table

KB = 1024

#: The two L1 capacities Fig. 13 compares.
L1_SIZES = (200 * KB, 1024 * KB)


@dataclass
class BreakdownResult:
    """Energy shares per (L1 size, shape)."""

    shares: Dict[int, Dict[str, Dict[str, float]]] = \
        field(default_factory=dict)

    def average(self, l1_size: int) -> Dict[str, float]:
        rows = list(self.shares.get(l1_size, {}).values())
        if not rows:
            return {}
        keys = rows[0].keys()
        return {k: sum(r.get(k, 0.0) for r in rows) / len(rows)
                for k in keys}


@obs.traced()
def energy_breakdown(shapes: Optional[Sequence[str]] = None,
                     dataflow: str = "flat_rgran",
                     l1_sizes: Sequence[int] = L1_SIZES,
                     base_arch: Optional[Architecture] = None
                     ) -> BreakdownResult:
    """Fig. 13: FLAT-RGran energy shares for two L1 sizes."""
    base_arch = base_arch or edge()
    shapes = shapes or tuple(n for n in ATTENTION_SHAPES
                             if not n.startswith(("T5", "XLM")))
    result = BreakdownResult()
    for l1 in l1_sizes:
        arch = base_arch.with_level(
            "L1", capacity_bytes=l1,
            read_energy_pj=sram_access_energy_pj(l1),
            write_energy_pj=sram_access_energy_pj(l1))
        model = TileFlowModel(arch)
        per_shape: Dict[str, Dict[str, float]] = {}
        for shape_name in shapes:
            workload = attention_from_shape(ATTENTION_SHAPES[shape_name])
            tree = ATTENTION_DATAFLOWS[dataflow](workload, arch)
            res = model.evaluate(tree)
            total = res.energy_pj or 1.0
            per_shape[shape_name] = {
                comp: pj / total
                for comp, pj in res.energy_breakdown_pj.items()}
        result.shares[l1] = per_shape
    return result


def format_breakdown(result: BreakdownResult) -> str:
    components = ("MAC", "Reg", "L1", "DRAM")
    rows = []
    for l1, per_shape in result.shares.items():
        for shape, shares in per_shape.items():
            rows.append([f"L1={l1 // KB}KB", shape]
                        + [f"{shares.get(c, 0.0):.1%}" for c in components])
        avg = result.average(l1)
        rows.append([f"L1={l1 // KB}KB", "average"]
                    + [f"{avg.get(c, 0.0):.1%}" for c in components])
    return format_table("Figure 13: FLAT-RGran energy breakdown on Edge",
                        ["config", "shape"] + list(components), rows)
