"""Shared reporting utilities for the experiment harness.

Every experiment returns plain data (lists/dicts of rows) plus a
``format_*`` helper producing the textual table/series the corresponding
paper figure reports.  These helpers keep that uniform.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 if empty)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize(values: Mapping[str, float],
              reference: Optional[str] = None) -> Dict[str, float]:
    """Values divided by a reference entry (first key if unspecified)."""
    keys = list(values)
    if not keys:
        return {}
    ref = values[reference if reference is not None else keys[0]]
    if ref == 0:
        return {k: 0.0 for k in keys}
    return {k: values[k] / ref for k in keys}


def r_squared(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Coefficient of determination of ``ys`` against ``xs`` (y = x fit).

    Matches the paper's Fig. 8a usage: how well the model's predictions
    track the reference along the identity line after a least-squares
    linear fit.
    """
    n = len(xs)
    if n < 2 or len(ys) != n:
        raise ValueError("need two equal-length series")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 1.0 if var_x == var_y else 0.0
    return (cov * cov) / (var_x * var_y)


def mean_abs_error(reference: Sequence[float],
                   predicted: Sequence[float]) -> float:
    """Mean absolute relative error of predictions vs a reference."""
    if len(reference) != len(predicted) or not reference:
        raise ValueError("need two equal-length non-empty series")
    total = 0.0
    for ref, pred in zip(reference, predicted):
        if ref == 0:
            continue
        total += abs(pred - ref) / abs(ref)
    return total / len(reference)


def format_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table (the bench harness prints these)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title,
             "  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  ".join("-" * w for w in widths)]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
