"""Sensitivity studies (§7.5): Fig. 14, Table 6, Table 7.

* :func:`bandwidth_sensitivity` — Fig. 14: sweep the Edge L1 bandwidth
  and report each conv dataflow's slow-down (L1 access latency over
  compute latency, floored at 1); the *suitable bandwidth* is the
  smallest value whose slow-down is ~1.
* :func:`pe_size_sweep` — Table 6: cycles of FLAT-RGran (baseline) and
  the TileFlow dataflow for PE arrays from 8x8 to 256x256.
* :func:`granularity_study` — Table 7: FLAT granularities plus TileFlow
  for T5 (batch 128) on Cloud under three scenarios (fixed factors /
  explored without memory limit / explored with memory limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..analysis import TileFlowModel
from ..arch import Architecture, cloud, edge
from ..dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                         attention_factor_space, conv_factor_space, flat)
from ..engine import EvaluationEngine
from ..mapper import tune_template
from ..workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                         attention_from_shape, conv_chain_from_shape,
                         self_attention)
from .report import format_table

MB = 1024 * 1024


# ----------------------------------------------------------------------
# Fig. 14
# ----------------------------------------------------------------------
@dataclass
class BandwidthSweep:
    """Slow-down traces per dataflow over the L1 bandwidth sweep."""

    shape: str
    bandwidths_gbs: List[float]
    slowdown: Dict[str, List[float]] = field(default_factory=dict)

    def suitable_bandwidth(self, dataflow: str,
                           tolerance: float = 1.05) -> Optional[float]:
        """Smallest swept bandwidth whose slow-down is ~1 (§7.5)."""
        for bw, s in zip(self.bandwidths_gbs, self.slowdown[dataflow]):
            if s <= tolerance:
                return bw
        return None


@obs.traced()
def bandwidth_sensitivity(shape_name: str = "CC1",
                          bandwidths_gbs: Optional[Sequence[float]] = None,
                          dataflows: Sequence[str] = ("fused_layer", "isos",
                                                      "tileflow"),
                          base_arch: Optional[Architecture] = None
                          ) -> BandwidthSweep:
    """Fig. 14: L1 bandwidth sweep for one convolution chain on Edge."""
    base_arch = base_arch or edge()
    if bandwidths_gbs is None:
        bandwidths_gbs = [1, 30, 60, 120, 240, 360, 480, 600, 720, 840,
                          960, 1080, 1200]
    workload = conv_chain_from_shape(CONV_CHAIN_SHAPES[shape_name])
    sweep = BandwidthSweep(shape=shape_name,
                           bandwidths_gbs=list(bandwidths_gbs))
    l1_index = base_arch.level_index("L1")
    for name in dataflows:
        trace: List[float] = []
        for bw in bandwidths_gbs:
            arch = base_arch.with_level(
                "L1", bandwidth_gbs=bw / base_arch.level(l1_index).fanout)
            model = TileFlowModel(arch)
            tree = CONV_DATAFLOWS[name](workload, arch)
            # The sweep reads only the slow-down (a latency-pass
            # artifact); the energy pass is skipped.
            res = model.evaluate(tree, until="latency")
            trace.append(res.slowdown.get(l1_index, 1.0))
        sweep.slowdown[name] = trace
    return sweep


def format_bandwidth_sweep(sweep: BandwidthSweep) -> str:
    rows = []
    for name, trace in sweep.slowdown.items():
        rows.append([name] + [f"{s:.2f}" for s in trace]
                    + [str(sweep.suitable_bandwidth(name))])
    header = (["dataflow"] + [f"{bw:g}" for bw in sweep.bandwidths_gbs]
              + ["suitable GB/s"])
    return format_table(
        f"Figure 14: L1 slow-down vs bandwidth (GB/s), layer "
        f"{sweep.shape}", header, rows)


# ----------------------------------------------------------------------
# Table 6
# ----------------------------------------------------------------------
@obs.traced()
def pe_size_sweep(sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
                  shape_name: str = "Bert-B",
                  base_arch: Optional[Architecture] = None
                  ) -> Dict[int, Dict[str, float]]:
    """Table 6: cycles (1e6) of baseline FLAT-RGran vs TileFlow vs PEs."""
    base_arch = base_arch or edge()
    workload = attention_from_shape(ATTENTION_SHAPES[shape_name])
    out: Dict[int, Dict[str, float]] = {}
    for side in sizes:
        arch = base_arch.with_(pe_count=side * side,
                               vector_pe_count=max(16, side * side // 5))
        model = TileFlowModel(arch)
        row: Dict[str, float] = {}
        for label, name in (("baseline", "flat_rgran"),
                            ("tileflow", "tileflow")):
            tree = ATTENTION_DATAFLOWS[name](workload, arch)
            row[label] = model.evaluate(
                tree, until="latency").latency_cycles / 1e6
        out[side] = row
    return out


def format_pe_sweep(data: Dict[int, Dict[str, float]]) -> str:
    sizes = sorted(data)
    rows = [
        ["baseline"] + [f"{data[s]['baseline']:.2f}" for s in sizes],
        ["TileFlow"] + [f"{data[s]['tileflow']:.2f}" for s in sizes],
    ]
    return format_table("Table 6: cycles (1e6) vs PE array size",
                        ["dataflow"] + [f"{s}^2" for s in sizes], rows)


# ----------------------------------------------------------------------
# Table 7
# ----------------------------------------------------------------------
GRANULARITIES = ("m", "b", "h", "r")
GRAN_LABELS = {"m": "MGran", "b": "BGran", "h": "HGran", "r": "RGran"}


@dataclass
class GranularityRow:
    """One dataflow under one Table 7 scenario."""

    dataflow: str
    cycles_1e6: Optional[float]
    l1_used_mb: Optional[float]
    l2_used_mb: Optional[float]
    oom: bool = False


@obs.traced()
def granularity_study(scenario: str, batch: int = 128,
                      tune_samples: int = 30,
                      arch: Optional[Architecture] = None
                      ) -> List[GranularityRow]:
    """Table 7 for one scenario: "fixed", "explored", "limited".

    * ``fixed`` — default tiling factors, memory limits ignored.
    * ``explored`` — mapper-tuned factors, memory limits ignored.
    * ``limited`` — mapper-tuned factors, memory limits enforced (MGran
      and BGran go OOM, as in the paper).
    """
    if scenario not in ("fixed", "explored", "limited"):
        raise ValueError(f"unknown scenario {scenario!r}")
    arch = arch or cloud()
    shape = ATTENTION_SHAPES["T5"]
    workload = self_attention(shape.num_heads, shape.seq_len, shape.hidden,
                              batch=batch, expand_softmax=False,
                              name="T5-b128")
    model = TileFlowModel(arch)
    engine = EvaluationEngine(workload, arch,
                              respect_memory=(scenario == "limited"))
    l1 = arch.level_index("L1")
    l2 = arch.level_index("L2")
    rows: List[GranularityRow] = []

    def flat_template(gran):
        def template(wl, a, factors=()):
            return flat(wl, a, factors, granularity=gran)
        return template

    entries = [(GRAN_LABELS[g], flat_template(g),
                {"b_tile": [1, 2, 4, 8, 16, 32],
                 "m_tile": [64, 128, 256, 512, 1024]} if g == "r" else
                {"b_tile": [1, 2, 4, 8, 16, 32]} if g in "bh" else {})
               for g in GRANULARITIES]
    entries.append(("TileFlow", ATTENTION_DATAFLOWS["tileflow"],
                    {"b_tile": [1, 2, 4, 8],
                     "m_tile": [64, 128, 256],
                     "l_tile": [64, 128, 256, 1024]}))

    for label, template, space in entries:
        if scenario == "fixed" or not space:
            tree = template(workload, arch)
            result = model.evaluate(tree)
        else:
            tuned = tune_template(
                template, space, workload, arch, samples=tune_samples,
                respect_memory=(scenario == "limited"), engine=engine)
            result = tuned.best_result
        fp = result.resources.footprint_bytes
        l1_mb = fp.get(l1, 0.0) / MB
        l2_mb = fp.get(l2, 0.0) / MB
        oom = scenario == "limited" and bool(result.violations)
        rows.append(GranularityRow(
            dataflow=label,
            cycles_1e6=None if oom else result.latency_cycles / 1e6,
            l1_used_mb=None if oom else l1_mb,
            l2_used_mb=None if oom else l2_mb,
            oom=oom))
    return rows


def format_granularity(scenario: str,
                       rows: List[GranularityRow]) -> str:
    titles = {
        "fixed": "Table 7a: fixed tiling factors, no memory limit",
        "explored": "Table 7b: explored tiling, no memory limit",
        "limited": "Table 7c: explored tiling, with memory limit",
    }
    body = []
    for row in rows:
        if row.oom:
            body.append([row.dataflow, "OOM", "-", "-"])
        else:
            body.append([row.dataflow, f"{row.cycles_1e6:.2f}",
                         f"{row.l1_used_mb:.2f}", f"{row.l2_used_mb:.2f}"])
    return format_table(titles[scenario],
                        ["dataflow", "cycles (1e6)", "L1 used (MB)",
                         "L2 used (MB)"], body)
