"""Experiment harness: one module per paper table/figure (see DESIGN.md)."""

from . import (ablation, comparison, energy_breakdown, exploration, gpu,
               report, sensitivity, validation)

__all__ = ["validation", "exploration", "comparison", "energy_breakdown",
           "sensitivity", "gpu", "ablation", "report"]
