"""Fusion-dataflow comparison experiments (Fig. 10, Fig. 11, Fig. 12).

For each workload shape the harness builds every named dataflow, optionally
tunes its tiling factors with the mapper (the paper's fair-comparison
protocol, §7.3), evaluates it with the TileFlow model, and reports the
normalized series the figures plot: cycles, DRAM data movement, on-chip
data movement, the L1 read/fill/update breakdown, and sub-core
utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from .. import obs
from ..analysis import EvaluationResult, TileFlowModel
from ..arch import Architecture, cloud, edge
from ..dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                         attention_factor_space, conv_factor_space)
from ..ir import Workload
from ..mapper import tune_template
from ..workloads import (ATTENTION_SHAPES, CLOUD_ATTENTION_NAMES,
                         CONV_CHAIN_SHAPES, EDGE_ATTENTION_NAMES,
                         attention_from_shape, conv_chain_from_shape)
from .report import format_table, geomean, normalize

#: Dataflow order used in the figures.
ATTENTION_ORDER = ("layerwise", "unipipe", "flat_hgran", "flat_rgran",
                   "chimera", "tileflow")
CONV_ORDER = ("layerwise", "fused_layer", "isos", "tileflow")


@dataclass
class DataflowRow:
    """One (shape, dataflow) evaluation."""

    shape: str
    dataflow: str
    result: EvaluationResult
    factors: Dict[str, int] = field(default_factory=dict)


@dataclass
class ComparisonResult:
    """All rows of one comparison figure."""

    arch_name: str
    rows: List[DataflowRow] = field(default_factory=list)

    def by_shape(self) -> Dict[str, Dict[str, DataflowRow]]:
        table: Dict[str, Dict[str, DataflowRow]] = {}
        for row in self.rows:
            table.setdefault(row.shape, {})[row.dataflow] = row
        return table

    def speedups(self, baseline: str = "layerwise"
                 ) -> Dict[str, Dict[str, float]]:
        """Per-shape speedup of each dataflow over the baseline."""
        out: Dict[str, Dict[str, float]] = {}
        for shape, per_df in self.by_shape().items():
            base = per_df[baseline].result.latency_cycles
            out[shape] = {name: base / row.result.latency_cycles
                          for name, row in per_df.items()}
        return out

    def geomean_speedups(self, baseline: str = "layerwise"
                         ) -> Dict[str, float]:
        per_shape = self.speedups(baseline)
        names = {name for d in per_shape.values() for name in d}
        return {name: geomean([d[name] for d in per_shape.values()
                               if name in d])
                for name in sorted(names)}


def _evaluate_all(workload_of: Callable[[str], Workload],
                  shapes: Sequence[str],
                  dataflows: Mapping[str, Callable],
                  space_of: Callable[[str, Workload], Dict],
                  arch: Architecture, order: Sequence[str],
                  tune_samples: int) -> ComparisonResult:
    model = TileFlowModel(arch)
    result = ComparisonResult(arch_name=arch.name)
    for shape in shapes:
        workload = workload_of(shape)
        for name in order:
            template = dataflows[name]
            if tune_samples > 0:
                tuned = tune_template(template, space_of(name, workload),
                                      workload, arch, samples=tune_samples,
                                      respect_memory=False)
                row = DataflowRow(shape, name, tuned.best_result,
                                  tuned.best_factors)
            else:
                tree = template(workload, arch)
                row = DataflowRow(shape, name, model.evaluate(tree))
            result.rows.append(row)
    return result


# ----------------------------------------------------------------------
@obs.traced()
def attention_comparison(arch: Optional[Architecture] = None,
                         shapes: Optional[Sequence[str]] = None,
                         tune_samples: int = 0,
                         expand_softmax: bool = True) -> ComparisonResult:
    """Fig. 10 (Edge) / Fig. 11 (Cloud) self-attention comparison."""
    arch = arch or edge()
    if shapes is None:
        shapes = (EDGE_ATTENTION_NAMES if arch.name == "Edge"
                  else CLOUD_ATTENTION_NAMES)

    def workload_of(shape_name: str) -> Workload:
        return attention_from_shape(ATTENTION_SHAPES[shape_name],
                                    expand_softmax=expand_softmax)

    return _evaluate_all(workload_of, shapes, ATTENTION_DATAFLOWS,
                         attention_factor_space, arch, ATTENTION_ORDER,
                         tune_samples)


@obs.traced()
def conv_comparison(arch: Optional[Architecture] = None,
                    shapes: Optional[Sequence[str]] = None,
                    tune_samples: int = 20) -> ComparisonResult:
    """Fig. 12 convolution-chain comparison (Cloud by default)."""
    arch = arch or cloud()
    shapes = shapes or tuple(CONV_CHAIN_SHAPES)

    def workload_of(shape_name: str) -> Workload:
        return conv_chain_from_shape(CONV_CHAIN_SHAPES[shape_name])

    return _evaluate_all(workload_of, shapes, CONV_DATAFLOWS,
                         conv_factor_space, arch, CONV_ORDER, tune_samples)


# ----------------------------------------------------------------------
# Formatting: the figure series
# ----------------------------------------------------------------------
def format_normalized_cycles(result: ComparisonResult,
                             title: str) -> str:
    """Fig. 10a / 11a / 12a: normalized cycle per shape per dataflow."""
    table = result.by_shape()
    names = sorted({r.dataflow for r in result.rows},
                   key=lambda n: (ATTENTION_ORDER + CONV_ORDER).index(n)
                   if n in ATTENTION_ORDER + CONV_ORDER else 99)
    rows = []
    for shape, per_df in table.items():
        cycles = {n: per_df[n].result.latency_cycles for n in names
                  if n in per_df}
        norm = normalize(cycles, "layerwise")
        rows.append([shape] + [f"{norm.get(n, float('nan')):.3f}"
                               for n in names])
    gm = result.geomean_speedups()
    rows.append(["geomean speedup"] + [f"{gm.get(n, 0):.2f}x"
                                       for n in names])
    return format_table(title, ["shape"] + list(names), rows)


def format_dram_movement(result: ComparisonResult, title: str) -> str:
    """Fig. 10b / 12b: normalized DRAM data movement."""
    table = result.by_shape()
    names = sorted({r.dataflow for r in result.rows})
    rows = []
    for shape, per_df in table.items():
        dm = {n: per_df[n].result.dram_words() for n in names
              if n in per_df}
        norm = normalize(dm, "layerwise")
        rows.append([shape] + [f"{norm.get(n, float('nan')):.3f}"
                               for n in names])
    return format_table(title, ["shape"] + list(names), rows)


def format_onchip_movement(result: ComparisonResult, level: int,
                           title: str) -> str:
    """Fig. 10c / 11b / 11c: normalized on-chip data movement."""
    table = result.by_shape()
    names = sorted({r.dataflow for r in result.rows})
    rows = []
    for shape, per_df in table.items():
        dm = {n: per_df[n].result.onchip_words(level) for n in names
              if n in per_df}
        norm = normalize(dm, "layerwise")
        rows.append([shape] + [f"{norm.get(n, float('nan')):.3f}"
                               for n in names])
    return format_table(title, ["shape"] + list(names), rows)


def l1_breakdown(result: ComparisonResult, shape: str,
                 level: int = 1) -> Dict[str, Dict[str, float]]:
    """Fig. 10d: read/fill/update shares of L1 movement for one shape."""
    out: Dict[str, Dict[str, float]] = {}
    for row in result.rows:
        if row.shape != shape:
            continue
        traffic = row.result.traffic.get(level)
        if traffic is None:
            continue
        total = traffic.total_words or 1.0
        out[row.dataflow] = {k: v / total
                             for k, v in traffic.breakdown().items()}
    return out


def format_l1_breakdown(result: ComparisonResult, shape: str,
                        title: str) -> str:
    rows = []
    for name, shares in l1_breakdown(result, shape).items():
        rows.append([name, f"{shares['read']:.1%}", f"{shares['fill']:.1%}",
                     f"{shares['update']:.1%}"])
    return format_table(title, ["dataflow", "read", "fill", "update"], rows)


def format_utilization(result: ComparisonResult, title: str,
                       level: int = 1) -> str:
    """Fig. 11d: sub-core (level-1 instance) occupancy per dataflow."""
    table = result.by_shape()
    names = sorted({r.dataflow for r in result.rows})
    rows = []
    for shape, per_df in table.items():
        cells = []
        for n in names:
            row = per_df.get(n)
            if row is None:
                cells.append("-")
                continue
            inst = row.result.resources.instances_used.get(level, 0)
            fanout = 1
            cells.append(f"{inst}")
        rows.append([shape] + cells)
    return format_table(title, ["shape"] + list(names), rows)
