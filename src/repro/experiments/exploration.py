"""Mapper exploration experiments (Fig. 9).

* :func:`factor_tuning_trace` — Fig. 9a: MCTS tiling-factor tuning traces
  for each named self-attention dataflow on one shape (Bert-S in the
  paper), showing convergence of normalized performance per round.
* :func:`space_exploration_trace` — Fig. 9b/9c: full 3D-space GA+MCTS
  exploration traces per workload shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..arch import Architecture, edge
from ..dataflows import (ATTENTION_DATAFLOWS, attention_factor_space)
from ..engine import EvaluationEngine
from ..ir import Workload
from ..mapper import TileFlowMapper, tune_template
from ..workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                         attention_from_shape, conv_chain_from_shape)
from .report import format_table


@dataclass
class ExplorationTraces:
    """Normalized best-so-far performance traces per series."""

    series: Dict[str, List[float]] = field(default_factory=dict)

    def final_costs(self) -> Dict[str, float]:
        return {name: trace[-1] for name, trace in self.series.items()
                if trace}


@obs.traced()
def factor_tuning_trace(shape_name: str = "Bert-S",
                        arch: Optional[Architecture] = None,
                        samples: int = 50,
                        dataflows: Optional[Sequence[str]] = None
                        ) -> ExplorationTraces:
    """Fig. 9a: per-dataflow tiling-factor convergence on one shape."""
    arch = arch or edge()
    workload = attention_from_shape(ATTENTION_SHAPES[shape_name])
    traces = ExplorationTraces()
    # One engine for the whole sweep: the signature scheme keeps the
    # templates' cache entries apart while sharing one memo budget.
    engine = EvaluationEngine(workload, arch, respect_memory=False)
    for name in dataflows or ("layerwise", "unipipe", "flat_hgran",
                              "flat_rgran", "chimera", "tileflow"):
        res = tune_template(ATTENTION_DATAFLOWS[name],
                            attention_factor_space(name, workload),
                            workload, arch, samples=samples,
                            respect_memory=False, engine=engine)
        traces.series[name] = res.normalized_trace()
    return traces


@obs.traced()
def space_exploration_trace(workloads: Dict[str, Workload],
                            arch: Optional[Architecture] = None,
                            generations: int = 8, population: int = 10,
                            mcts_samples: int = 15,
                            workers: int = 1) -> ExplorationTraces:
    """Fig. 9b/9c: 3D-space exploration traces (one series per shape)."""
    arch = arch or edge()
    traces = ExplorationTraces()
    for name, workload in workloads.items():
        mapper = TileFlowMapper(workload, arch, respect_memory=False,
                                seed=hash(name) & 0xFFFF, workers=workers)
        result = mapper.explore(generations=generations,
                                population=population,
                                mcts_samples=mcts_samples)
        traces.series[name] = result.normalized_trace()
    return traces


def attention_space_workloads(names: Optional[Sequence[str]] = None
                              ) -> Dict[str, Workload]:
    """Shapes used by Fig. 9b."""
    names = names or ("Bert-S", "Bert-B", "Bert-L", "ViT/14-B", "ViT/14-L",
                      "ViT/14-H")
    return {n: attention_from_shape(ATTENTION_SHAPES[n]) for n in names}


def conv_space_workloads(names: Optional[Sequence[str]] = None
                         ) -> Dict[str, Workload]:
    """Shapes used by Fig. 9c."""
    names = names or tuple(CONV_CHAIN_SHAPES)
    return {n: conv_chain_from_shape(CONV_CHAIN_SHAPES[n]) for n in names}


def format_traces(traces: ExplorationTraces, title: str,
                  points: int = 10) -> str:
    """Down-sampled normalized-performance series (the Fig. 9 curves)."""
    rows = []
    for name, trace in traces.series.items():
        if not trace:
            rows.append([name, "-"])
            continue
        step = max(1, len(trace) // points)
        sampled = trace[::step][:points]
        rows.append([name] + [f"{v:.3f}" for v in sampled])
    header = ["series"] + [f"t{i}" for i in range(points)]
    width = max(len(r) for r in rows)
    rows = [r + [""] * (width - len(r)) for r in rows]
    return format_table(title, header[:width], rows)
