"""Model validation experiments (Fig. 8).

* :func:`validate_against_polyhedron` — Fig. 8a/8b: enumerate matmul
  mappings, evaluate each with the tree-based model and the independent
  polyhedron (Timeloop-like) baseline, and report cycle/energy
  correlation (the paper reports R^2 = 0.999 and ~0.1% energy error).
* :func:`validate_against_accelerator` — Fig. 8c/8d: enumerate fused
  self-attention mappings on the TPU-derived accelerator, compare the
  analytical model's cycles/energy against the cycle-approximate
  simulated accelerator (the RTL substitute), and against the graph-based
  scheme (the paper reports 5.4% model error vs 48.8% graph-based).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..analysis import TileFlowModel
from ..arch import Architecture, validation_accelerator
from ..baselines import (GraphBasedModel, MappingLoop, PolyhedronMapping,
                         PolyhedronModel)
from ..dataflows import ATTENTION_DATAFLOWS, attention_factor_space
from ..ir import Workload
from ..sim import SimulatedAccelerator
from ..tile.loops import auto_steps
from ..tile.tree import AnalysisTree, OpTile
from ..workloads import matmul, self_attention
from .report import format_table, mean_abs_error, r_squared


@dataclass
class CorrelationResult:
    """Paired model predictions over a mapping sweep."""

    labels: List[str] = field(default_factory=list)
    reference_cycles: List[float] = field(default_factory=list)
    model_cycles: List[float] = field(default_factory=list)
    reference_energy: List[float] = field(default_factory=list)
    model_energy: List[float] = field(default_factory=list)
    extra_cycles: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.labels)

    def cycle_r2(self) -> float:
        return r_squared(self.reference_cycles, self.model_cycles)

    def energy_r2(self) -> float:
        return r_squared(self.reference_energy, self.model_energy)

    def cycle_error(self) -> float:
        return mean_abs_error(self.reference_cycles, self.model_cycles)

    def energy_error(self) -> float:
        return mean_abs_error(self.reference_energy, self.model_energy)


# ----------------------------------------------------------------------
# Fig. 8a / 8b
# ----------------------------------------------------------------------
def enumerate_matmul_mappings(m: int = 256, n: int = 256, k: int = 256,
                              limit: int = 1152
                              ) -> List[Tuple[str, PolyhedronMapping,
                                              List[List]]]:
    """Enumerate perfect matmul mappings on the validation accelerator.

    Varies the L1-level tiling factors of i/j/k, the L1 loop order, and
    the PE-array tile shape — the same axes the paper's 1152-mapping
    enumeration varies.  Returns (label, polyhedron mapping, tree loop
    spec) triples; the tree spec feeds :func:`matmul_tree`.
    """
    leaf_shapes = [(16, 16), (8, 32), (32, 8)]
    cores = 4
    out = []
    for (ls_i, ls_j), order in itertools.product(
            leaf_shapes, itertools.permutations("ijk")):
        i_pairs = _split_pairs(m // (cores * ls_i))
        j_pairs = _split_pairs(n // ls_j)
        k_pairs = _split_pairs(k // 16)
        for (i1, i2), (j1, j2), (k1, k2) in itertools.product(
                i_pairs, j_pairs, k_pairs):
            outer = {"i": i1, "j": j1, "k": k1}
            inner = {"i": i2, "j": j2, "k": k2}
            level0 = ([MappingLoop("i", cores, spatial=True)]
                      + [MappingLoop(d, outer[d]) for d in order])
            level1 = ([MappingLoop(d, inner[d]) for d in order]
                      + [MappingLoop("k", 16),
                         MappingLoop("i", ls_i, spatial=True),
                         MappingLoop("j", ls_j, spatial=True)])
            label = (f"{''.join(order)}/leaf{ls_i}x{ls_j}/"
                     f"{i1}.{j1}.{k1}-{i2}.{j2}.{k2}")
            spec0 = ([("i", cores, True)]
                     + [(d, outer[d], False) for d in order])
            spec1 = ([(d, inner[d], False) for d in order]
                     + [("k", 16, False), ("i", ls_i, True),
                        ("j", ls_j, True)])
            out.append((label, PolyhedronMapping([level0, level1]),
                        [spec0, spec1]))
            if len(out) >= limit:
                return out
    return out


def _split_pairs(n: int) -> List[Tuple[int, int]]:
    pairs = []
    d = 1
    while d <= n:
        if n % d == 0:
            pairs.append((d, n // d))
        d += 1
    return pairs


def matmul_tree(workload: Workload, arch: Architecture,
                spec: List[List]) -> AnalysisTree:
    """Build the tree equivalent of an enumerated polyhedron mapping."""
    op = workload.operators[0]
    leveled = auto_steps(spec)
    l0 = OpTile(op, leveled[1], level=0)
    l1 = OpTile(op, leveled[0], level=1, child=l0)
    return AnalysisTree(workload, l1, name="mm-mapping")


@obs.traced()
def validate_against_polyhedron(size: int = 256, limit: int = 1152,
                                arch: Optional[Architecture] = None
                                ) -> CorrelationResult:
    """Fig. 8a/8b: tree-based model vs the polyhedron baseline."""
    arch = arch or validation_accelerator()
    workload = matmul(size, size, size)
    poly = PolyhedronModel(arch)
    tree_model = TileFlowModel(arch)
    result = CorrelationResult()
    for label, mapping, spec in enumerate_matmul_mappings(
            size, size, size, limit=limit):
        ref = poly.evaluate(workload, mapping)
        tree = matmul_tree(workload, arch, spec)
        mod = tree_model.evaluate(tree)
        result.labels.append(label)
        result.reference_cycles.append(ref.cycles)
        result.model_cycles.append(mod.latency_cycles)
        result.reference_energy.append(ref.energy_pj)
        result.model_energy.append(mod.energy_pj)
    return result


# ----------------------------------------------------------------------
# Fig. 8c / 8d
# ----------------------------------------------------------------------
@obs.traced()
def validate_against_accelerator(limit: int = 131
                                 ) -> CorrelationResult:
    """Fig. 8c/8d: analytical model vs the simulated accelerator.

    Enumerates fused self-attention mappings (different shapes, dataflow
    templates, and tiling factors, as in the paper's 131 hand-written
    kernels) and compares relative cycles/energy.  The graph-based
    scheme's prediction is recorded per mapping in ``extra_cycles``.
    """
    arch = validation_accelerator()
    model = TileFlowModel(arch)
    sim = SimulatedAccelerator(arch)
    graph = GraphBasedModel(arch)
    shapes = [(4, 128, 256), (8, 128, 512), (4, 256, 256), (8, 256, 512),
              (2, 192, 384)]
    templates = ["flat_rgran", "chimera", "tileflow"]
    result = CorrelationResult()
    result.extra_cycles["graph_based"] = []
    for heads, seq, hidden in shapes:
        workload = self_attention(heads, seq, hidden, expand_softmax=True,
                                  name=f"attn{heads}x{seq}x{hidden}")
        gb_cycles = graph.evaluate(workload).cycles
        for template_name in templates:
            space = attention_factor_space(template_name, workload)
            m_choices = space.get("m_tile", [seq]) or [seq]
            l_choices = space.get("l_tile", [seq])[::2] or [seq]
            for m_t, l_t in itertools.product(m_choices, l_choices):
                if result.count >= limit:
                    return result
                factors = {"m_tile": m_t, "l_tile": l_t}
                tree = ATTENTION_DATAFLOWS[template_name](
                    workload, arch, factors)
                mod = model.evaluate(tree)
                ref = sim.run(tree)
                result.labels.append(
                    f"{workload.name}/{template_name}/m{m_t}l{l_t}")
                result.reference_cycles.append(ref.cycles)
                result.model_cycles.append(mod.latency_cycles)
                result.reference_energy.append(ref.energy_pj)
                result.model_energy.append(mod.energy_pj)
                result.extra_cycles["graph_based"].append(gb_cycles)
    return result


def format_validation(poly: CorrelationResult,
                      accel: CorrelationResult) -> str:
    """The Fig. 8 summary block."""
    gb_error = mean_abs_error(accel.reference_cycles,
                              accel.extra_cycles["graph_based"])
    rows = [
        ["8a", "cycle vs polyhedron model", poly.count,
         f"R2={poly.cycle_r2():.4f}", f"err={poly.cycle_error():.2%}"],
        ["8b", "energy vs polyhedron model", poly.count,
         f"R2={poly.energy_r2():.4f}", f"err={poly.energy_error():.2%}"],
        ["8c", "cycle vs simulated accelerator", accel.count,
         f"err={accel.cycle_error():.2%}", f"graph-based={gb_error:.2%}"],
        ["8d", "energy vs simulated accelerator", accel.count,
         f"err={accel.energy_error():.2%}", ""],
    ]
    return format_table("Figure 8: model validation",
                        ["fig", "comparison", "mappings", "metric",
                         "baseline"], rows)
