"""GPU-scale evaluation (Table 8 substitution).

The paper generates CUDA kernels via TVM on an A100 and measures the
FLAT-RGran baseline against the TileFlow dataflow for very long
sequences.  Offline we evaluate the same two dataflows analytically on
the GPU-like architecture spec (see DESIGN.md).  The two properties
Table 8 demonstrates are structural and survive the substitution:

1. The baseline stages full softmax rows; at 256k sequence length a row
   no longer fits in shared memory -> OOM.
2. The TileFlow dataflow tiles the key/column dimension too, fits at
   every length, and is faster throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..analysis import TileFlowModel
from ..arch import Architecture, gpu_like
from ..dataflows import ATTENTION_DATAFLOWS
from ..workloads import self_attention
from .report import format_table

#: (model name, heads, hidden) of the Table 8 workloads.
GPU_MODELS = {"T5": (16, 1024), "XLM": (12, 768)}

#: Sequence lengths of Table 8.
GPU_SEQ_LENS = (1024, 4096, 16384, 65536, 262144)


@dataclass
class GpuRow:
    """One (model, seq_len, dataflow) measurement."""

    model: str
    seq_len: int
    dataflow: str
    runtime_ms: Optional[float]    # None = OOM
    oom: bool


@obs.traced()
def gpu_evaluation(models: Optional[Sequence[str]] = None,
                   seq_lens: Optional[Sequence[int]] = None,
                   arch: Optional[Architecture] = None) -> List[GpuRow]:
    """Table 8: baseline (FLAT-RGran) vs TileFlow on the GPU-like spec."""
    arch = arch or gpu_like()
    model = TileFlowModel(arch)
    rows: List[GpuRow] = []
    for name in models or tuple(GPU_MODELS):
        heads, hidden = GPU_MODELS[name]
        for seq in seq_lens or GPU_SEQ_LENS:
            workload = self_attention(heads, seq, hidden,
                                      expand_softmax=False,
                                      name=f"{name}-{seq}")
            for df_label, df_name in (("baseline", "flat_rgran"),
                                      ("TileFlow", "tileflow")):
                tree = ATTENTION_DATAFLOWS[df_name](workload, arch)
                # Table 8 reads violations (OOM) and latency only, and
                # reports no latency for OOM rows — so evaluation stops
                # at the resource pass for them and never runs energy.
                result = model.evaluate(tree, until="latency",
                                        stop_on_violation=True)
                oom = any(v.startswith("memory") for v in result.violations)
                rows.append(GpuRow(
                    model=name, seq_len=seq, dataflow=df_label,
                    runtime_ms=(None if oom
                                else result.latency_seconds * 1e3),
                    oom=oom))
    return rows


def format_gpu(rows: List[GpuRow]) -> str:
    seqs = sorted({r.seq_len for r in rows})
    table: Dict[Tuple[str, str], Dict[int, GpuRow]] = {}
    for row in rows:
        table.setdefault((row.model, row.dataflow), {})[row.seq_len] = row
    body = []
    for (model_name, dataflow), per_seq in sorted(table.items()):
        cells = []
        for seq in seqs:
            row = per_seq.get(seq)
            if row is None:
                cells.append("-")
            elif row.oom:
                cells.append("OOM")
            else:
                cells.append(f"{row.runtime_ms:.2f}")
        body.append([model_name, dataflow] + cells)
    header = ["model", "dataflow"] + [_seq_label(s) for s in seqs]
    return format_table("Table 8: runtime (ms) on the GPU-like spec",
                        header, body)


def _seq_label(seq: int) -> str:
    if seq % 1024 == 0:
        return f"{seq // 1024}k"
    return str(seq)
