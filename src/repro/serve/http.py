"""Stdlib HTTP front-end for :class:`~repro.serve.service.EvaluationService`.

Routes (all JSON unless noted)::

    GET    /healthz             liveness: {"status": "ok"|"draining"}
    GET    /stats               queue / engine / shared-cache counters
    GET    /jobs                all jobs (summaries)
    POST   /jobs                submit {"kind": ..., "spec": {...}}
    GET    /jobs/<id>           one job's status + result
    GET    /jobs/<id>/events    NDJSON event stream (?since=N&follow=0|1)
    DELETE /jobs/<id>           cancel (queued jobs only)
    POST   /admin/drain         begin graceful drain
    POST   /admin/cache/clear   empty the shared artifact cache
                                (body optional: {"reset_counters": true})

Status codes: 400 malformed body/kind/spec, 404 unknown job or path,
409 cancel of a non-queued job, 411 missing Content-Length, 413 body
over the configured cap, 429 queue full (backpressure), 503 +
``Retry-After`` while draining.

Built on :class:`http.server.ThreadingHTTPServer` with HTTP/1.0
connection-per-request semantics: the events endpoint streams NDJSON
lines as the job produces them and signals completion by closing the
connection — no chunked encoding, readable with bare ``urllib``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .jobs import QueueClosed, QueueFull, UnknownJob
from .service import EvaluationService, SpecError

#: Default request-body cap (job specs are small; a runaway body must
#: not balloon the server).
DEFAULT_MAX_BODY = 64 * 1024
#: Seconds a draining server advertises in ``Retry-After``.
RETRY_AFTER_S = 5


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`EvaluationService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: EvaluationService,
                 max_body: int = DEFAULT_MAX_BODY):
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.max_body = int(max_body)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    # Connection-close semantics: streamed responses end at EOF.
    protocol_version = "HTTP/1.0"
    server: ServiceHTTPServer

    # -- plumbing --------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:
        """Quiet by default; the CLI owns user-facing output."""

    @property
    def service(self) -> EvaluationService:
        return self.server.service

    def _send_json(self, code: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(payload, sort_keys=True,
                           allow_nan=False) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> None:
        self._send_json(code, {"error": message}, headers)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        """The request's JSON object, or None after an error response."""
        length = self.headers.get("Content-Length")
        if length is None:
            self._error(411, "Content-Length required")
            return None
        try:
            n = int(length)
        except ValueError:
            self._error(400, f"bad Content-Length {length!r}")
            return None
        if n > self.server.max_body:
            self._error(413, f"request body over the "
                             f"{self.server.max_body} byte cap")
            return None
        raw = self.rfile.read(n)
        try:
            obj = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"body is not valid JSON: {exc}")
            return None
        if not isinstance(obj, dict):
            self._error(400, "body must be a JSON object")
            return None
        return obj

    # -- routing ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["healthz"]:
            status = "draining" if self.service.draining else "ok"
            self._send_json(200 if status == "ok" else 503,
                            {"status": status})
        elif parts == ["stats"]:
            self._send_json(200, self.service.stats())
        elif parts == ["jobs"]:
            self._send_json(200, {"jobs": [
                job.to_dict(verbose=False)
                for job in self.service.queue.jobs()]})
        elif len(parts) == 2 and parts[0] == "jobs":
            self._get_job(parts[1])
        elif (len(parts) == 3 and parts[0] == "jobs"
              and parts[2] == "events"):
            self._stream_events(parts[1], parse_qs(url.query))
        else:
            self._error(404, f"no route {url.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts == ["jobs"]:
            self._submit_job()
        elif parts == ["admin", "drain"]:
            self.service.begin_drain()
            self._send_json(202, {"status": "draining"})
        elif parts == ["admin", "cache", "clear"]:
            self._clear_cache()
        else:
            self._error(404, f"no route {self.path!r}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            try:
                cancelled = self.service.queue.cancel(parts[1])
            except UnknownJob:
                self._error(404, f"no job {parts[1]!r}")
                return
            if cancelled:
                self._send_json(200, {"id": parts[1],
                                      "state": "cancelled"})
            else:
                job = self.service.queue.get(parts[1])
                self._error(409, f"job {parts[1]} is {job.state}; only "
                                 f"queued jobs can be cancelled")
        else:
            self._error(404, f"no route {self.path!r}")

    # -- handlers --------------------------------------------------------
    def _submit_job(self) -> None:
        if self.service.draining:
            self._error(503, "service is draining; resubmit later",
                        {"Retry-After": str(RETRY_AFTER_S)})
            return
        body = self._read_body()
        if body is None:
            return
        kind = body.get("kind")
        spec = body.get("spec")
        try:
            job = self.service.submit(str(kind), spec
                                      if isinstance(spec, dict) else {})
        except (SpecError, ValueError) as exc:
            self._error(400, str(exc))
        except QueueFull as exc:
            self._error(429, str(exc))
        except QueueClosed as exc:
            self._error(503, str(exc),
                        {"Retry-After": str(RETRY_AFTER_S)})
        else:
            self._send_json(202, job.to_dict(verbose=False))

    def _clear_cache(self) -> None:
        """Drain-then-clear the shared artifact cache.  The body is
        optional (unlike job submission — there is nothing required to
        say), so a missing or zero Content-Length means an empty
        options object, not a 411."""
        payload: Dict[str, Any] = {}
        if self.headers.get("Content-Length", "0").strip() not in ("", "0"):
            body = self._read_body()
            if body is None:
                return
            payload = body
        outcome = self.service.clear_cache(
            reset_counters=bool(payload.get("reset_counters")))
        self._send_json(200 if outcome.get("cleared") else 503, outcome)

    def _get_job(self, job_id: str) -> None:
        try:
            job = self.service.queue.get(job_id)
        except UnknownJob:
            self._error(404, f"no job {job_id!r}")
            return
        self._send_json(200, job.to_dict())

    def _stream_events(self, job_id: str, query: Dict[str, Any]) -> None:
        try:
            job = self.service.queue.get(job_id)
        except UnknownJob:
            self._error(404, f"no job {job_id!r}")
            return
        try:
            since = max(0, int(query.get("since", ["0"])[0]))
        except ValueError:
            self._error(400, "query parameter 'since' must be an integer")
            return
        follow = query.get("follow", ["1"])[0] not in ("0", "false")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            while True:
                fresh, done = job.wait_events(
                    since, timeout=0.5 if follow else 0)
                for event in fresh:
                    self.wfile.write(
                        (json.dumps(event, sort_keys=True,
                                    allow_nan=False) + "\n").encode())
                since += len(fresh)
                if fresh:
                    self.wfile.flush()
                if done or not follow:
                    return
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away mid-stream


def make_server(host: str, port: int, service: EvaluationService,
                max_body: int = DEFAULT_MAX_BODY) -> ServiceHTTPServer:
    """Bind (but do not start) the HTTP server; ``port=0`` picks an
    ephemeral port (tests) — read it back from ``server_address``."""
    return ServiceHTTPServer((host, port), service, max_body=max_body)
