"""Evaluation-as-a-service: a long-lived mapper/evaluation server.

``repro serve`` keeps :class:`~repro.engine.EvaluationEngine` instances
(and their shared subtree artifact cache) resident across HTTP-submitted
``evaluate`` / ``search`` / ``sweep`` jobs, streams per-job progress as
NDJSON off the structured event bus, and persists completed jobs to the
run ledger.  See docs/SERVICE.md for the API reference.
"""

from .client import ServiceClient, ServiceError
from .http import (DEFAULT_MAX_BODY, ServiceHTTPServer, make_server)
from .jobs import (JOB_KINDS, STATES, TERMINAL_STATES, InvalidTransition,
                   Job, JobQueue, QueueClosed, QueueFull, UnknownJob)
from .service import EvaluationService, SpecError

__all__ = [
    "EvaluationService", "SpecError",
    "Job", "JobQueue", "JOB_KINDS", "STATES", "TERMINAL_STATES",
    "QueueFull", "QueueClosed", "UnknownJob", "InvalidTransition",
    "ServiceHTTPServer", "make_server", "DEFAULT_MAX_BODY",
    "ServiceClient", "ServiceError",
]
