"""The evaluation service: persistent engines behind a job queue.

:class:`EvaluationService` is the long-lived core ``repro serve``
exposes over HTTP: a pool of worker threads executes ``evaluate`` /
``search`` / ``sweep`` jobs against the registry workloads and
architectures, all on *persistent* :class:`~repro.engine.EvaluationEngine`
instances — one per (workload, arch) pair — that share a single
:class:`~repro.engine.cache.SubtreeArtifactCache`.  Artifacts one job
discovers (slice geometry, data-movement flows, subtree latencies) stay
resident and warm every later job touching the same subtrees; the
cache's namespacing by workload/arch/model-flag fingerprints keeps
artifact families apart, and each engine's hit/miss attribution is
scoped to its own namespace, so per-job counter deltas are exact even
while jobs on *different* engines run concurrently.

Each job runs with a **thread-local event bus** (a
:class:`~repro.obs.events.CallbackSink` appending to the job's buffer),
so concurrent jobs produce isolated, in-order event streams framed by
``run.start``/``run.end`` — the same stream shape the CLI's ``--events``
flag writes, streamed live by ``GET /jobs/<id>/events``.

Completed jobs are persisted to the run ledger
(``runs/<id>/manifest.json``) through the same manifest builders the
CLI uses, so ``repro runs list|show|diff`` and ``repro explain --run``
consume service output unchanged.

Lifecycle: :meth:`begin_drain` stops admissions (the HTTP layer then
answers 503 + ``Retry-After``), in-flight jobs run to completion,
:meth:`wait_drained` blocks until the queue is empty, and :meth:`stop`
joins the workers and shuts the engines down.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import arch as arch_mod
from .. import workloads as workloads_mod
from ..dataflows import dataflow_for, dataflow_names
from ..engine import EvaluationEngine
from ..engine.cache import (DEFAULT_SUBTREE_CACHE_SIZE, DiskArtifactStore,
                            SubtreeArtifactCache)
from ..engine.manifest import evaluate_run_manifest, search_run_manifest
from ..errors import TileFlowError
from ..mapper import TileFlowMapper
from ..obs import events as events_mod
from ..obs import ledger as ledger_mod
from .jobs import Job, JobQueue

#: Per-kind hard bounds on search effort a single HTTP job may request
#: (the service is long-lived and shared; a runaway spec must not pin a
#: worker for hours).
MAX_GENERATIONS = 64
MAX_POPULATION = 64
MAX_SAMPLES = 2000


class SpecError(ValueError):
    """A job spec that cannot be executed (HTTP 400 at the API layer)."""


def _positive(spec: Dict[str, Any], key: str, default: int,
              bound: int) -> int:
    try:
        value = int(spec.get(key, default))
    except (TypeError, ValueError):
        raise SpecError(f"spec field {key!r} must be an integer")
    if not 1 <= value <= bound:
        raise SpecError(f"spec field {key!r} must be in [1, {bound}]")
    return value


class EvaluationService:
    """Job queue + worker threads around persistent, cache-warm engines.

    Parameters
    ----------
    workers:
        Worker *threads* executing jobs (engines themselves stay at one
        process each; determinism is per-engine, serialized by a
        per-engine lock).
    max_queue:
        Pending-job bound; submissions beyond it raise ``QueueFull``
        (HTTP 429).
    ledger_root:
        Run-ledger directory for completed jobs; ``None`` disables
        persistence.
    subtree_cache_size:
        Entry bound of the shared cross-job artifact cache.
    cache_dir:
        Directory of the disk-persistent artifact tier (L3): tiered
        artifact kinds are loaded from here on first miss and flushed
        back on :meth:`stop`, so a service restart warm-starts.
    cache_persist:
        Write the L3 tier back on :meth:`stop` (reads still happen).
    """

    def __init__(self, workers: int = 2, max_queue: int = 64,
                 ledger_root: Optional[str] = None,
                 subtree_cache_size: int = DEFAULT_SUBTREE_CACHE_SIZE,
                 cache_dir: Optional[str] = None,
                 cache_persist: bool = True):
        self.workers = max(1, int(workers))
        self.queue = JobQueue(max_queue=max_queue)
        self.ledger = (ledger_mod.RunLedger(ledger_root)
                       if ledger_root else None)
        #: One artifact store shared by every engine the service owns.
        self.subtree_cache = SubtreeArtifactCache(subtree_cache_size)
        if cache_dir:
            self.subtree_cache.attach_l3(DiskArtifactStore(cache_dir))
        self._cache_persist = cache_persist
        self.started = time.time()
        self._lock = threading.Lock()
        self._engines: Dict[Tuple[str, str], EvaluationEngine] = {}
        self._engine_locks: Dict[Tuple[str, str], threading.Lock] = {}
        self._threads: List[threading.Thread] = []
        self._draining = False
        self._stopped = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "EvaluationService":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return self
            for i in range(self.workers):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"serve-worker-{i}", daemon=True)
                t.start()
                self._threads.append(t)
        return self

    def begin_drain(self) -> None:
        """Refuse new submissions; let queued/running jobs finish."""
        self._draining = True
        self.queue.close()

    @property
    def draining(self) -> bool:
        return self._draining

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is pending or running (True on success)."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while not self.queue.drained():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    def stop(self, timeout: float = 10.0) -> None:
        """Drain, join the workers, and shut the engines down."""
        self.begin_drain()
        for t in self._threads:
            t.join(timeout)
        with self._lock:
            engines = list(self._engines.values())
        for engine in engines:
            engine.shutdown()
        if self._cache_persist and self.subtree_cache.l3 is not None:
            self.subtree_cache.flush_l3()
        self._stopped = True

    # -- submission ------------------------------------------------------
    def submit(self, kind: str, spec: Dict[str, Any]) -> Job:
        """Validate ``spec`` and enqueue it; raises :class:`SpecError`,
        ``QueueFull``, or ``QueueClosed``."""
        normalized = self.validate_spec(kind, spec)
        return self.queue.submit(kind, normalized)

    def validate_spec(self, kind: str,
                      spec: Dict[str, Any]) -> Dict[str, Any]:
        """Resolve registry names eagerly so bad requests fail at submit
        time (HTTP 400), not inside a worker."""
        if not isinstance(spec, dict):
            raise SpecError("spec must be a JSON object")
        out = dict(spec)
        try:
            workload = workloads_mod.by_name(str(spec.get("workload", "")))
        except KeyError as exc:
            raise SpecError(str(exc.args[0]) if exc.args else str(exc))
        out["workload"] = str(spec.get("workload"))
        arch_name = str(spec.get("arch", "edge"))
        try:
            arch_mod.by_name(arch_name)
        except KeyError as exc:
            raise SpecError(str(exc.args[0]) if exc.args else str(exc))
        out["arch"] = arch_name
        known = dataflow_names(workload)
        if kind == "evaluate":
            name = spec.get("dataflow")
            if name not in known:
                raise SpecError(f"unknown dataflow {name!r} for workload "
                                f"{out['workload']!r}; choose from "
                                f"{list(known)}")
        elif kind == "sweep":
            names = spec.get("dataflows") or list(known)
            if not isinstance(names, list):
                raise SpecError("spec field 'dataflows' must be a list")
            bad = [n for n in names if n not in known]
            if bad:
                raise SpecError(f"unknown dataflows {bad} for workload "
                                f"{out['workload']!r}; choose from "
                                f"{list(known)}")
            out["dataflows"] = [str(n) for n in names]
        elif kind == "search":
            out["generations"] = _positive(spec, "generations", 3,
                                           MAX_GENERATIONS)
            out["population"] = _positive(spec, "population", 6,
                                          MAX_POPULATION)
            out["samples"] = _positive(spec, "samples", 10, MAX_SAMPLES)
            try:
                out["seed"] = int(spec.get("seed", 0))
            except (TypeError, ValueError):
                raise SpecError("spec field 'seed' must be an integer")
        return out

    # -- engines ---------------------------------------------------------
    def engine_for(self, workload_name: str, arch_name: str
                   ) -> Tuple[EvaluationEngine, threading.Lock]:
        """The persistent engine (and its job lock) for one registry
        (workload, arch) pair, built on first use over the shared
        artifact cache."""
        key = (workload_name, arch_name.lower())
        with self._lock:
            engine = self._engines.get(key)
            if engine is None:
                engine = EvaluationEngine(
                    workloads_mod.by_name(workload_name),
                    arch_mod.by_name(arch_name),
                    subtree_cache=self.subtree_cache)
                self._engines[key] = engine
                self._engine_locks[key] = threading.Lock()
            return engine, self._engine_locks[key]

    # -- worker loop -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.claim()
            if job is None:
                return
            try:
                result = self._execute(job)
            except TileFlowError as exc:
                self.queue.fail(job, str(exc))
            except Exception as exc:  # noqa: BLE001 - job isolation
                self.queue.fail(job, f"{type(exc).__name__}: {exc}")
            else:
                self.queue.finish(job, result)

    def _execute(self, job: Job) -> Dict[str, Any]:
        """Run one claimed job under its own thread-local event bus."""
        bus = events_mod.EventBus(
            [events_mod.CallbackSink(
                lambda event: job.append_event(event.to_json()))])
        events_mod.enable(bus, local=True)
        start = time.perf_counter()
        outcome = "error"
        try:
            bus.emit("run.start", command=job.kind,
                     label=str(job.spec.get("workload", "")))
            if job.kind == "evaluate":
                result = self._run_evaluate(job)
            elif job.kind == "search":
                result = self._run_search(job)
            else:
                result = self._run_sweep(job)
            outcome = "ok"
            return result
        finally:
            bus.emit("run.end", command=job.kind, outcome=outcome,
                     wall_s=time.perf_counter() - start)
            events_mod.disable(local=True)
            bus.close()

    def _record(self, job: Job, manifest_of) -> Optional[str]:
        """Persist a completed job as a ledger run (when configured)."""
        if self.ledger is None:
            return None
        run_id = self.ledger.new_run_id(
            salt=f"{job.spec.get('workload')}-{job.id}")
        self.ledger.record(manifest_of(run_id))
        job.run_id = run_id
        return run_id

    def _run_evaluate(self, job: Job) -> Dict[str, Any]:
        spec = job.spec
        engine, lock = self.engine_for(spec["workload"], spec["arch"])
        with lock:
            tree = dataflow_for(engine.workload, spec["dataflow"],
                                engine.arch)
            before = engine.stats.to_dict()
            start = time.perf_counter()
            result = engine.evaluate_tree(tree)
            wall_s = time.perf_counter() - start
            counters = _delta(before, engine.stats.to_dict())
            run_id = self._record(job, lambda rid: evaluate_run_manifest(
                run_id=rid, engine=engine, workload=engine.workload,
                arch=engine.arch, dataflow=spec["dataflow"], result=result,
                wall_s=wall_s, counters=counters,
                extra={"job": job.id}))
        return {
            "workload": spec["workload"], "arch": spec["arch"],
            "dataflow": spec["dataflow"],
            "latency_cycles": events_mod.jsonable_cost(
                result.latency_cycles),
            "energy_pj": events_mod.jsonable_cost(result.energy_pj),
            "cost": events_mod.jsonable_cost(engine.cost_of(result)),
            "feasible": bool(result.feasible),
            "wall_s": wall_s, "counters": counters, "run_id": run_id,
        }

    def _run_search(self, job: Job) -> Dict[str, Any]:
        spec = job.spec
        engine, lock = self.engine_for(spec["workload"], spec["arch"])
        with lock:
            mapper = TileFlowMapper(engine.workload, engine.arch,
                                    seed=spec["seed"], engine=engine)
            before = engine.stats.to_dict()
            start = time.perf_counter()
            result = mapper.explore(generations=spec["generations"],
                                    population=spec["population"],
                                    mcts_samples=spec["samples"])
            wall_s = time.perf_counter() - start
            counters = _delta(before, engine.stats.to_dict())
            champion = {
                "cost": events_mod.jsonable_cost(result.best_cost),
                "signature": engine.mapping_digest(result.best_genome,
                                                   result.best_factors),
                "genome": result.best_genome.describe(engine.workload),
                "factors": dict(result.best_factors),
            }
            run_id = self._record(job, lambda rid: search_run_manifest(
                run_id=rid, engine=engine, workload=engine.workload,
                arch=engine.arch, result=result,
                generations=spec["generations"],
                population=spec["population"], samples=spec["samples"],
                workers=1, seed=spec["seed"], wall_s=wall_s,
                counters=counters, extra={"job": job.id}))
        return {
            "workload": spec["workload"], "arch": spec["arch"],
            "champion": champion,
            "trace": [events_mod.jsonable_cost(c) for c in result.trace],
            "wall_s": wall_s, "counters": counters, "run_id": run_id,
        }

    def _run_sweep(self, job: Job) -> Dict[str, Any]:
        spec = job.spec
        engine, lock = self.engine_for(spec["workload"], spec["arch"])
        names = spec.get("dataflows") or list(
            dataflow_names(engine.workload))
        rows: List[Dict[str, Any]] = []
        with lock:
            before = engine.stats.to_dict()
            start = time.perf_counter()
            for name in names:
                tree = dataflow_for(engine.workload, name, engine.arch)
                result = engine.evaluate_tree(tree)
                rows.append({
                    "dataflow": name,
                    "latency_cycles": events_mod.jsonable_cost(
                        result.latency_cycles),
                    "cost": events_mod.jsonable_cost(
                        engine.cost_of(result)),
                    "feasible": bool(result.feasible),
                })
            wall_s = time.perf_counter() - start
            counters = _delta(before, engine.stats.to_dict())
        feasible = [r for r in rows if r["cost"] is not None]
        best = (min(feasible, key=lambda r: r["cost"])["dataflow"]
                if feasible else None)
        return {
            "workload": spec["workload"], "arch": spec["arch"],
            "rows": rows, "best": best, "wall_s": wall_s,
            "counters": counters, "run_id": None,
        }

    # -- cache administration --------------------------------------------
    def clear_cache(self, reset_counters: bool = False,
                    timeout: float = 30.0) -> Dict[str, Any]:
        """Safely empty the shared artifact cache (``POST
        /admin/cache/clear``).

        "Safely" means no job observes the cache shrinking mid-run:
        every per-engine job lock is acquired (in a stable order) before
        clearing, so the call waits for in-flight jobs to finish and
        blocks new ones for the instant the clear takes.  Engine
        whole-mapping memo caches are dropped too — they sit above the
        artifact store and would otherwise mask its coldness.  The L3
        disk tier is untouched (use ``repro cache purge`` for that);
        loaded shard images are dropped so the next probe re-reads disk.
        """
        with self._lock:
            pairs = sorted(self._engine_locks.items())
            engines = dict(self._engines)
        acquired = []
        deadline = time.monotonic() + timeout
        try:
            for key, lock in pairs:
                if not lock.acquire(
                        timeout=max(0.0, deadline - time.monotonic())):
                    return {"cleared": False,
                            "error": "timed out waiting for running jobs"}
                acquired.append(lock)
            entries = self.subtree_cache.total
            self.subtree_cache.clear(drop_l3_mirror=True)
            for key, engine in engines.items():
                engine._cache.clear()
            if reset_counters:
                self.subtree_cache.reset_counters()
        finally:
            for lock in acquired:
                lock.release()
        return {"cleared": True, "entries_dropped": entries,
                "engines": len(engines),
                "counters_reset": bool(reset_counters)}

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` payload: queue, engines, shared cache."""
        with self._lock:
            engines = {
                f"{wl}/{ar}": dict(engine.stats.to_dict(),
                                   namespace=engine.namespace_digest)
                for (wl, ar), engine in self._engines.items()
            }
        # Batched cohort pricing, aggregated across engines: how many
        # search candidates the array-native sweeps committed vs bounced
        # back to the scalar path since the service started.
        batched = {
            name: sum(stats.get(name, 0) for stats in engines.values())
            for name in ("batched_evaluations", "batch_fill",
                         "batch_fallbacks")
        }
        cache = self.subtree_cache
        l2_hits, l3_hits = cache.tier_counts()
        tier_kinds = cache.tier_counts_by_kind()
        tiers: Dict[str, Any] = {
            "policy": cache.policy,
            "l2": {"attached": cache.l2 is not None, "hits": l2_hits},
            "l3": {"attached": cache.l3 is not None, "hits": l3_hits},
        }
        if cache.l3 is not None:
            tiers["l3"]["root"] = str(cache.l3.root)
            tiers["l3"]["persist"] = self._cache_persist
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": time.time() - self.started,
            "workers": self.workers,
            "jobs": self.queue.by_state(),
            "queue": {"depth": self.queue.depth(),
                      "max": self.queue.max_queue,
                      "rejected_full": self.queue.rejected_full,
                      "rejected_closed": self.queue.rejected_closed},
            "engines": engines,
            "batched": batched,
            "subtree_cache": {
                "hits": cache.hits, "misses": cache.misses,
                "evictions": cache.eviction_count,
                "entries": cache.total, "maxsize": cache.maxsize,
                "tiers": tiers,
                "by_kind": {kind: dict(
                    {"hits": h, "misses": m, "evictions": e},
                    **({"l2_hits": tier_kinds[kind][0],
                        "l3_hits": tier_kinds[kind][1]}
                       if kind in tier_kinds
                       and any(tier_kinds[kind]) else {}))
                            for kind, (h, m, e)
                            in sorted(cache.counts_by_kind().items())},
            },
        }


def _delta(before: Dict[str, int], after: Dict[str, int]
           ) -> Dict[str, int]:
    return {name: after[name] - before.get(name, 0) for name in after}
