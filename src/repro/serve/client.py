"""Thin urllib client for the evaluation service.

:class:`ServiceClient` wraps the HTTP API in plain method calls —
``repro client submit|status|watch|result|stats`` is built on it, and
tests/benchmarks drive servers through it.  Stdlib only (urllib); error
responses surface as :class:`ServiceError` carrying the HTTP status and
the server's JSON ``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional

from .jobs import TERMINAL_STATES


class ServiceError(Exception):
    """An HTTP error response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """One evaluation-service endpoint (``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        data = (json.dumps(body).encode()
                if body is not None else None)
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"}
            if data is not None else {})
        try:
            with urllib.request.urlopen(
                    req, timeout=self.timeout
                    if timeout is None else timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, self._error_message(exc))

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            return str(json.loads(exc.read().decode()).get("error", ""))
        except Exception:  # noqa: BLE001 - non-JSON error body
            return exc.reason or "request failed"

    # -- API -------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/jobs")

    def submit(self, kind: str, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job; returns its summary (with the assigned id)."""
        return self._request("POST", "/jobs",
                             {"kind": kind, "spec": spec})

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def drain(self) -> Dict[str, Any]:
        return self._request("POST", "/admin/drain", {})

    def clear_cache(self, reset_counters: bool = False) -> Dict[str, Any]:
        """Drain-then-clear the service's shared artifact cache."""
        return self._request("POST", "/admin/cache/clear",
                             {"reset_counters": bool(reset_counters)})

    def result(self, job_id: str, timeout: float = 120.0,
               poll_s: float = 0.2) -> Dict[str, Any]:
        """Block until the job is terminal; returns its full status.

        Raises :class:`TimeoutError` if the job is still live after
        ``timeout`` seconds and :class:`ServiceError` on HTTP errors.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.get('state')!r} after "
                    f"{timeout}s")
            time.sleep(poll_s)

    def watch(self, job_id: str, since: int = 0,
              follow: bool = True) -> Iterator[Dict[str, Any]]:
        """Yield the job's events as decoded dicts.

        With ``follow`` (default) the stream tracks the job live and
        ends when the job reaches a terminal state (the server closes
        the connection); ``follow=False`` returns only what is already
        buffered.
        """
        url = (f"{self.base_url}/jobs/{job_id}/events"
               f"?since={since}&follow={'1' if follow else '0'}")
        req = urllib.request.Request(url)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode())
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, self._error_message(exc))
