"""Job model and queue for the evaluation service.

A *job* is one unit of submitted work (``evaluate`` / ``search`` /
``sweep``) moving through a strict state machine::

    queued ──claim──> running ──finish──> done
      │                  └──────fail────> failed
      └───cancel──> cancelled   (queued jobs only)

:class:`JobQueue` owns every transition under one lock, so observers
(HTTP handlers, the stats endpoint) always see a consistent state, and
enforces the service's backpressure bound: submissions beyond
``max_queue`` pending jobs raise :class:`QueueFull` (the API maps this
to HTTP 429), submissions after :meth:`close` raise
:class:`QueueClosed` (503 + ``Retry-After`` while draining).

Each job also buffers its own event stream (the per-job
:class:`~repro.obs.events.CallbackSink` appends here) guarded by a
condition variable, which is what ``GET /jobs/<id>/events`` long-polls
to stream NDJSON progress while the job runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

JOB_KINDS = ("evaluate", "search", "sweep")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class QueueFull(Exception):
    """Backpressure: the pending queue is at its ``max_queue`` bound."""


class QueueClosed(Exception):
    """The service is draining and accepts no further submissions."""


class UnknownJob(KeyError):
    """No job with the requested id."""


class InvalidTransition(Exception):
    """A state-machine move that the job's current state forbids."""


class Job:
    """One submitted unit of work plus its buffered event stream."""

    def __init__(self, job_id: str, kind: str, spec: Dict[str, Any]):
        self.id = job_id
        self.kind = kind
        self.spec = dict(spec)
        self.state = QUEUED
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        #: Ledger run id when the job was persisted (``runs/<id>/``).
        self.run_id: Optional[str] = None
        #: The job's full event stream (JSON-safe dicts, emission order).
        self.events: List[Dict[str, Any]] = []
        self._cond = threading.Condition()

    # -- event stream ----------------------------------------------------
    def append_event(self, event: Dict[str, Any]) -> None:
        with self._cond:
            self.events.append(event)
            self._cond.notify_all()

    def wait_events(self, since: int, timeout: Optional[float] = 0.5
                    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Events past index ``since`` plus a "stream over" flag.

        Blocks up to ``timeout`` seconds for new events; the flag is
        True once the job is terminal *and* everything buffered has been
        returned — the streaming handler's stop condition.
        """
        with self._cond:
            if len(self.events) <= since and self.state not in \
                    TERMINAL_STATES:
                self._cond.wait(timeout)
            fresh = self.events[since:]
            done = (self.state in TERMINAL_STATES
                    and since + len(fresh) >= len(self.events))
            return fresh, done

    def _mark(self, state: str) -> None:
        """Set a terminal/running state and wake event stream waiters."""
        with self._cond:
            self.state = state
            self._cond.notify_all()

    # -- views -----------------------------------------------------------
    def to_dict(self, verbose: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.id, "kind": self.kind, "state": self.state,
            "created": self.created, "started": self.started,
            "finished": self.finished, "events": len(self.events),
            "run_id": self.run_id,
        }
        if self.error is not None:
            out["error"] = self.error
        if verbose:
            out["spec"] = dict(self.spec)
            if self.result is not None:
                out["result"] = self.result
        return out


class JobQueue:
    """FIFO pending queue + registry of every job ever submitted.

    All transitions happen under one lock; worker threads block in
    :meth:`claim` until a job is pending (or the queue closes).
    Terminal jobs stay inspectable; beyond ``max_jobs`` retained jobs
    the oldest terminal ones are pruned.
    """

    def __init__(self, max_queue: int = 64, max_jobs: int = 1024):
        self.max_queue = int(max_queue)
        self.max_jobs = int(max_jobs)
        self._lock = threading.Lock()
        self._pending_cond = threading.Condition(self._lock)
        self._jobs: "Dict[str, Job]" = {}
        self._order: List[str] = []
        self._pending: "deque[Job]" = deque()
        self._closed = False
        self._counter = 0
        self.rejected_full = 0
        self.rejected_closed = 0

    # -- submission ------------------------------------------------------
    def submit(self, kind: str, spec: Dict[str, Any]) -> Job:
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}; choose from "
                             f"{JOB_KINDS}")
        with self._lock:
            if self._closed:
                self.rejected_closed += 1
                raise QueueClosed("service is draining; resubmit later")
            if len(self._pending) >= self.max_queue:
                self.rejected_full += 1
                raise QueueFull(
                    f"queue is at its bound ({self.max_queue} pending)")
            self._counter += 1
            job = Job(f"job-{self._counter:06d}", kind, spec)
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._pending.append(job)
            self._prune_locked()
            self._pending_cond.notify()
            return job

    def close(self) -> None:
        """Stop accepting submissions; :meth:`claim` returns None once
        the pending queue is empty (workers then exit)."""
        with self._lock:
            self._closed = True
            self._pending_cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- worker side -----------------------------------------------------
    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the oldest pending job and mark it running.

        Blocks until a job is available; returns None when the queue is
        closed and drained (worker shutdown) or ``timeout`` elapses.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            while not self._pending:
                if self._closed:
                    return None
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return None
                self._pending_cond.wait(remaining)
            job = self._pending.popleft()
            job.started = time.time()
            job._mark(RUNNING)
            return job

    def finish(self, job: Job, result: Dict[str, Any]) -> None:
        self._terminate(job, RUNNING, DONE)
        job.result = result

    def fail(self, job: Job, error: str) -> None:
        self._terminate(job, RUNNING, FAILED)
        job.error = str(error)

    def _terminate(self, job: Job, expected: str, state: str) -> None:
        with self._lock:
            if job.state != expected:
                raise InvalidTransition(
                    f"job {job.id} is {job.state}, not {expected}")
            job.finished = time.time()
            job._mark(state)

    # -- cancellation ----------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; running/terminal jobs return False."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJob(job_id)
            if job.state != QUEUED:
                return False
            self._pending.remove(job)
            job.finished = time.time()
            job._mark(CANCELLED)
            return True

    # -- inspection ------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[jid] for jid in self._order
                    if jid in self._jobs]

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def by_state(self) -> Dict[str, int]:
        out = {state: 0 for state in STATES}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] += 1
        return out

    def drained(self) -> bool:
        """True when nothing is pending or running (drain completion)."""
        with self._lock:
            return not self._pending and not any(
                j.state == RUNNING for j in self._jobs.values())

    def _prune_locked(self) -> None:
        if len(self._jobs) <= self.max_jobs:
            return
        for jid in list(self._order):
            if len(self._jobs) <= self.max_jobs:
                break
            job = self._jobs.get(jid)
            if job is not None and job.state in TERMINAL_STATES:
                del self._jobs[jid]
                self._order.remove(jid)
