"""Exception hierarchy for the TileFlow reproduction.

All errors raised by the library derive from :class:`TileFlowError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class TileFlowError(Exception):
    """Base class for all errors raised by this library."""


class WorkloadError(TileFlowError):
    """Raised for malformed workloads (bad dims, dangling tensors, cycles)."""


class NotationError(TileFlowError):
    """Raised when a tile-centric notation string cannot be parsed."""


class TreeValidationError(TileFlowError):
    """Raised when an analysis tree violates a structural rule.

    Examples: memory levels increasing toward the leaves, a loop referencing
    an unknown dimension, or a fused producer placed after its consumer.
    """


class ArchitectureError(TileFlowError):
    """Raised for inconsistent architecture specifications."""


class ResourceExceededError(TileFlowError):
    """Raised (or recorded) when a mapping exceeds memory capacity or PEs.

    The analysis normally *records* violations in the result so mappers can
    penalize them; strict evaluation raises this error instead.
    """

    def __init__(self, message: str, level: str = "", required: float = 0.0,
                 available: float = 0.0):
        super().__init__(message)
        self.level = level
        self.required = required
        self.available = available


class MappingError(TileFlowError):
    """Raised when a mapper encoding cannot be decoded into a valid tree."""


class SimulationError(TileFlowError):
    """Raised when the cycle-approximate simulator receives a bad program."""
