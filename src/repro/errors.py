"""Exception hierarchy for the TileFlow reproduction.

All errors raised by the library derive from :class:`TileFlowError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class TileFlowError(Exception):
    """Base class for all errors raised by this library."""


class WorkloadError(TileFlowError):
    """Raised for malformed workloads (bad dims, dangling tensors, cycles)."""


class NotationError(TileFlowError):
    """Raised when a tile-centric notation string cannot be parsed."""


class TreeValidationError(TileFlowError):
    """Raised when an analysis tree violates a structural rule.

    Examples: memory levels increasing toward the leaves, a loop referencing
    an unknown dimension, or a fused producer placed after its consumer.
    """


class ArchitectureError(TileFlowError):
    """Raised for inconsistent architecture specifications."""


class ForeignNodeError(TileFlowError):
    """Raised when an analysis context is queried with a node it does not own.

    An :class:`~repro.analysis.context.AnalysisContext` is valid for
    exactly one tree.  Asking it about a node from a different tree — or
    about a node added by an in-place mutation it has not been told about
    — used to silently return stale geometry keyed by a recycled
    ``id()``; now it raises this error.  After mutating the context's own
    tree in place, call ``ctx.invalidate()`` to re-arm it.
    """


class ResourceExceededError(TileFlowError):
    """Raised (or recorded) when a mapping exceeds memory capacity or PEs.

    The analysis normally *records* violations in the result so mappers can
    penalize them; strict evaluation raises this error instead.
    """

    def __init__(self, message: str, level: str = "", required: float = 0.0,
                 available: float = 0.0):
        super().__init__(message)
        self.level = level
        self.required = required
        self.available = available


class MappingError(TileFlowError):
    """Raised when a mapper encoding cannot be decoded into a valid tree."""


class SimulationError(TileFlowError):
    """Raised when the cycle-approximate simulator receives a bad program."""
