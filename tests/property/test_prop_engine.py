"""Property tests for the evaluation engine.

Two contracts from docs/PERFORMANCE.md:

* **Prescreen soundness** — the cheap feasibility screen never rejects a
  mapping the full model would accept, over randomized genomes, factor
  points, and shrunk architectures.
* **Configuration transparency** — memoization and worker pools are pure
  performance knobs: for a fixed seed, ``MapperResult.to_dict()`` is
  byte-identical with the cache on or off and with 1 or 2 workers.
* **Event-stream determinism** — ``search``-category events are a pure
  function of the search trajectory: a serial run and a ``--workers 2``
  run emit identical search-event sequences (worker events are recorded
  in-process and replayed to the parent in submission order).
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import arch
from repro.analysis import TileFlowModel
from repro.engine import EvaluationEngine, prescreen
from repro.mapper import (INFEASIBLE, Genome, TileFlowMapper,
                          build_genome_tree, genome_factor_space,
                          latency_cost)
from repro.obs import events
from repro.workloads import self_attention

WL = self_attention(2, 32, 64, expand_softmax=False)

#: Shrunk Edge variants that make both compute and memory rejections
#: reachable (the stock Edge fits almost every random point).
ARCHS = [
    arch.edge(),
    arch.edge().with_(pe_count=64, vector_pe_count=16),
    arch.edge().with_level("L1", capacity_bytes=16 * 1024),
    arch.edge().with_(pe_count=256).with_level("L1",
                                               capacity_bytes=4 * 1024),
]


@given(st.integers(0, 2 ** 31), st.integers(0, len(ARCHS) - 1))
@settings(max_examples=25, deadline=None)
def test_prescreen_never_rejects_a_feasible_mapping(seed, arch_index):
    """prescreen(tree) != [] implies the full model finds violations."""
    spec = ARCHS[arch_index]
    rng = random.Random(seed)
    genome = Genome.random(WL, rng)
    factors = genome_factor_space(WL, genome).random_point(rng)
    tree = build_genome_tree(WL, spec, genome, factors)
    if prescreen(tree, spec):
        result = TileFlowModel(spec).evaluate(tree)
        assert result.violations
        assert latency_cost(result, True) == INFEASIBLE


@given(st.integers(0, 2 ** 31))
@settings(max_examples=25, deadline=None)
def test_prescreen_is_invisible_to_the_search(seed):
    """Engine cost is identical with the prescreen on or off."""
    spec = ARCHS[3]
    rng = random.Random(seed)
    genome = Genome.random(WL, rng)
    factors = genome_factor_space(WL, genome).random_point(rng)
    screened = EvaluationEngine(WL, spec, prescreen=True)
    unscreened = EvaluationEngine(WL, spec, prescreen=False)
    assert (screened.cost_of(screened.evaluate_genome(genome, factors))
            == unscreened.cost_of(unscreened.evaluate_genome(genome,
                                                             factors)))


def _explore(seed, **mapper_kwargs):
    mapper = TileFlowMapper(WL, arch.edge(), seed=seed, **mapper_kwargs)
    result = mapper.explore(generations=2, population=4, mcts_samples=4)
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.mark.parametrize("seed", [0, 13])
def test_cache_does_not_change_search_results(seed):
    assert _explore(seed) == _explore(seed, cache_size=0, prescreen=False)


@pytest.mark.parametrize("seed", [0, 13])
def test_workers_do_not_change_search_results(seed):
    assert _explore(seed, workers=1) == _explore(seed, workers=2)


@pytest.mark.parametrize("seed", [0, 13])
def test_incremental_does_not_change_search_results(seed):
    """The subtree cache is a pure perf knob, serial and parallel."""
    assert _explore(seed) == _explore(seed, incremental=False)
    assert (_explore(seed, workers=2)
            == _explore(seed, workers=2, incremental=False))


def _explore_with_events(seed, **mapper_kwargs):
    """(search-event sequence, cache-event kinds, result JSON) of a run."""
    sink = events.RingSink(capacity=None)
    events.enable(sinks=[sink])
    try:
        payload = _explore(seed, **mapper_kwargs)
    finally:
        events.disable()
    search = [(e.kind, json.dumps(e.payload, sort_keys=True))
              for e in sink.events if e.category == "search"]
    cache_kinds = {e.kind for e in sink.events if e.category == "cache"}
    return search, cache_kinds, payload


@pytest.mark.parametrize("seed", [0, 13])
def test_worker_events_aggregate_deterministically(seed):
    """Serial and --workers 2 runs emit the same search events.

    The full event *multiset* cannot be compared across worker counts —
    each worker owns private memo/subtree caches, so ``cache``-category
    effectiveness legitimately differs — but ``search`` events (GA
    generations, MCTS samples, pre-screen rejections) must be an
    identical *sequence*, and the champion byte-identical, because
    worker-recorded events are replayed to the parent in submission
    order.
    """
    serial_events, serial_cache, serial_result = _explore_with_events(
        seed, workers=1)
    parallel_events, parallel_cache, parallel_result = _explore_with_events(
        seed, workers=2)
    assert serial_events == parallel_events
    assert serial_result == parallel_result
    # Both modes still surface cache telemetry (content may differ).
    assert "engine.memo" in serial_cache
    assert "engine.memo" in parallel_cache
    # The search stream is non-trivial: every generation reported.
    gens = [kind for kind, _ in serial_events if kind == "ga.generation"]
    assert len(gens) == 2


@given(st.integers(0, 2 ** 31), st.data())
@settings(max_examples=25, deadline=None)
def test_single_factor_move_is_byte_identical_incrementally(seed, data):
    """A one-factor mapper move re-analysed incrementally == from scratch.

    Evaluate point A to warm the engine's subtree cache, then move one
    factor to get point B; the incremental evaluation of B (which serves
    every subtree configuration shared with A from the cache) must be
    byte-identical to a cache-free evaluation of B.
    """
    spec = arch.edge()
    rng = random.Random(seed)
    genome = Genome.random(WL, rng)
    space = genome_factor_space(WL, genome)
    point_a = space.random_point(rng)
    name = data.draw(st.sampled_from(space.names), label="factor")
    value = data.draw(st.sampled_from(space.choices[name]), label="value")
    point_b = dict(point_a)
    point_b[name] = value

    engine = EvaluationEngine(WL, spec, incremental=True)
    engine.evaluate_genome(genome, point_a, full=True)
    incremental = engine.evaluate_genome(genome, point_b, full=True)

    scratch = TileFlowModel(spec).evaluate(
        build_genome_tree(WL, spec, genome, point_b))
    assert incremental.to_dict() == scratch.to_dict()
