"""Property tests on the analysis engine over randomized mappings."""

from hypothesis import given, settings, strategies as st

from repro.analysis import DataMovementAnalysis, TileFlowModel
from repro.arch import edge
from repro.tile import AnalysisTree, OpTile
from repro.tile.loops import auto_steps
from repro.workloads import matmul

SIZE = 64
splits = st.sampled_from([1, 2, 4, 8])
orders = st.permutations(["i", "j", "k"])


def _tree(i1, j1, k1, order):
    wl = matmul(SIZE, SIZE, SIZE)
    op = wl.operators[0]
    inner = {"i": SIZE // (8 * i1), "j": SIZE // (8 * j1),
             "k": SIZE // k1}
    spec = [[(d, {"i": i1, "j": j1, "k": k1}[d], False) for d in order],
            [(d, inner[d], False) for d in order]
            + [("i", 8, True), ("j", 8, True)]]
    lv = auto_steps(spec)
    leaf = OpTile(op, lv[1], level=0)
    top = OpTile(op, lv[0], level=1, child=leaf)
    return wl, AnalysisTree(wl, top)


@given(splits, splits, splits, orders)
@settings(max_examples=40, deadline=None)
def test_traffic_lower_bounds(i1, j1, k1, order):
    """Every mapping must move at least the compulsory volumes."""
    wl, tree = _tree(i1, j1, k1, order)
    result = DataMovementAnalysis(tree, edge()).run()
    top = result.flows(tree.root)
    assert top.fills["A"] >= SIZE * SIZE
    assert top.fills["B"] >= SIZE * SIZE
    assert top.updates["C"] >= SIZE * SIZE


@given(splits, splits, splits, orders)
@settings(max_examples=30, deadline=None)
def test_latency_at_least_compute_floor(i1, j1, k1, order):
    wl, tree = _tree(i1, j1, k1, order)
    r = TileFlowModel(edge()).evaluate(tree)
    floor = SIZE ** 3 / 64  # 8x8 lanes
    assert r.latency_cycles >= floor - 1e-6
    assert r.energy_pj > 0


@given(splits, splits, splits, orders)
@settings(max_examples=30, deadline=None)
def test_counters_are_nonnegative(i1, j1, k1, order):
    wl, tree = _tree(i1, j1, k1, order)
    result = DataMovementAnalysis(tree, edge()).run()
    for lt in result.traffic.values():
        for counter in (lt.fill, lt.read, lt.update):
            assert all(v >= 0 for v in counter.values())
