"""Property tests for the batched analysis kernels.

The batched layer's one contract (docs/PERFORMANCE.md): pricing a
factor-candidate cohort through the array-native kernels is *invisible*
— every committed cost equals what the scalar engine computes for the
same point, bit for bit.  Three angles, over hypothesis-randomized
genomes and cohorts:

* **element-for-element equality** — each cohort member's batched cost
  equals a fresh scalar engine's cost for the identical factor point;
* **cohort-order invariance** — permuting the member order changes
  nothing (slice geometry and walk recursions are computed per lane in
  exact int64; lane order is just array layout);
* **cohort-of-1** — degenerate single-member cohorts take the same
  kernels and still match the scalar path exactly.
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro import arch
from repro.analysis.batched.kernels import BatchedError
from repro.analysis.batched.sweep import CohortEvaluator
from repro.engine import EvaluationEngine
from repro.mapper import Genome, genome_factor_space
from repro.workloads import self_attention

WL = self_attention(2, 32, 64, expand_softmax=True)
SPEC = arch.edge()


def _evaluator(seed):
    """A (engine, genome, evaluator) triple for the first batchable
    genome of the seeded stream (None when none of the first few are)."""
    rng = random.Random(seed)
    engine = EvaluationEngine(WL, SPEC, batched=True)
    for _ in range(8):
        genome = Genome.random(WL, rng)
        try:
            evaluator = CohortEvaluator(
                engine, genome, genome_factor_space(WL, genome))
        except BatchedError:
            continue
        return engine, genome, evaluator
    return None


def _members(evaluator, rng, count):
    choices = evaluator.planner.choices
    return sorted({tuple(rng.randrange(len(c)) for c in choices)
                   for _ in range(count)})


@given(st.integers(0, 2 ** 31), st.integers(2, 24))
@settings(max_examples=20, deadline=None)
def test_batched_costs_equal_scalar_element_for_element(seed, count):
    triple = _evaluator(seed)
    assume(triple is not None)
    engine, genome, evaluator = triple
    rng = random.Random(seed ^ 0x5EED)
    members = _members(evaluator, rng, count)
    costs = evaluator.costs_for(members)
    scalar = EvaluationEngine(WL, SPEC, batched=False)
    priced = 0
    for member, cost in costs.items():
        if cost is None:  # scalar fallback: nothing committed to check
            continue
        priced += 1
        expected = scalar.cost_of(scalar.evaluate_genome(
            genome, evaluator.planner.point_at(member)))
        assert float(cost) == float(expected), member


@given(st.integers(0, 2 ** 31), st.integers(2, 16))
@settings(max_examples=10, deadline=None)
def test_cohort_order_permutation_invariance(seed, count):
    triple_a = _evaluator(seed)
    assume(triple_a is not None)
    _, _, ev_a = triple_a
    _, _, ev_b = _evaluator(seed)  # fresh engine + evaluator, same genome
    rng = random.Random(seed ^ 0xC0FFEE)
    members = _members(ev_a, rng, count)
    shuffled = list(members)
    rng.shuffle(shuffled)
    assert ev_a.costs_for(members) == ev_b.costs_for(shuffled)


@given(st.integers(0, 2 ** 31))
@settings(max_examples=15, deadline=None)
def test_cohort_of_one_equals_scalar(seed):
    triple = _evaluator(seed)
    assume(triple is not None)
    engine, genome, evaluator = triple
    rng = random.Random(seed ^ 0x0D0)
    (member,) = _members(evaluator, rng, 1)
    costs = evaluator.costs_for([member])
    cost = costs[member]
    assume(cost is not None)
    scalar = EvaluationEngine(WL, SPEC, batched=False)
    expected = scalar.cost_of(scalar.evaluate_genome(
        genome, evaluator.planner.point_at(member)))
    assert float(cost) == float(expected)
