"""The pass pipeline reproduces the pre-refactor monolith exactly.

Two oracles guard the refactor of ``TileFlowModel.evaluate`` into a pass
pipeline:

* ``tests/data/analysis_oracle.json`` — 58 ``EvaluationResult.to_dict()``
  payloads (every named attention/conv dataflow on Edge/Cloud plus 30
  random genome trees) frozen from the pre-refactor monolith.  The full
  pipeline must reproduce the file **byte-for-byte**.  Regenerate after
  an intentional model change with
  ``PYTHONPATH=src python tests/property/test_prop_pipeline.py``.
* A hypothesis sweep comparing the pipeline against an *independent*
  composition of the underlying analyses (data movement -> resources ->
  latency -> energy, each with its own private context) on random
  genomes — all five metric families must agree exactly.
"""

import json
import os
import random

from hypothesis import given, settings, strategies as st

from repro import arch as arch_mod
from repro.analysis import (DataMovementAnalysis, LatencyAnalysis,
                            ResourceAnalysis, TileFlowModel, compute_energy)
from repro.dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                             attention_dataflow, conv_dataflow)
from repro.mapper import Genome, build_genome_tree, genome_factor_space
from repro.workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                             attention_from_shape, conv_chain_from_shape,
                             self_attention)

ORACLE_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                           "analysis_oracle.json")


def oracle_entries(artifact_cache=None):
    """Recompute every frozen-oracle entry with the current model.

    ``artifact_cache`` optionally threads one shared
    :class:`~repro.engine.cache.SubtreeArtifactCache` through every
    evaluation — the incremental path, which must reproduce the same
    bytes.
    """
    def evaluate(model, tree):
        if artifact_cache is None:
            return model.evaluate(tree)
        ctx = model.context(tree, artifact_cache=artifact_cache)
        return model.evaluate(tree, context=ctx)

    out = {}
    for shape in ("Bert-S", "ViT/16-B"):
        wl = attention_from_shape(ATTENTION_SHAPES[shape])
        for aname, spec in (("edge", arch_mod.edge()),
                            ("cloud", arch_mod.cloud())):
            model = TileFlowModel(spec)
            for df in ATTENTION_DATAFLOWS:
                r = evaluate(model, attention_dataflow(df, wl, spec))
                out[f"attn/{shape}/{aname}/{df}"] = r.to_dict()
    wl = conv_chain_from_shape(CONV_CHAIN_SHAPES["CC1"])
    spec = arch_mod.edge()
    model = TileFlowModel(spec)
    for df in CONV_DATAFLOWS:
        r = evaluate(model, conv_dataflow(df, wl, spec))
        out[f"conv/CC1/edge/{df}"] = r.to_dict()
    wl = self_attention(2, 32, 64, expand_softmax=False)
    model = TileFlowModel(spec)
    rng = random.Random(1234)
    for i in range(30):
        genome = Genome.random(wl, rng)
        factors = genome_factor_space(wl, genome).random_point(rng)
        tree = build_genome_tree(wl, spec, genome, factors)
        out[f"genome/{i}"] = evaluate(model, tree).to_dict()
    return out


def test_frozen_oracle_byte_identity():
    """Full-pipeline results are byte-identical to the frozen monolith."""
    with open(ORACLE_PATH) as fh:
        frozen = fh.read()
    current = json.dumps(oracle_entries(), sort_keys=True, indent=1)
    assert current == frozen


def test_frozen_oracle_byte_identity_incremental():
    """The incremental path reproduces the frozen oracle byte-for-byte.

    All 58 entries run through a *single shared* subtree artifact cache,
    so later entries are served from artifacts cached by earlier ones —
    cache hits included, the serialized output must not move by a bit.
    """
    from repro.engine.cache import SubtreeArtifactCache

    cache = SubtreeArtifactCache()
    with open(ORACLE_PATH) as fh:
        frozen = fh.read()
    current = json.dumps(oracle_entries(artifact_cache=cache),
                         sort_keys=True, indent=1)
    assert cache.hits > 0  # the cache actually served artifacts
    assert current == frozen


# ----------------------------------------------------------------------
# Pipeline vs independent composition of the analyses.
# ----------------------------------------------------------------------
_WL = self_attention(2, 32, 64, expand_softmax=False)
_SPEC = arch_mod.edge()


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=25, deadline=None)
def test_pipeline_matches_independent_composition(seed):
    """All five metric families agree with the composed analyses."""
    rng = random.Random(seed)
    genome = Genome.random(_WL, rng)
    factors = genome_factor_space(_WL, genome).random_point(rng)
    tree = build_genome_tree(_WL, _SPEC, genome, factors)
    result = TileFlowModel(_SPEC).evaluate(tree)

    movement = DataMovementAnalysis(tree, _SPEC).run()
    usage, violations = ResourceAnalysis(tree, _SPEC, movement).run()
    cycles, slowdown = LatencyAnalysis(tree, _SPEC, movement).run()
    energy_pj, breakdown = compute_energy(_WL, _SPEC, movement.traffic)

    # 1. latency (+ the §7.5 slow-down diagnostics)
    assert result.latency_cycles == cycles
    assert result.slowdown == slowdown
    # 2. energy (total and per-component breakdown)
    assert result.energy_pj == energy_pj
    assert result.energy_breakdown_pj == breakdown
    # 3. traffic at every level
    assert set(result.traffic) == set(movement.traffic)
    for level, lt in result.traffic.items():
        other = movement.traffic[level]
        assert (lt.fill, lt.read, lt.update) == (
            other.fill, other.read, other.update)
    # 4. resources
    assert result.resources.num_pe == usage.num_pe
    assert result.resources.num_vector_pe == usage.num_vector_pe
    assert result.resources.footprint_bytes == usage.footprint_bytes
    # 5. violations
    assert result.violations == violations


# ----------------------------------------------------------------------
# Incremental layer: shared-cache identity and cached validation.
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=25, deadline=None)
def test_shared_cache_reevaluation_is_byte_identical(seed):
    """Cold and warm runs through one shared cache match the uncached run.

    The warm run re-builds the same tree (new node objects, same
    structure), so slices, validation verdicts, walk volumes, and whole
    group flows are all served from the cache — and must reproduce the
    uncached result bit-for-bit.
    """
    from repro.engine.cache import SubtreeArtifactCache

    rng = random.Random(seed)
    genome = Genome.random(_WL, rng)
    factors = genome_factor_space(_WL, genome).random_point(rng)

    model = TileFlowModel(_SPEC)
    uncached = model.evaluate(
        build_genome_tree(_WL, _SPEC, genome, factors)).to_dict()

    cache = SubtreeArtifactCache()
    for _ in range(2):  # cold fill, then warm replay
        tree = build_genome_tree(_WL, _SPEC, genome, factors)
        ctx = model.context(tree, artifact_cache=cache)
        cached = model.evaluate(tree, context=ctx).to_dict()
        assert cached == uncached
    assert cache.hits > 0


@given(st.integers(min_value=0, max_value=10 ** 6), st.booleans())
@settings(max_examples=25, deadline=None)
def test_cached_validation_matches_full_check(seed, corrupt):
    """``validate_tree_cached`` == ``validate_tree``, valid or not.

    ``corrupt`` flattens every loop over one dim to a single iteration,
    leaving that dim's coverage product short of its size; the cached
    validator must raise the exact message the full checker raises (it
    re-runs the full check on any problem precisely to keep the message
    order canonical).
    """
    from repro.analysis import AnalysisContext
    from repro.engine.cache import SubtreeArtifactCache
    from repro.errors import TreeValidationError
    from repro.tile.loops import Loop
    from repro.tile.validate import validate_tree, validate_tree_cached

    rng = random.Random(seed)
    genome = Genome.random(_WL, rng)
    factors = genome_factor_space(_WL, genome).random_point(rng)
    tree = build_genome_tree(_WL, _SPEC, genome, factors)
    if corrupt:
        dim_name = rng.choice(sorted(
            {d for op in _WL.operators
             for d, size in op.dims.items() if size > 1}))
        for node in tree.nodes():
            if any(lp.dim == dim_name and lp.count > 1
                   for lp in node.loops):
                node.loops = [
                    lp if lp.dim != dim_name
                    else Loop(lp.dim, 1, lp.step, lp.spatial)
                    for lp in node.loops]

    full_error = None
    try:
        validate_tree(tree)
    except TreeValidationError as err:
        full_error = str(err)

    cache = SubtreeArtifactCache()
    for _ in range(2):  # second round exercises the cache-hit path
        ctx = AnalysisContext(tree, _SPEC, artifact_cache=cache)
        cached_error = None
        try:
            validate_tree_cached(ctx)
        except TreeValidationError as err:
            cached_error = str(err)
        assert cached_error == full_error
    if corrupt:
        assert full_error is not None


if __name__ == "__main__":  # regenerate the frozen oracle
    payload = json.dumps(oracle_entries(), sort_keys=True, indent=1)
    with open(ORACLE_PATH, "w") as fh:
        fh.write(payload)
    print(f"wrote {len(payload)} bytes to {ORACLE_PATH}")
