"""The pass pipeline reproduces the pre-refactor monolith exactly.

Two oracles guard the refactor of ``TileFlowModel.evaluate`` into a pass
pipeline:

* ``tests/data/analysis_oracle.json`` — 58 ``EvaluationResult.to_dict()``
  payloads (every named attention/conv dataflow on Edge/Cloud plus 30
  random genome trees) frozen from the pre-refactor monolith.  The full
  pipeline must reproduce the file **byte-for-byte**.  Regenerate after
  an intentional model change with
  ``PYTHONPATH=src python tests/property/test_prop_pipeline.py``.
* A hypothesis sweep comparing the pipeline against an *independent*
  composition of the underlying analyses (data movement -> resources ->
  latency -> energy, each with its own private context) on random
  genomes — all five metric families must agree exactly.
"""

import json
import os
import random

from hypothesis import given, settings, strategies as st

from repro import arch as arch_mod
from repro.analysis import (DataMovementAnalysis, LatencyAnalysis,
                            ResourceAnalysis, TileFlowModel, compute_energy)
from repro.dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                             attention_dataflow, conv_dataflow)
from repro.mapper import Genome, build_genome_tree, genome_factor_space
from repro.workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                             attention_from_shape, conv_chain_from_shape,
                             self_attention)

ORACLE_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                           "analysis_oracle.json")


def oracle_entries():
    """Recompute every frozen-oracle entry with the current model."""
    out = {}
    for shape in ("Bert-S", "ViT/16-B"):
        wl = attention_from_shape(ATTENTION_SHAPES[shape])
        for aname, spec in (("edge", arch_mod.edge()),
                            ("cloud", arch_mod.cloud())):
            model = TileFlowModel(spec)
            for df in ATTENTION_DATAFLOWS:
                r = model.evaluate(attention_dataflow(df, wl, spec))
                out[f"attn/{shape}/{aname}/{df}"] = r.to_dict()
    wl = conv_chain_from_shape(CONV_CHAIN_SHAPES["CC1"])
    spec = arch_mod.edge()
    model = TileFlowModel(spec)
    for df in CONV_DATAFLOWS:
        r = model.evaluate(conv_dataflow(df, wl, spec))
        out[f"conv/CC1/edge/{df}"] = r.to_dict()
    wl = self_attention(2, 32, 64, expand_softmax=False)
    model = TileFlowModel(spec)
    rng = random.Random(1234)
    for i in range(30):
        genome = Genome.random(wl, rng)
        factors = genome_factor_space(wl, genome).random_point(rng)
        tree = build_genome_tree(wl, spec, genome, factors)
        out[f"genome/{i}"] = model.evaluate(tree).to_dict()
    return out


def test_frozen_oracle_byte_identity():
    """Full-pipeline results are byte-identical to the frozen monolith."""
    with open(ORACLE_PATH) as fh:
        frozen = fh.read()
    current = json.dumps(oracle_entries(), sort_keys=True, indent=1)
    assert current == frozen


# ----------------------------------------------------------------------
# Pipeline vs independent composition of the analyses.
# ----------------------------------------------------------------------
_WL = self_attention(2, 32, 64, expand_softmax=False)
_SPEC = arch_mod.edge()


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=25, deadline=None)
def test_pipeline_matches_independent_composition(seed):
    """All five metric families agree with the composed analyses."""
    rng = random.Random(seed)
    genome = Genome.random(_WL, rng)
    factors = genome_factor_space(_WL, genome).random_point(rng)
    tree = build_genome_tree(_WL, _SPEC, genome, factors)
    result = TileFlowModel(_SPEC).evaluate(tree)

    movement = DataMovementAnalysis(tree, _SPEC).run()
    usage, violations = ResourceAnalysis(tree, _SPEC, movement).run()
    cycles, slowdown = LatencyAnalysis(tree, _SPEC, movement).run()
    energy_pj, breakdown = compute_energy(_WL, _SPEC, movement.traffic)

    # 1. latency (+ the §7.5 slow-down diagnostics)
    assert result.latency_cycles == cycles
    assert result.slowdown == slowdown
    # 2. energy (total and per-component breakdown)
    assert result.energy_pj == energy_pj
    assert result.energy_breakdown_pj == breakdown
    # 3. traffic at every level
    assert set(result.traffic) == set(movement.traffic)
    for level, lt in result.traffic.items():
        other = movement.traffic[level]
        assert (lt.fill, lt.read, lt.update) == (
            other.fill, other.read, other.update)
    # 4. resources
    assert result.resources.num_pe == usage.num_pe
    assert result.resources.num_vector_pe == usage.num_vector_pe
    assert result.resources.footprint_bytes == usage.footprint_bytes
    # 5. violations
    assert result.violations == violations


if __name__ == "__main__":  # regenerate the frozen oracle
    payload = json.dumps(oracle_entries(), sort_keys=True, indent=1)
    with open(ORACLE_PATH, "w") as fh:
        fh.write(payload)
    print(f"wrote {len(payload)} bytes to {ORACLE_PATH}")
