"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis import (box_volume, delta_volume, movement_recursion,
                            overlap_volume)
from repro.dataflows import divisors, floor_divisor, near_divisor, near_tile
from repro.ir import AffineExpr, dim
from repro.mapper import FactorSpace, factorizations

sizes = st.integers(min_value=1, max_value=512)
small = st.integers(min_value=1, max_value=64)
coeffs = st.integers(min_value=-4, max_value=4)


class TestExprProperties:
    @given(st.dictionaries(st.sampled_from("abcd"), coeffs, max_size=4),
           st.dictionaries(st.sampled_from("abcd"), coeffs, max_size=4))
    def test_addition_commutes(self, t1, t2):
        e1, e2 = AffineExpr(t1), AffineExpr(t2)
        assert e1 + e2 == e2 + e1

    @given(st.dictionaries(st.sampled_from("abcd"), coeffs, max_size=4),
           st.integers(min_value=-8, max_value=8))
    def test_scaling_distributes_over_eval(self, terms, k):
        e = AffineExpr(terms)
        point = {d: 3 for d in terms}
        assert (e * k).evaluate(point) == k * e.evaluate(point)

    @given(st.dictionaries(st.sampled_from("abcd"), coeffs, min_size=1,
                           max_size=4),
           st.dictionaries(st.sampled_from("abcd"), small, min_size=1,
                           max_size=4))
    def test_extent_positive_and_monotone(self, terms, extents):
        e = AffineExpr(terms)
        ext = e.extent_over(extents)
        assert ext >= 1
        bigger = {d: n + 1 for d, n in extents.items()}
        assert e.extent_over(bigger) >= ext


class TestBoxProperties:
    boxes = st.lists(small, min_size=1, max_size=4)

    @given(boxes, st.lists(st.integers(-64, 64), min_size=1, max_size=4))
    def test_delta_bounds(self, extents, disp):
        disp = (disp + [0] * len(extents))[:len(extents)]
        d = delta_volume(extents, disp)
        assert 0 <= d <= box_volume(extents)

    @given(boxes)
    def test_zero_displacement_is_full_reuse(self, extents):
        assert delta_volume(extents, [0] * len(extents)) == 0

    @given(boxes, st.lists(st.integers(-64, 64), min_size=1, max_size=4))
    def test_overlap_symmetry(self, extents, disp):
        disp = (disp + [0] * len(extents))[:len(extents)]
        neg = [-d for d in disp]
        assert overlap_volume(extents, disp) == overlap_volume(extents, neg)

    @given(small, st.lists(st.tuples(st.integers(1, 6),
                                     st.integers(0, 40)),
                           max_size=4))
    def test_movement_recursion_bounds(self, volume, loops):
        counts = [c for c, _ in loops]
        deltas = [min(d, volume) for _, d in loops]
        total = movement_recursion(volume, counts, deltas)
        trips = 1
        for c in counts:
            trips *= c
        assert volume <= total <= volume * trips


class TestDivisorProperties:
    @given(sizes)
    def test_divisors_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(ds)
        assert ds[0] == 1 and ds[-1] == n

    @given(sizes, small)
    def test_near_divisor_is_divisor(self, n, target):
        assert n % near_divisor(n, target) == 0

    @given(sizes, small)
    def test_floor_divisor_bound(self, n, cap):
        d = floor_divisor(n, cap)
        assert d <= cap or d == 1
        assert n % d == 0

    @given(sizes, small)
    def test_near_tile_is_multiple_of_unit(self, n, target):
        unit = near_divisor(n, 4)
        t = near_tile(n, unit, target)
        assert n % t == 0 and t % unit == 0

    @given(st.integers(1, 64), st.integers(1, 3))
    @settings(max_examples=30)
    def test_factorization_products(self, n, parts):
        for f in factorizations(n, parts):
            prod = 1
            for x in f:
                prod *= x
            assert prod == n


class TestFactorSpaceProperties:
    @given(st.dictionaries(st.sampled_from(["p", "q", "r"]),
                           st.lists(small, min_size=1, max_size=5,
                                    unique=True),
                           min_size=1, max_size=3))
    def test_point_at_within_choices(self, choices):
        space = FactorSpace(choices)
        point = space.default_point()
        for name, value in point.items():
            assert value in choices[name]
        indices = [0] * len(space.names)
        first = space.point_at(indices)
        assert all(first[n] == space.choices[n][0] for n in space.names)
