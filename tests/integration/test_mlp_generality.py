"""The framework generalizes beyond the paper's two workload families.

An MLP (GEMM chain) goes through the generic genome machinery with no
template support: the mapper must discover that fusing the two GEMMs and
staging H on-chip beats the layerwise plan.
"""

import pytest

from repro import arch
from repro.analysis import TileFlowModel
from repro.mapper import (Genome, TileFlowMapper, build_genome_tree,
                          genome_factor_space, shared_tileable_dims)
from repro.tile import Binding, check_tree
from repro.workloads import mlp


@pytest.fixture(scope="module")
def workload():
    return mlp(batch_tokens=256, model_dim=256, hidden_dim=512)


class TestMlpThroughGenericMachinery:
    def test_shared_dims_obey_reduction_rule(self, workload):
        dims = shared_tileable_dims(workload, list(workload.operators))
        # i is shared and tileable; h is fc2's reduction (target) and
        # legal; fc1's reduction k is not shared anyway.
        assert "i" in dims
        assert "h" in dims
        assert "k" not in dims

    def test_fused_tree_valid_and_saves_dram(self, workload):
        spec = arch.edge()
        model = TileFlowModel(spec)
        unfused = build_genome_tree(
            workload, spec, Genome.unfused(workload), {})
        fused_genome = Genome.fully_fused(workload, Binding.SHAR)
        space = genome_factor_space(workload, fused_genome)
        fused = build_genome_tree(workload, spec, fused_genome,
                                  space.default_point())
        assert check_tree(fused) == []
        r_unfused = model.evaluate(unfused)
        r_fused = model.evaluate(fused)
        dram = spec.dram_index
        assert r_fused.traffic[dram].read.get("H", 0) == 0
        assert r_unfused.traffic[dram].read.get("H", 0) > 0

    def test_mapper_prefers_fusion(self, workload):
        mapper = TileFlowMapper(workload, arch.edge(),
                                respect_memory=False, seed=2)
        result = mapper.explore(generations=4, population=8,
                                mcts_samples=10)
        # The champion fuses the two GEMMs.
        assert any(result.best_genome.fuse_edges)
        assert result.best_result.latency_cycles > 0
