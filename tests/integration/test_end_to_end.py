"""Integration tests: full pipelines across modules."""

import pytest

from repro import arch
from repro.analysis import TileFlowModel
from repro.dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                             attention_dataflow, conv_dataflow)
from repro.mapper import TileFlowMapper, tune_template
from repro.dataflows import attention_factor_space
from repro.sim import SimulatedAccelerator
from repro.workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                             attention_from_shape, conv_chain_from_shape)


class TestPaperHeadlines:
    """The qualitative claims of §7, end to end."""

    @pytest.fixture(scope="class")
    def edge_results(self):
        wl = attention_from_shape(ATTENTION_SHAPES["Bert-S"])
        spec = arch.edge()
        model = TileFlowModel(spec)
        return {name: model.evaluate(tmpl(wl, spec))
                for name, tmpl in ATTENTION_DATAFLOWS.items()}

    def test_fusion_beats_layerwise_on_edge(self, edge_results):
        base = edge_results["layerwise"].latency_cycles
        for name in ("flat_hgran", "flat_rgran", "chimera", "tileflow"):
            assert edge_results[name].latency_cycles < base

    def test_tileflow_dataflow_wins(self, edge_results):
        best = min(r.latency_cycles for r in edge_results.values())
        assert edge_results["tileflow"].latency_cycles == best

    def test_fusion_cuts_dram_by_most(self, edge_results):
        base = edge_results["layerwise"].dram_words()
        assert edge_results["flat_rgran"].dram_words() < 0.2 * base

    def test_onchip_movement_stays_high_under_fusion(self, edge_results):
        # DRAM movement collapses under fusion while L1 movement stays on
        # the same order: reuse migrates on-chip (Fig. 10b/10c's point).
        base_l1 = edge_results["layerwise"].onchip_words(1)
        base_dram = edge_results["layerwise"].dram_words()
        fused = edge_results["flat_rgran"]
        assert fused.dram_words() / base_dram < 0.2
        assert fused.onchip_words(1) / base_l1 > 0.3

    def test_read_dominates_l1_breakdown(self, edge_results):
        traffic = edge_results["flat_rgran"].traffic[1]
        shares = {k: v / traffic.total_words
                  for k, v in traffic.breakdown().items()}
        assert shares["read"] > 0.5  # paper: 80.9%

    def test_conv_fused_layer_cuts_dram(self):
        wl = conv_chain_from_shape(CONV_CHAIN_SHAPES["CC3"])
        spec = arch.cloud()
        model = TileFlowModel(spec)
        lw = model.evaluate(conv_dataflow("layerwise", wl, spec))
        fl = model.evaluate(conv_dataflow("fused_layer", wl, spec))
        assert fl.dram_words() < 0.7 * lw.dram_words()


class TestModelVsSimulator:
    def test_cross_validation_small(self):
        spec = arch.validation_accelerator()
        wl = attention_from_shape(ATTENTION_SHAPES["ViT/16-B"])
        wl_small = attention_from_shape(ATTENTION_SHAPES["ViT/16-B"])
        tree = attention_dataflow("flat_rgran", wl_small, spec)
        model = TileFlowModel(spec).evaluate(tree)
        sim = SimulatedAccelerator(spec).run(tree)
        assert 0.2 < model.latency_cycles / sim.cycles < 2.0
        assert 0.5 < model.energy_pj / sim.energy_pj < 2.0


class TestMapperPipeline:
    def test_tuning_never_hurts(self):
        wl = attention_from_shape(ATTENTION_SHAPES["Bert-S"])
        spec = arch.edge()
        model = TileFlowModel(spec)
        default = model.evaluate(
            attention_dataflow("chimera", wl, spec)).latency_cycles
        tuned = tune_template(
            ATTENTION_DATAFLOWS["chimera"],
            attention_factor_space("chimera", wl), wl, spec,
            samples=25, respect_memory=False)
        assert tuned.best_cost <= default * 1.001

    def test_full_space_exploration_finds_fusion(self):
        wl = attention_from_shape(ATTENTION_SHAPES["ViT/16-B"])
        mapper = TileFlowMapper(wl, arch.edge(), respect_memory=False,
                                seed=3)
        result = mapper.explore(generations=4, population=8,
                                mcts_samples=10)
        # The champion should fuse at least two operators.
        assert any(result.best_genome.fuse_edges)

    def test_mapper_result_is_reproducible(self):
        wl = attention_from_shape(ATTENTION_SHAPES["ViT/16-B"])
        r1 = TileFlowMapper(wl, arch.edge(), seed=11).explore(
            generations=2, population=5, mcts_samples=6)
        r2 = TileFlowMapper(wl, arch.edge(), seed=11).explore(
            generations=2, population=5, mcts_samples=6)
        assert r1.best_cost == r2.best_cost


class TestAllShapesAllDataflows:
    @pytest.mark.parametrize("shape", sorted(ATTENTION_SHAPES))
    def test_every_shape_evaluates_on_edge(self, shape):
        wl = attention_from_shape(ATTENTION_SHAPES[shape])
        spec = arch.edge()
        model = TileFlowModel(spec)
        for name, tmpl in ATTENTION_DATAFLOWS.items():
            r = model.evaluate(tmpl(wl, spec))
            assert r.latency_cycles > 0
            assert r.energy_pj > 0

    @pytest.mark.parametrize("shape", sorted(CONV_CHAIN_SHAPES))
    def test_every_conv_shape_evaluates(self, shape):
        wl = conv_chain_from_shape(CONV_CHAIN_SHAPES[shape])
        for spec in (arch.edge(), arch.cloud()):
            model = TileFlowModel(spec)
            for name in CONV_DATAFLOWS:
                r = model.evaluate(conv_dataflow(name, wl, spec))
                assert r.latency_cycles > 0
