"""Integration tests for the experiment harness (reduced budgets)."""

import pytest

from repro import arch
from repro.experiments.comparison import (attention_comparison,
                                          conv_comparison,
                                          format_normalized_cycles,
                                          l1_breakdown)
from repro.experiments.energy_breakdown import energy_breakdown
from repro.experiments.exploration import (factor_tuning_trace,
                                           space_exploration_trace)
from repro.experiments.gpu import gpu_evaluation
from repro.experiments.sensitivity import (bandwidth_sensitivity,
                                           granularity_study, pe_size_sweep)
from repro.experiments.validation import (validate_against_accelerator,
                                          validate_against_polyhedron)


class TestValidationExperiment:
    def test_fig8ab_quick(self):
        result = validate_against_polyhedron(limit=120)
        assert result.count == 120
        assert result.cycle_r2() > 0.95
        assert result.cycle_error() < 0.15

    def test_fig8cd_quick(self):
        result = validate_against_accelerator(limit=24)
        assert result.count == 24
        gb = result.extra_cycles["graph_based"]
        assert len(gb) == 24
        # graph-based should be markedly worse than the tree model
        from repro.experiments.report import mean_abs_error
        assert (mean_abs_error(result.reference_cycles, gb)
                > result.cycle_error())


class TestComparisonExperiment:
    def test_fig10_subset(self):
        result = attention_comparison(arch.edge(), shapes=("Bert-S",))
        gm = result.geomean_speedups()
        assert gm["tileflow"] > gm["layerwise"]
        shares = l1_breakdown(result, "Bert-S")
        assert abs(sum(shares["flat_rgran"].values()) - 1.0) < 1e-6

    def test_fig12_subset(self):
        result = conv_comparison(arch.cloud(), shapes=("CC3",),
                                 tune_samples=0)
        assert "layerwise" in result.geomean_speedups()
        assert format_normalized_cycles(result, "t")


class TestExplorationExperiment:
    def test_fig9a_traces_converge(self):
        traces = factor_tuning_trace("ViT/16-B", samples=12,
                                     dataflows=("chimera", "tileflow"))
        for trace in traces.series.values():
            assert trace[-1] == max(trace)  # normalized best is last

    def test_fig9bc_traces(self):
        from repro.workloads import ATTENTION_SHAPES, attention_from_shape
        wls = {"ViT/16-B":
               attention_from_shape(ATTENTION_SHAPES["ViT/16-B"])}
        traces = space_exploration_trace(wls, generations=2, population=4,
                                         mcts_samples=5)
        assert len(traces.series) == 1


class TestSensitivityExperiments:
    def test_fig14_slowdown_monotone(self):
        sweep = bandwidth_sensitivity("CC3",
                                      bandwidths_gbs=[1, 60, 600])
        for trace in sweep.slowdown.values():
            assert all(a >= b - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_table6_declines_with_pes(self):
        data = pe_size_sweep(sizes=(8, 64))
        assert data[64]["baseline"] < data[8]["baseline"]

    def test_table7_fixed(self):
        rows = granularity_study("fixed")
        labels = [r.dataflow for r in rows]
        assert labels == ["MGran", "BGran", "HGran", "RGran", "TileFlow"]
        by = {r.dataflow: r for r in rows}
        assert by["MGran"].cycles_1e6 > by["RGran"].cycles_1e6

    def test_table8_oom_pattern(self):
        rows = gpu_evaluation(models=("T5",), seq_lens=(1024, 262144))
        big = [r for r in rows if r.seq_len == 262144]
        assert any(r.oom for r in big if r.dataflow == "baseline")
        assert all(not r.oom for r in big if r.dataflow == "TileFlow")

    def test_fig13_l1_growth(self):
        result = energy_breakdown(shapes=("Bert-S",))
        from repro.experiments.energy_breakdown import L1_SIZES
        small = result.average(L1_SIZES[0])
        large = result.average(L1_SIZES[1])
        assert large["L1"] > small["L1"]
