"""Service-vs-CLI equivalence and cross-job cache warmth.

The evaluation service must be a *transport*, not a different mapper:
a search submitted over HTTP produces byte-identical results to the
same search run by the CLI — same champion signature, same
search-category event stream — and its ledger runs diff cleanly
against CLI runs.  Separately, the shared subtree artifact cache must
actually carry across jobs: a second identical evaluate job runs
entirely on warm artifacts.
"""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.obs import ledger as ledger_mod
from repro.serve import EvaluationService, ServiceClient, make_server

SEARCH = {"workload": "Bert-S", "arch": "edge",
          "generations": 2, "population": 4, "samples": 6, "seed": 0}


def _search_events(records):
    """(kind, payload) pairs of the search-category slice of a stream."""
    return [(e["kind"], e["payload"]) for e in records
            if e["cat"] == "search"]


class TestServiceCLIEquivalence:
    @pytest.fixture(scope="class")
    def cli_run(self, tmp_path_factory):
        """One CLI search with --events and --ledger captured."""
        root = tmp_path_factory.mktemp("cli")
        events_file = root / "events.jsonl"
        ledger_dir = root / "runs"
        rc = main(["search", SEARCH["workload"],
                   "--arch", SEARCH["arch"],
                   "--generations", str(SEARCH["generations"]),
                   "--population", str(SEARCH["population"]),
                   "--samples", str(SEARCH["samples"]),
                   "--seed", str(SEARCH["seed"]),
                   "--events", str(events_file),
                   "--ledger", str(ledger_dir), "--quiet"])
        assert rc == 0
        events = [json.loads(line)
                  for line in events_file.read_text().splitlines()
                  if line.strip()]
        ledger = ledger_mod.RunLedger(str(ledger_dir))
        manifest = ledger.load(ledger.run_ids()[-1])
        return events, manifest

    @pytest.fixture(scope="class")
    def service_run(self, tmp_path_factory):
        """The same search through a fresh (cold-cache) service."""
        ledger_dir = tmp_path_factory.mktemp("svc") / "runs"
        svc = EvaluationService(workers=1,
                                ledger_root=str(ledger_dir)).start()
        try:
            job = svc.submit("search", dict(SEARCH))
            assert svc.wait_drained(timeout=300)
            assert job.state == "done", job.error
            manifest = ledger_mod.RunLedger(
                str(ledger_dir)).load(job.run_id)
            return list(job.events), manifest
        finally:
            svc.stop(timeout=5)

    def test_champion_signature_is_byte_identical(self, cli_run,
                                                  service_run):
        _events_a, manifest_a = cli_run
        _events_b, manifest_b = service_run
        sig_a = manifest_a["champion"]["signature"]
        sig_b = manifest_b["champion"]["signature"]
        assert sig_a and sig_a == sig_b
        assert (manifest_a["champion"]["cost"]
                == manifest_b["champion"]["cost"])
        assert (manifest_a["champion"]["genome"]
                == manifest_b["champion"]["genome"])
        assert (manifest_a["champion"]["factors"]
                == manifest_b["champion"]["factors"])

    def test_search_event_streams_are_identical(self, cli_run,
                                                service_run):
        events_a, _ = cli_run
        events_b, _ = service_run
        search_a = _search_events(events_a)
        search_b = _search_events(events_b)
        assert search_a  # the stream is non-trivial
        assert search_a == search_b

    def test_manifests_diff_cleanly(self, cli_run, service_run):
        _ea, manifest_a = cli_run
        _eb, manifest_b = service_run
        diff = ledger_mod.diff_manifests(manifest_a, manifest_b)
        assert diff["comparable"] is True
        assert diff["champion"]["same_signature"] is True
        assert diff["champion"]["regressed"] is False
        # Identical structure: CLI and service manifests carry the same
        # keys (shared builder), so every consumer treats them alike —
        # the service only adds the job-id provenance field.
        assert set(manifest_b) - set(manifest_a) == {"job"}
        assert set(manifest_a) <= set(manifest_b)
        assert (set(manifest_a["champion"])
                == set(manifest_b["champion"]))


class TestCrossJobCacheWarmth:
    def test_second_concurrent_job_runs_warm(self, tmp_path):
        """Two identical evaluate jobs through a 2-worker server: the
        engine lock serializes them, and whichever lands second runs
        entirely on the first job's subtree artifacts (zero misses)."""
        svc = EvaluationService(workers=2,
                                ledger_root=str(tmp_path / "runs")).start()
        httpd = make_server("127.0.0.1", 0, svc)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{httpd.server_address[1]}")
        try:
            spec = {"workload": "Bert-S", "arch": "edge",
                    "dataflow": "layerwise"}
            ids = [client.submit("evaluate", spec)["id"],
                   client.submit("evaluate", spec)["id"]]
            results = [client.result(jid, timeout=60) for jid in ids]
            assert all(r["state"] == "done" for r in results)
            ordered = sorted(results, key=lambda r: r["finished"])
            cold = ordered[0]["result"]["counters"]
            warm = ordered[1]["result"]["counters"]
            # The first job populated the shared cache...
            assert cold["subtree_misses"] > 0
            # ...and the second ran entirely on warm artifacts.
            assert warm["subtree_misses"] == 0
            assert warm["subtree_hits"] > 0
            assert warm["subtree_hits"] > cold["subtree_hits"]
            # The warmth is visible at the API: GET /stats reports the
            # shared cache's nonzero hit total.
            stats = client.stats()
            assert stats["subtree_cache"]["hits"] > 0
            assert stats["jobs"]["done"] == 2
        finally:
            httpd.shutdown()
            httpd.server_close()
            svc.stop(timeout=5)

    def test_jobs_on_different_engines_attribute_exactly(self, tmp_path):
        """Concurrent jobs on different (workload, arch) engines share
        one cache but never pollute each other's counter deltas: each
        cold job sees only its own namespace's misses."""
        svc = EvaluationService(workers=2).start()
        try:
            a = svc.submit("evaluate", {"workload": "Bert-S",
                                        "arch": "edge",
                                        "dataflow": "layerwise"})
            b = svc.submit("evaluate", {"workload": "CC1",
                                        "arch": "edge",
                                        "dataflow": "isos"})
            assert svc.wait_drained(timeout=60)
            assert a.state == "done" and b.state == "done"
            ca, cb = a.result["counters"], b.result["counters"]
            # Both are cold in their own namespace.
            assert ca["subtree_misses"] > 0
            assert cb["subtree_misses"] > 0
            # The shared cache holds the union.
            assert (svc.subtree_cache.misses
                    == ca["subtree_misses"] + cb["subtree_misses"])
        finally:
            svc.stop(timeout=5)


class TestServiceLedgerRuns:
    def test_service_runs_consumable_by_runs_cli(self, tmp_path, capsys):
        """Two service evaluate runs diff via `repro runs diff
        --fail-on-regression` exactly like CLI-produced runs."""
        runs = str(tmp_path / "runs")
        svc = EvaluationService(workers=1, ledger_root=runs).start()
        try:
            spec = {"workload": "Bert-S", "arch": "edge",
                    "dataflow": "layerwise"}
            j1 = svc.submit("evaluate", spec)
            svc.wait_drained(timeout=30)
            j2 = svc.submit("evaluate", spec)
            assert svc.wait_drained(timeout=30)
            assert j1.run_id and j2.run_id
        finally:
            svc.stop(timeout=5)
        rc = main(["runs", "diff", j1.run_id, j2.run_id, "--root", runs,
                   "--fail-on-regression", "--json"])
        assert rc == 0  # identical dataflow: no champion regression
        diff = json.loads(capsys.readouterr().out)
        assert diff["champion"]["regressed"] is False
        assert diff["comparable"] is True
        rc = main(["runs", "list", "--root", runs, "--quiet"])
        assert rc == 0
