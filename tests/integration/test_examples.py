"""The example scripts must run end to end (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "attention_fusion.py",
    "conv_chain_fusion.py",
    "architecture_sweep.py",
])
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_mapper_example_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["mapper_search.py"])
    runpy.run_path(str(EXAMPLES / "mapper_search.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "champion" in out
