"""Unit tests for reporting helpers and result containers."""

import pytest

from repro.analysis import EvaluationResult, LevelTraffic, ResourceUsage
from repro.experiments.report import (format_table, geomean, mean_abs_error,
                                      normalize, r_squared)


class TestLevelTraffic:
    def test_add_and_totals(self):
        lt = LevelTraffic()
        lt.add("fill", "A", 10)
        lt.add("fill", "A", 5)
        lt.add("read", "B", 2)
        assert lt.total("fill") == 15
        assert lt.total_words == 17
        assert lt.breakdown()["read"] == 2


class TestEvaluationResult:
    def _result(self, violations=()):
        traffic = {0: LevelTraffic(), 2: LevelTraffic()}
        traffic[2].add("read", "A", 100)
        traffic[2].add("update", "C", 50)
        return EvaluationResult(
            tree_name="t", arch_name="a", latency_cycles=1000,
            energy_pj=5.0, total_ops=500, traffic=traffic,
            resources=ResourceUsage(num_pe=10),
            violations=list(violations))

    def test_dram_words(self):
        assert self._result().dram_words() == 150

    def test_feasible(self):
        assert self._result().feasible
        assert not self._result(["memory: boom"]).feasible

    def test_utilization(self):
        r = self._result()
        assert r.utilization == pytest.approx(500 / (1000 * 10))

    def test_summary_mentions_violations(self):
        assert "VIOLATIONS" in self._result(["x"]).summary()


class TestReportHelpers:
    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_r_squared_perfect(self):
        assert r_squared([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_r_squared_uncorrelated(self):
        assert r_squared([1, 2, 1, 2], [1, 1, 1, 1]) == 0.0

    def test_r_squared_needs_data(self):
        with pytest.raises(ValueError):
            r_squared([1], [1])

    def test_mean_abs_error(self):
        assert mean_abs_error([10, 10], [9, 11]) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            mean_abs_error([], [])

    def test_format_table(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[1]
        assert len(lines) == 5


class TestCostFunctions:
    def test_latency_cost_modes(self):
        from repro.mapper import latency_cost, INFEASIBLE
        r = EvaluationResult(
            tree_name="t", arch_name="a", latency_cycles=10,
            energy_pj=1, total_ops=1, traffic={},
            resources=ResourceUsage(),
            violations=["memory: too big"])
        assert latency_cost(r, respect_memory=True) == INFEASIBLE
        assert latency_cost(r, respect_memory=False) == 10
        r.violations = ["compute: too many"]
        assert latency_cost(r, respect_memory=False) == INFEASIBLE


class TestToDict:
    def test_round_trips_through_json(self):
        import json
        from repro import arch
        from repro.analysis import TileFlowModel
        from repro.dataflows import attention_dataflow
        from repro.workloads import self_attention
        wl = self_attention(2, 64, 128, expand_softmax=False)
        spec = arch.edge()
        result = TileFlowModel(spec).evaluate(
            attention_dataflow("chimera", wl, spec))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["latency_cycles"] == result.latency_cycles
        assert payload["dram_words"] == result.dram_words()
