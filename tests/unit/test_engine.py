"""Unit tests for the evaluation engine: signatures, cache, prescreen."""

import pytest

from repro import arch
from repro.analysis import TileFlowModel
from repro.engine import (DEFAULT_CACHE_SIZE, EngineStats, EvaluationEngine,
                          LRUCache, arch_fingerprint, compute_demand, digest,
                          factors_fingerprint, genome_fingerprint,
                          is_prescreened, mapping_signature, prescreen,
                          rejected_result, template_signature,
                          workload_fingerprint)
from repro.mapper import (INFEASIBLE, Genome, build_genome_tree,
                          genome_factor_space, latency_cost)
from repro.obs.report import engine_effectiveness, render_profile
from repro.tile import Binding
from repro.workloads import self_attention


@pytest.fixture
def wl():
    return self_attention(2, 32, 64, expand_softmax=False)


@pytest.fixture
def spec():
    return arch.edge()


class TestSignatures:
    def test_factor_order_washes_out(self, wl, spec):
        base = (workload_fingerprint(wl), arch_fingerprint(spec))
        genome = Genome.fully_fused(wl)
        a = mapping_signature(base, genome, {"m_tile": 4, "b_tile": 2})
        b = mapping_signature(base, genome, {"b_tile": 2, "m_tile": 4})
        assert a == b and digest(a) == digest(b)

    def test_same_workload_rebuilt_same_fingerprint(self, spec):
        a = workload_fingerprint(self_attention(2, 32, 64,
                                                expand_softmax=False))
        b = workload_fingerprint(self_attention(2, 32, 64,
                                                expand_softmax=False))
        assert a == b

    def test_distinct_components_distinct_keys(self, wl, spec):
        base = (workload_fingerprint(wl), arch_fingerprint(spec))
        fused = Genome.fully_fused(wl)
        assert (mapping_signature(base, fused, {"x": 1})
                != mapping_signature(base, Genome.unfused(wl), {"x": 1}))
        assert (mapping_signature(base, fused, {"x": 1})
                != mapping_signature(base, fused, {"x": 2}))
        assert (genome_fingerprint(Genome.fully_fused(wl, Binding.PIPE))
                != genome_fingerprint(Genome.fully_fused(wl, Binding.SEQ)))

    def test_arch_fingerprint_sees_level_changes(self, spec):
        assert (arch_fingerprint(spec)
                != arch_fingerprint(spec.with_level("L1",
                                                    capacity_bytes=1024)))
        assert (arch_fingerprint(spec)
                != arch_fingerprint(spec.with_(pe_count=16)))

    def test_template_keys_disambiguate_templates(self, wl, spec):
        base = (workload_fingerprint(wl), arch_fingerprint(spec))
        assert (template_signature(base, "flat#0", {"x": 1})
                != template_signature(base, "chimera#1", {"x": 1}))

    def test_digest_is_short_stable_hex(self):
        sig = ("a", (1, 2), "b")
        assert digest(sig) == digest(("a", (1, 2), "b"))
        assert len(digest(sig)) == 16
        int(digest(sig), 16)  # parses as hex

    def test_factors_fingerprint_coerces(self):
        assert factors_fingerprint({"a": 2}) == (("a", 2),)


class TestLRUCache:
    def test_evicts_oldest(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache and len(cache) == 2
        assert cache.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_counts_hits_and_misses(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert (cache.hits, cache.misses) == (1, 1)

    def test_disabled_when_maxsize_zero(self):
        cache = LRUCache(0)
        assert not cache.enabled
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0

    def test_none_values_never_stored(self):
        cache = LRUCache(2)
        cache.put("a", None)
        assert "a" not in cache


def _tree_for(wl, spec, genome=None, factors=None):
    genome = genome or Genome.fully_fused(wl)
    space = genome_factor_space(wl, genome)
    factors = factors if factors is not None else space.default_point()
    return build_genome_tree(wl, spec, genome, factors)


class TestPrescreen:
    def test_feasible_tree_passes(self, wl, spec):
        assert prescreen(_tree_for(wl, spec), spec) == []

    def test_compute_demand_matches_full_analysis(self, wl, spec):
        tree = _tree_for(wl, spec)
        mac, vec = compute_demand(tree.root)
        result = TileFlowModel(spec).evaluate(tree)
        assert mac == result.resources.num_pe
        assert vec == result.resources.num_vector_pe

    def test_rejects_oversubscribed_compute(self, wl):
        tiny = arch.edge().with_(pe_count=1, vector_pe_count=1)
        tree = _tree_for(wl, tiny)
        problems = prescreen(tree, tiny)
        assert problems and problems[0].startswith("compute:")
        # soundness spot-check: the full model agrees
        result = TileFlowModel(tiny).evaluate(tree)
        assert latency_cost(result, True) == INFEASIBLE

    def test_rejects_oversized_memory(self, wl):
        cramped = arch.edge().with_level("L1", capacity_bytes=256)
        tree = _tree_for(wl, cramped)
        problems = prescreen(tree, cramped)
        assert any(p.startswith("memory:") for p in problems)
        result = TileFlowModel(cramped).evaluate(tree)
        assert latency_cost(result, True) == INFEASIBLE

    def test_check_memory_false_skips_memory(self, wl):
        cramped = arch.edge().with_level("L1", capacity_bytes=256)
        tree = _tree_for(wl, cramped)
        assert prescreen(tree, cramped, check_memory=False) == []

    def test_rejected_result_is_tagged_and_json_safe(self, wl):
        import json
        cramped = arch.edge().with_level("L1", capacity_bytes=256)
        tree = _tree_for(wl, cramped)
        result = rejected_result(tree, cramped,
                                 prescreen(tree, cramped))
        assert is_prescreened(result)
        assert latency_cost(result, True) == INFEASIBLE
        json.dumps(result.to_dict(), allow_nan=False)


class TestEvaluationEngine:
    def test_memoizes_genome_evaluations(self, wl, spec):
        engine = EvaluationEngine(wl, spec)
        genome = Genome.fully_fused(wl)
        factors = genome_factor_space(wl, genome).default_point()
        first = engine.evaluate_genome(genome, factors)
        second = engine.evaluate_genome(genome, factors)
        assert second is first
        assert engine.stats.cache_hits == 1
        assert engine.stats.evaluations == 1

    def test_cache_size_zero_disables_memo(self, wl, spec):
        engine = EvaluationEngine(wl, spec, cache_size=0)
        genome = Genome.fully_fused(wl)
        factors = genome_factor_space(wl, genome).default_point()
        engine.evaluate_genome(genome, factors)
        engine.evaluate_genome(genome, factors)
        assert engine.stats.cache_hits == 0
        assert engine.stats.evaluations == 2

    def test_full_replaces_prescreened_placeholder(self, wl):
        cramped = arch.edge().with_level("L1", capacity_bytes=256)
        engine = EvaluationEngine(wl, cramped)
        genome = Genome.fully_fused(wl)
        factors = genome_factor_space(wl, genome).default_point()
        placeholder = engine.evaluate_genome(genome, factors)
        assert is_prescreened(placeholder)
        full = engine.evaluate_genome(genome, factors, full=True)
        assert not is_prescreened(full)
        assert full.violations  # still infeasible, but fully analysed
        assert full.latency_cycles > 0

    def test_template_points_cached_per_template(self, wl, spec):
        from repro.dataflows import ATTENTION_DATAFLOWS
        engine = EvaluationEngine(wl, spec, respect_memory=False)
        template = ATTENTION_DATAFLOWS["flat_rgran"]
        first = engine.evaluate_template(template, {"b_tile": 1})
        second = engine.evaluate_template(template, {"b_tile": 1})
        assert second is first and engine.stats.cache_hits == 1

    def test_tune_population_serial_matches_tune_genome(self, wl, spec):
        genomes = [Genome.fully_fused(wl), Genome.unfused(wl)]
        seeds = [11, 22]
        batch = EvaluationEngine(wl, spec).tune_population(genomes, seeds,
                                                           samples=5)
        singles = [EvaluationEngine(wl, spec).tune_genome(g, s, 5)
                   for g, s in zip(genomes, seeds)]
        assert batch == singles

    def test_tune_population_length_mismatch(self, wl, spec):
        with pytest.raises(ValueError):
            EvaluationEngine(wl, spec).tune_population(
                [Genome.fully_fused(wl)], [1, 2], samples=3)

    def test_unknown_objective_rejected(self, wl, spec):
        with pytest.raises(ValueError):
            EvaluationEngine(wl, spec, objective="fastest")

    def test_stats_merge_and_hit_rate(self):
        stats = EngineStats(cache_hits=3, cache_misses=1)
        stats.merge({"cache_hits": 1, "evaluations": 2})
        assert stats.cache_hits == 4 and stats.evaluations == 2
        assert stats.hit_rate == pytest.approx(4 / 5)
        assert EngineStats().hit_rate == 0.0


class TestEngineReport:
    def test_no_engine_counters_no_section(self):
        assert engine_effectiveness(None) is None
        assert engine_effectiveness({"mapper.evaluations":
                                     {"kind": "counter", "value": 9}}) is None
        assert "evaluation engine" not in render_profile([], {})

    def test_rates_and_rendering(self):
        metrics = {
            "engine.cache_hits": {"kind": "counter", "value": 30},
            "engine.cache_misses": {"kind": "counter", "value": 10},
            "engine.prescreen_rejects": {"kind": "counter", "value": 4},
            "engine.evaluations": {"kind": "counter", "value": 6},
        }
        eng = engine_effectiveness(metrics)
        assert eng["hit_rate"] == pytest.approx(0.75)
        assert eng["prescreen_reject_rate"] == pytest.approx(0.4)
        text = render_profile([], metrics)
        assert "== evaluation engine ==" in text
        assert "cache hit rate" in text and "75.0%" in text
        assert "prescreen rejection rate" in text and "40.0%" in text
