"""Unit tests for the simulated accelerator and program lowering."""

import pytest

from repro.analysis import TileFlowModel
from repro.arch import validation_accelerator
from repro.dataflows import attention_dataflow
from repro.sim import SimulatedAccelerator, lower
from repro.workloads import self_attention


@pytest.fixture(scope="module")
def setup():
    spec = validation_accelerator()
    wl = self_attention(4, 128, 256, expand_softmax=True)
    tree = attention_dataflow("flat_rgran", wl, spec)
    model = TileFlowModel(spec)
    movement = model.movement(tree)
    return spec, wl, tree, model, movement


class TestSimulator:
    def test_runs_and_is_positive(self, setup):
        spec, wl, tree, model, movement = setup
        report = SimulatedAccelerator(spec).run(tree, movement)
        assert report.cycles > 0
        assert report.energy_pj > 0

    def test_sim_close_to_model(self, setup):
        spec, wl, tree, model, movement = setup
        report = SimulatedAccelerator(spec).run(tree, movement)
        analytic = model.evaluate(tree)
        ratio = analytic.latency_cycles / report.cycles
        assert 0.3 < ratio < 1.5  # same regime, structured deviation

    def test_sim_never_faster_than_steady_state(self, setup):
        spec, wl, tree, model, movement = setup
        report = SimulatedAccelerator(spec).run(tree, movement)
        analytic = model.evaluate(tree)
        # fill/drain and integer effects only ever add time
        assert report.cycles >= 0.5 * analytic.latency_cycles

    def test_energy_close_to_model(self, setup):
        spec, wl, tree, model, movement = setup
        report = SimulatedAccelerator(spec).run(tree, movement)
        analytic = model.evaluate(tree)
        assert abs(report.energy_pj - analytic.energy_pj) \
            < 0.2 * analytic.energy_pj


class TestLowering:
    def test_phase_structure(self, setup):
        spec, wl, tree, model, movement = setup
        program = lower(tree, spec, movement)
        assert program.children  # fusion node with op chains

    def test_instruction_counts(self, setup):
        spec, wl, tree, model, movement = setup
        counts = lower(tree, spec, movement).instruction_counts()
        assert counts["matrix"] > 0   # qk / av tiles
        assert counts["vector"] > 0   # softmax tiles
        assert counts["load"] > 0 and counts["store"] > 0
