"""Unit tests for the slice/box arithmetic, including the Fig. 5 example."""

import pytest

from repro.analysis import (box_volume, delta_volume, movement_recursion,
                            overlap_volume, slice_coverage, slice_extents)
from repro.analysis.slices import loop_displacement, merged_extents
from repro.ir import Operator, Tensor, TensorAccess, Workload, dim
from repro.tile import AnalysisTree, OpTile, spatial, temporal
from repro.analysis.datamovement import DataMovementAnalysis
from repro.arch import edge


class TestBoxMath:
    def test_box_volume(self):
        assert box_volume((4, 6)) == 24
        assert box_volume((4, 0)) == 0

    def test_overlap_volume(self):
        assert overlap_volume((4, 6), (0, 0)) == 24
        assert overlap_volume((4, 6), (0, 4)) == 8
        assert overlap_volume((4, 6), (4, 0)) == 0
        assert overlap_volume((4, 6), (-1, -1)) == 15

    def test_delta_volume(self):
        assert delta_volume((4, 6), (0, 0)) == 0
        assert delta_volume((4, 6), (0, 4)) == 16
        assert delta_volume((4, 6), (9, 0)) == 24

    def test_movement_recursion_no_loops(self):
        assert movement_recursion(24, [], []) == 24

    def test_movement_recursion_fig5(self):
        # Fig. 5: volume 24, outer delta 24, inner delta 16, counts 3/3.
        assert movement_recursion(24, [3, 3], [24, 16]) == 168

    def test_movement_recursion_full_reuse(self):
        assert movement_recursion(10, [5, 7], [0, 0]) == 10

    def test_movement_recursion_mismatched_raises(self):
        with pytest.raises(ValueError):
            movement_recursion(1, [2], [])

    def test_merged_extents(self):
        assert merged_extents([(2, 5), (4, 1)]) == (4, 5)
        with pytest.raises(ValueError):
            merged_extents([(1,), (1, 2)])
        with pytest.raises(ValueError):
            merged_extents([])


def _fig5_tree():
    A = Tensor("A", (12, 14))
    B = Tensor("B", (12, 3))
    C = Tensor("C", (12, 12))
    op = Operator("c1d", {"i": 12, "j": 12, "k": 3},
                  [TensorAccess(A, (dim("i"), dim("j") + dim("k"))),
                   TensorAccess(B, (dim("i"), dim("k")))],
                  TensorAccess(C, (dim("i"), dim("j"))))
    wl = Workload("fig5", [op])
    leaf = OpTile(op, [temporal("i", 3, 4), temporal("j", 3, 4),
                       spatial("i", 4, 1), spatial("j", 4, 1),
                       spatial("k", 3, 1)], level=0)
    return wl, AnalysisTree(wl, leaf), op, leaf


class TestFig5:
    """The paper's worked single-tile example, end to end."""

    def test_slice_extents(self):
        wl, tree, op, leaf = _fig5_tree()
        assert slice_extents(leaf, leaf, op.access("A")) == (4, 6)
        assert slice_extents(leaf, leaf, op.access("B")) == (4, 3)
        assert slice_extents(leaf, leaf, op.access("C")) == (4, 4)

    def test_total_movement_is_168(self):
        wl, tree, op, leaf = _fig5_tree()
        flows = DataMovementAnalysis(tree, edge()).run().flows(leaf)
        assert flows.fills["A"] == 168.0

    def test_b_movement(self):
        wl, tree, op, leaf = _fig5_tree()
        flows = DataMovementAnalysis(tree, edge()).run().flows(leaf)
        # B is reused across j; re-read per i row block: 3 x (4x3).
        assert flows.fills["B"] == 36.0

    def test_c_written_once(self):
        wl, tree, op, leaf = _fig5_tree()
        flows = DataMovementAnalysis(tree, edge()).run().flows(leaf)
        assert flows.updates["C"] == 144.0  # full C, no re-writes


class TestLoopDisplacement:
    def test_forward_only(self):
        t = Tensor("A", (64, 64))
        a = TensorAccess(t, (dim("i"), dim("j")))
        d = loop_displacement(a, temporal("i", 4, 8), [])
        assert d == (8, 0)

    def test_wraparound_of_inner(self):
        t = Tensor("A", (64, 64))
        a = TensorAccess(t, (dim("i"), dim("j")))
        inner = [temporal("j", 4, 4)]
        d = loop_displacement(a, temporal("i", 4, 8), inner)
        assert d == (8, -12)
