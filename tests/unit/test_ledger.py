"""Unit tests for the run ledger, diff, Chrome export, and explain."""

import json

import pytest

from repro import arch, obs, workloads
from repro.obs import events
from repro.obs import ledger as ledger_mod
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def clean_obs():
    yield
    events.disable()
    obs.disable()
    obs_metrics.registry().reset()


def _manifest(run_id, cost, signature="sig-a", counters=None, config=None):
    return ledger_mod.build_manifest(
        run_id=run_id, command="search",
        workload={"name": "Bert-S", "fingerprint": "wfp"},
        arch={"name": "Edge", "fingerprint": "afp"},
        config=config or {"generations": 2},
        seeds={"seed": 0},
        champion={"cost": cost, "signature": signature},
        counters=counters or {"evaluations": 10},
        wall_s=1.5)


class TestLedger:
    def test_record_and_load_roundtrip(self, tmp_path):
        ledger = ledger_mod.RunLedger(str(tmp_path / "runs"))
        manifest = _manifest("runA", 100.0)
        path = ledger.record(manifest)
        assert path.endswith("manifest.json")
        assert ledger.run_ids() == ["runA"]
        loaded = ledger.load("runA")
        assert loaded == json.loads(json.dumps(manifest))
        assert loaded["version"] == ledger_mod.MANIFEST_VERSION

    def test_new_run_id_never_collides(self, tmp_path):
        ledger = ledger_mod.RunLedger(str(tmp_path / "runs"))
        first = ledger.new_run_id(salt="x")
        ledger.record(_manifest(first, 1.0))
        second = ledger.new_run_id(salt="x")
        assert second != first

    def test_bad_run_id_rejected(self, tmp_path):
        ledger = ledger_mod.RunLedger(str(tmp_path))
        with pytest.raises(ledger_mod.LedgerError):
            ledger.record(_manifest("../escape", 1.0))
        with pytest.raises(ledger_mod.LedgerError):
            ledger.record(_manifest("", 1.0))

    def test_load_missing_run_lists_known(self, tmp_path):
        ledger = ledger_mod.RunLedger(str(tmp_path))
        ledger.record(_manifest("runA", 1.0))
        with pytest.raises(ledger_mod.LedgerError, match="runA"):
            ledger.load("nope")


class TestDiff:
    def test_detects_injected_champion_regression(self):
        a = _manifest("runA", 100.0)
        b = _manifest("runB", 150.0, signature="sig-b")
        diff = ledger_mod.diff_manifests(a, b)
        assert diff["champion"]["regressed"] is True
        assert diff["champion"]["ratio"] == pytest.approx(1.5)
        assert not diff["champion"]["same_signature"]
        assert "REGRESSION" in ledger_mod.render_diff(diff)

    def test_improvement_and_tolerance_are_ok(self):
        a = _manifest("runA", 100.0)
        assert not ledger_mod.diff_manifests(
            a, _manifest("runB", 90.0))["champion"]["regressed"]
        # 3% worse within a 5% tolerance is not a regression.
        assert not ledger_mod.diff_manifests(
            a, _manifest("runB", 103.0),
            tolerance=0.05)["champion"]["regressed"]
        assert ledger_mod.diff_manifests(
            a, _manifest("runB", 106.0),
            tolerance=0.05)["champion"]["regressed"]

    def test_lost_feasibility_is_a_regression(self):
        a = _manifest("runA", 100.0)
        b = _manifest("runB", None)
        assert ledger_mod.diff_manifests(a, b)["champion"]["regressed"]
        # Baseline infeasible: any finite champion is an improvement.
        assert not ledger_mod.diff_manifests(b, a)["champion"]["regressed"]

    def test_counter_and_config_changes_reported(self):
        a = _manifest("runA", 100.0, counters={"evaluations": 10})
        b = _manifest("runB", 100.0, counters={"evaluations": 12},
                      config={"generations": 4})
        diff = ledger_mod.diff_manifests(a, b)
        assert diff["counters"]["evaluations"] == {"a": 10, "b": 12}
        assert diff["config"]["generations"] == {"a": 2, "b": 4}
        assert diff["comparable"] is True


class TestChromeExport:
    def test_spans_become_complete_events(self):
        from repro.obs.export import chrome_trace
        tracer = obs.enable()
        with obs.span("outer", "mapper", tree="t"):
            with obs.span("inner", "analysis"):
                pass
        obs.disable()
        doc = chrome_trace(tracer.spans, obs.metrics_snapshot())
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("X") == 2 and phases.count("M") == 1
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        outer = next(e for e in xs if e["name"] == "outer")
        assert outer["args"]["tree"] == "t"
        # Strict JSON end to end.
        json.dumps(doc, allow_nan=False)


class TestExplain:
    def test_provenance_matches_engine_counters(self):
        from repro.obs.explain import explain_tree, render_explain
        from repro.engine import EvaluationEngine
        from repro.dataflows import attention_dataflow
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        spec = arch.edge()
        tree = attention_dataflow("flat_rgran", wl, spec)
        engine = EvaluationEngine(wl, spec)
        report = explain_tree(tree, spec, engine=engine)

        warm = report["rounds"]["warm"]
        warm_hits = sum(d["hits"] for d in warm["subtree_by_kind"].values())
        warm_misses = sum(d["misses"]
                          for d in warm["subtree_by_kind"].values())
        # The per-kind provenance is exactly the engine's own counter
        # movement during the warm round.
        assert warm_hits == warm["engine_delta"].get("subtree_hits", 0)
        assert warm_misses == warm["engine_delta"].get("subtree_misses", 0)
        assert warm_hits > 0, "warm round should reuse cached artifacts"

        cold = report["rounds"]["cold"]
        cold_misses = sum(d["misses"]
                          for d in cold["subtree_by_kind"].values())
        assert cold_misses == cold["engine_delta"].get("subtree_misses", 0)
        assert report["provenance"]["context_memo_hits"] > 0
        assert report["prescreen"]["feasible"] is True
        assert report["prescreen"]["codes"] == []

        text = render_explain(report)
        assert "artifact provenance" in text
        assert "passes every cheap bound" in text
        json.dumps(report, allow_nan=False)

    def test_reports_the_bound_that_fired(self):
        from repro.obs.explain import explain_tree, render_explain
        from repro.dataflows import attention_dataflow
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        tight = arch.edge().with_level("L1", capacity_bytes=64)
        tree = attention_dataflow("flat_rgran", wl, tight)
        report = explain_tree(tree, tight)
        pre = report["prescreen"]
        assert pre["feasible"] is False
        assert any(c.startswith(("memory.capacity:", "compute."))
                   for c in pre["codes"])
        assert len(pre["codes"]) == len(pre["violations"])
        assert "REJECTED" in render_explain(report)


class TestScope:
    def test_scope_isolates_sequential_runs(self):
        obs.enable()
        registry = obs.metrics_registry()
        registry.counter("engine.evaluations").inc(5)
        with registry.scope() as scope:
            registry.counter("engine.evaluations").inc(3)
            registry.histogram("engine.task_seconds").observe(1.0)
        delta = scope.delta()
        assert delta["engine.evaluations"]["value"] == 3
        assert delta["engine.task_seconds"]["count"] == 1
        # Untouched metrics are omitted entirely.
        registry.counter("mapper.evaluations").inc(2)
        with registry.scope() as scope2:
            pass
        assert "engine.evaluations" not in scope2.delta()
        obs.disable()

    def test_tune_template_reports_per_run_metrics(self):
        from repro.mapper.mapper import tune_template
        from repro.dataflows.attention_dataflows import ATTENTION_DATAFLOWS
        from repro.dataflows import attention_dataflow
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        spec = arch.edge()

        def template(w, a, factors):
            return attention_dataflow("flat_rgran", w, a)

        obs.enable()
        first = tune_template(template, {"b": [1, 2]}, wl, spec, samples=4)
        second = tune_template(template, {"b": [1, 2]}, wl, spec, samples=4)
        obs.disable()
        assert first.run_metrics is not None
        assert second.run_metrics is not None
        # Process-global counters keep accumulating, but each result's
        # scope sees only its own run.
        f = first.run_metrics.get("engine.cache_misses", {}).get("value", 0)
        s = second.run_metrics.get("engine.cache_misses", {}).get("value", 0)
        assert f > 0 and s > 0
        total = obs.metrics_snapshot()["engine.cache_misses"]["value"]
        assert total >= f + s
        # run_metrics never leaks into the serialized result payload.
        assert "run_metrics" not in first.to_dict()
