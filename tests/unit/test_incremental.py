"""Unit tests for the incremental evaluation layer.

Covers the contracts the perf work leans on:

* ``AnalysisContext.invalidate`` re-arms a context after an in-place
  tree mutation — re-analysis is byte-identical to a fresh context, and
  untouched sibling subtrees are served from the surviving
  fingerprint-keyed memos.
* Foreign-node queries raise :class:`ForeignNodeError` (never stale
  geometry), with a message that points at ``invalidate()``.
* :class:`SubtreeArtifactCache` / :class:`KindStore` semantics: the
  global entry bound, insertion-order eviction, the ``None`` miss
  sentinel, and per-kind stats.
* Engine plumbing: ``subtree_hits``/``subtree_misses`` move only when
  incremental evaluation is on; the EDP partial path counts skipped
  energy passes; the obs profile renders the incremental section.
"""

import random

import pytest

from repro import arch as arch_mod
from repro import obs
from repro.analysis import AnalysisContext, TileFlowModel
from repro.engine import EvaluationEngine
from repro.engine.cache import SubtreeArtifactCache
from repro.errors import ForeignNodeError
from repro.mapper import Genome, build_genome_tree, genome_factor_space
from repro.workloads import self_attention

WL = self_attention(2, 32, 64, expand_softmax=False)
SPEC = arch_mod.edge()


def _loops_repr(node):
    return tuple(repr(lp) for lp in node.loops)


def _genome_trees(seed=7):
    """Two structurally identical trees at different factor points."""
    rng = random.Random(seed)
    genome = Genome.random(WL, rng)
    space = genome_factor_space(WL, genome)
    a = space.random_point(rng)
    b = space.random_point(rng)
    while b == a:
        b = space.random_point(rng)
    return (build_genome_tree(WL, SPEC, genome, a),
            build_genome_tree(WL, SPEC, genome, b))


# ----------------------------------------------------------------------
# invalidate() semantics
# ----------------------------------------------------------------------
def test_invalidate_reanalysis_matches_fresh_context():
    """Mutate loops in place, invalidate, re-run: equals a fresh eval."""
    tree1, tree2 = _genome_trees()
    model = TileFlowModel(SPEC)
    ctx = model.context(tree1)
    before = model.evaluate(tree1, context=ctx).to_dict()

    # Graft tree2's loop configuration onto tree1's nodes in place —
    # exactly what a mapper move on a live tree does.
    for n1, n2 in zip(tree1.root.walk(), tree2.root.walk()):
        n1.loops = n2.loops
    ctx.invalidate()
    after = model.evaluate(tree1, context=ctx).to_dict()

    fresh = model.evaluate(tree2).to_dict()
    after["tree"] = fresh["tree"] = None  # names differ, nothing else may
    before["tree"] = None
    assert after == fresh
    assert after != before


def test_invalidate_keeps_untouched_sibling_memos():
    """Only the mutated path recomputes; siblings reuse their slices."""
    tree1, tree2 = _genome_trees()
    model = TileFlowModel(SPEC)
    ctx = model.context(tree1)
    model.evaluate(tree1, context=ctx)

    groups = tree1.root.children_nodes()
    others = tree2.root.children_nodes()
    assert len(groups) >= 2, "attention genome trees have several groups"
    # Pick a group whose loop configuration actually differs between the
    # two factor points, and any other group as the untouched sibling.
    idx = next(i for i, (g, o) in enumerate(zip(groups, others))
               if any(_loops_repr(n) != _loops_repr(m)
                      for n, m in zip(g.walk(), o.walk())))
    mutated = groups[idx]
    untouched = groups[(idx + 1) % len(groups)]
    sibling_slices = ctx.node_slices(untouched)
    mutated_slices = ctx.node_slices(mutated)

    for n1, n2 in zip(mutated.walk(), others[idx].walk()):
        n1.loops = n2.loops
    ctx.invalidate(mutated)
    model.evaluate(tree1, context=ctx)

    # Same fingerprint -> same memo entry (object identity, not just
    # equality); the mutated group got fresh geometry.
    assert ctx.node_slices(untouched) is sibling_slices
    assert ctx.node_slices(mutated) is not mutated_slices


def test_invalidate_rejects_foreign_subtree():
    tree1, tree2 = _genome_trees()
    ctx = AnalysisContext(tree1, SPEC)
    with pytest.raises(ForeignNodeError):
        ctx.invalidate(tree2.root.children_nodes()[0])


def test_loops_setter_refreshes_split_memos():
    """The cached temporal/spatial split must follow in-place moves."""
    tree1, tree2 = _genome_trees()
    node, other = next(
        (n, m) for n, m in zip(tree1.root.walk(), tree2.root.walk())
        if _loops_repr(n) != _loops_repr(m))
    node.trip_count  # populate the split memo with the old loops
    node.loops = other.loops
    assert _loops_repr(node) == _loops_repr(other)
    assert [repr(lp) for lp in node.temporal_loops] == [
        repr(lp) for lp in other.temporal_loops]
    assert (node.temporal_trip_count, node.spatial_trip_count) == (
        other.temporal_trip_count, other.spatial_trip_count)


# ----------------------------------------------------------------------
# Foreign-node queries
# ----------------------------------------------------------------------
def test_foreign_node_query_raises():
    tree1, tree2 = _genome_trees()
    ctx = AnalysisContext(tree1, SPEC)
    foreign = tree2.root.children_nodes()[0]
    with pytest.raises(ForeignNodeError) as err:
        ctx.node_slices(foreign)
    assert "invalidate()" in str(err.value)
    with pytest.raises(ForeignNodeError):
        ctx.fingerprint(foreign)


# ----------------------------------------------------------------------
# SubtreeArtifactCache / KindStore
# ----------------------------------------------------------------------
def test_kind_store_basic_roundtrip_and_stats():
    cache = SubtreeArtifactCache(maxsize=10)
    store = cache.store("ns", "slices")
    assert store is cache.store("ns", "slices")
    assert cache.store("ns", "walkvol") is not store

    store.put("a", 1)
    assert store.data.get("a") == 1
    assert len(cache) == 1
    store.put("a", 2)  # overwrite, no new entry
    assert len(cache) == 1

    store.put("none", None)  # the miss sentinel is not storable
    assert "none" not in store.data

    stats = cache.stats()
    assert stats["entries"] == 1
    assert set(stats["hits_by_kind"]) == {"slices", "walkvol"}

    cache.clear()
    assert len(cache) == 0
    assert store.data == {}


def test_cache_bound_is_global_and_evicts_oldest():
    cache = SubtreeArtifactCache(maxsize=3)
    a = cache.store("ns", "a")
    b = cache.store("ns", "b")
    a.put("a1", 1)
    a.put("a2", 2)
    b.put("b1", 3)
    assert len(cache) == 3
    a.put("a3", 4)  # over the bound: evict the oldest entry of store a
    assert len(cache) == 3
    assert "a1" not in a.data and "a3" in a.data
    assert cache.evictions == 1

    # A fresh kind inserted into a full cache steals from the largest.
    c = cache.store("ns", "c")
    c.put("c1", 5)
    assert len(cache) == 3
    assert "c1" in c.data


def test_zero_size_cache_stores_nothing():
    cache = SubtreeArtifactCache(maxsize=0)
    store = cache.store("ns", "x")
    store.put("k", 1)
    assert store.data == {} and len(cache) == 0


def test_shared_memos_survive_across_contexts():
    """A second context over an identical tree hits the shared store."""
    tree1, _ = _genome_trees()
    cache = SubtreeArtifactCache()
    model = TileFlowModel(SPEC)
    r1 = model.evaluate(tree1,
                        context=model.context(tree1, artifact_cache=cache))
    assert cache.misses > 0 and len(cache) > 0

    tree1b, _ = _genome_trees()  # same seed -> structurally identical
    misses_before = cache.misses
    r2 = model.evaluate(tree1b,
                        context=model.context(tree1b, artifact_cache=cache))
    assert cache.hits > 0
    assert cache.misses == misses_before  # nothing recomputed
    assert r1.to_dict() == r2.to_dict()


# ----------------------------------------------------------------------
# Engine counters + obs profile
# ----------------------------------------------------------------------
def test_engine_subtree_counters_track_the_cache():
    rng = random.Random(3)
    genome = Genome.random(WL, rng)
    space = genome_factor_space(WL, genome)
    points = [space.random_point(rng) for _ in range(4)]

    engine = EvaluationEngine(WL, SPEC, incremental=True)
    for point in points:
        engine.evaluate_genome(genome, point)
    assert engine.subtree_cache is not None
    assert engine.stats.subtree_misses > 0
    assert engine.stats.subtree_hits > 0  # points share subtree configs
    assert engine.stats.subtree_hits + engine.stats.subtree_misses == sum(
        engine.subtree_cache.counts())

    plain = EvaluationEngine(WL, SPEC, incremental=False)
    for point in points:
        plain.evaluate_genome(genome, point)
    assert plain.subtree_cache is None
    assert plain.stats.subtree_hits == plain.stats.subtree_misses == 0


def test_edp_partial_path_counts_skipped_energy():
    cramped = SPEC.with_level("L1", capacity_bytes=256)
    engine = EvaluationEngine(WL, cramped, objective="edp",
                              prescreen=False)
    rng = random.Random(0)
    skipped = 0
    for _ in range(8):
        genome = Genome.random(WL, rng)
        factors = genome_factor_space(WL, genome).random_point(rng)
        engine.evaluate_genome(genome, factors)
        skipped = engine.stats.edp_energy_skipped
        if skipped:
            break
    assert skipped > 0


def test_profile_renders_incremental_section():
    obs.enable()
    try:
        engine = EvaluationEngine(WL, SPEC, incremental=True)
        rng = random.Random(5)
        genome = Genome.random(WL, rng)
        factors = genome_factor_space(WL, genome).random_point(rng)
        engine.evaluate_genome(genome, factors)
        engine.evaluate_genome(genome, factors)
        metrics = obs.metrics_snapshot()
    finally:
        tracer = obs.disable()
    text = obs.render_profile(tracer.spans, metrics)
    assert "== incremental analysis ==" in text
    assert "subtree artifact hit rate" in text
