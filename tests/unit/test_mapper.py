"""Unit tests for the mapper: factor spaces, MCTS, genomes, GA."""

import random

import pytest

from repro import arch
from repro.mapper import (EDGE_BINDINGS, FactorSpace, Genome, GeneticExplorer,
                          INFEASIBLE, MCTSTuner, RandomSearch,
                          build_genome_tree, count_factorizations,
                          factorizations, genome_factor_space, latency_cost,
                          shared_tileable_dims)
from repro.tile import Binding, check_tree
from repro.workloads import self_attention, conv_chain


class TestFactorizations:
    def test_two_parts(self):
        assert set(factorizations(6, 2)) == {(1, 6), (2, 3), (3, 2),
                                             (6, 1)}

    def test_one_part(self):
        assert list(factorizations(8, 1)) == [(8,)]

    def test_products_correct(self):
        for f in factorizations(24, 3):
            assert f[0] * f[1] * f[2] == 24

    def test_count(self):
        assert count_factorizations(4, 2) == 3  # 1*4, 2*2, 4*1

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            list(factorizations(4, 0))


class TestFactorSpace:
    def test_size(self):
        space = FactorSpace({"a": [1, 2], "b": [1, 2, 3]})
        assert space.size == 6

    def test_point_at(self):
        space = FactorSpace({"a": [1, 2], "b": [4, 8]})
        assert space.point_at([1, 0]) == {"a": 2, "b": 4}

    def test_default_point(self):
        space = FactorSpace({"a": [1, 2, 3]})
        assert space.default_point() == {"a": 2}

    def test_neighbors(self):
        space = FactorSpace({"a": [1, 2, 3]})
        ns = list(space.neighbors({"a": 2}))
        assert {n["a"] for n in ns} == {1, 3}

    def test_empty_choice_rejected(self):
        with pytest.raises(ValueError):
            FactorSpace({"a": []})


class TestMCTS:
    def test_finds_optimum_in_small_space(self):
        space = FactorSpace({"x": [1, 2, 4, 8], "y": [1, 2, 4, 8]})
        target = {"x": 4, "y": 2}

        def cost(p):
            return abs(p["x"] - target["x"]) + abs(p["y"] - target["y"]) + 1

        tuner = MCTSTuner(space, cost, seed=3)
        point, best = tuner.search(64)
        assert point == target and best == 1

    def test_history_monotone(self):
        space = FactorSpace({"x": list(range(1, 9))})
        tuner = MCTSTuner(space, lambda p: p["x"], seed=1)
        tuner.search(20)
        assert all(a >= b for a, b in
                   zip(tuner.history, tuner.history[1:]))

    def test_failures_dont_crash(self):
        space = FactorSpace({"x": [1, 2]})

        def cost(p):
            raise RuntimeError("boom")

        tuner = MCTSTuner(space, cost, seed=1)
        point, best = tuner.search(5)
        assert best == INFEASIBLE

    def test_empty_space(self):
        tuner = MCTSTuner(FactorSpace({}), lambda p: 7.0)
        point, best = tuner.search(3)
        assert point == {} and best == 7.0

    def test_random_search_baseline(self):
        space = FactorSpace({"x": list(range(1, 20))})
        rs = RandomSearch(space, lambda p: p["x"], seed=0)
        point, best = rs.search(100)
        assert best <= 3


class TestGenome:
    @pytest.fixture
    def wl(self):
        return self_attention(2, 32, 64, expand_softmax=False)

    def test_groups(self, wl):
        g = Genome((True, False), (Binding.PIPE, Binding.SEQ))
        groups = g.groups(wl)
        assert [len(x) for x in groups] == [2, 1]

    def test_group_binding(self, wl):
        g = Genome((True, False), (Binding.PIPE, Binding.SEQ))
        assert g.group_binding(wl, 0) is Binding.PIPE
        assert g.group_binding(wl, 1) is Binding.SEQ

    def test_unfused_and_fully_fused(self, wl):
        assert len(Genome.unfused(wl).groups(wl)) == 3
        assert len(Genome.fully_fused(wl).groups(wl)) == 1

    def test_crossover_preserves_length(self, wl):
        rng = random.Random(0)
        a = Genome.random(wl, rng)
        b = Genome.random(wl, rng)
        child = a.crossover(b, rng)
        assert len(child.fuse_edges) == len(a.fuse_edges)

    def test_mutate_changes_something_eventually(self, wl):
        rng = random.Random(0)
        g = Genome.unfused(wl)
        mutated = [g.mutate(rng, rate=0.9) for _ in range(10)]
        assert any(m != g for m in mutated)

    def test_describe(self, wl):
        g = Genome.fully_fused(wl, Binding.PIPE)
        assert "Pipe(" in g.describe(wl)


class TestGenericTree:
    @pytest.fixture
    def wl(self):
        return self_attention(2, 64, 64, expand_softmax=False)

    def test_shared_dims_respect_reduction_rule(self, wl):
        group = list(wl.operators)
        dims = shared_tileable_dims(wl, group)
        assert "k" not in dims  # qk's reduction, S consumed inside
        assert "m" in dims

    def test_factor_space_per_group(self, wl):
        genome = Genome.fully_fused(wl)
        space = genome_factor_space(wl, genome)
        assert space.size > 1

    def test_tree_valid_for_random_genomes(self, wl):
        rng = random.Random(7)
        spec = arch.edge()
        for _ in range(10):
            genome = Genome.random(wl, rng)
            space = genome_factor_space(wl, genome)
            factors = space.random_point(rng)
            tree = build_genome_tree(wl, spec, genome, factors)
            assert check_tree(tree) == []

    def test_tree_valid_for_conv(self):
        wl = conv_chain(16, 28, 28, 32, 32)
        spec = arch.cloud()
        genome = Genome.fully_fused(wl, Binding.SHAR)
        space = genome_factor_space(wl, genome)
        tree = build_genome_tree(wl, spec, genome, space.default_point())
        assert check_tree(tree) == []


class TestGeneticExplorer:
    def test_improves_or_holds(self):
        wl = self_attention(2, 64, 64, expand_softmax=False)
        spec = arch.edge()
        from repro.mapper import TileFlowMapper
        mapper = TileFlowMapper(wl, spec, seed=5)
        result = mapper.explore(generations=3, population=6,
                                mcts_samples=8)
        assert result.best_cost != INFEASIBLE
        assert result.best_result.latency_cycles > 0
        # best-so-far trace should not regress
        best = float("inf")
        for c in result.trace:
            best = min(best, c)
        assert result.best_cost <= best + 1e-9

    def test_survivor_bounds(self):
        wl = self_attention(2, 64, 64, expand_softmax=False)
        with pytest.raises(ValueError):
            GeneticExplorer(wl, lambda g, f: 1.0, population=4,
                            survivors=9)


class TestMapperResult:
    def _result(self, trace):
        import json

        from repro.mapper import TileFlowMapper
        wl = self_attention(2, 32, 64, expand_softmax=False)
        mapper = TileFlowMapper(wl, arch.edge(), seed=0)
        result = mapper.explore(generations=1, population=4,
                                mcts_samples=3)
        result.trace = list(trace)
        return result

    def test_normalized_trace_guards_non_monotone(self):
        # A regressing per-generation trace (survivor re-tuned worse)
        # must normalize against the best-so-far cummin, not raw values.
        result = self._result([5.0, 3.0, 4.0, 2.0])
        assert result.cummin_trace() == [5.0, 3.0, 3.0, 2.0]
        normalized = result.normalized_trace()
        assert normalized == [2.0 / 5.0, 2.0 / 3.0, 2.0 / 3.0, 1.0]
        # monotone non-decreasing, ending at exactly 1
        assert all(a <= b + 1e-12 for a, b in
                   zip(normalized, normalized[1:]))
        assert normalized[-1] == 1.0

    def test_normalized_trace_with_infeasible_prefix(self):
        result = self._result([INFEASIBLE, INFEASIBLE, 4.0, 8.0])
        assert result.normalized_trace() == [0.0, 0.0, 1.0, 1.0]

    def test_normalized_trace_all_infeasible(self):
        result = self._result([INFEASIBLE, INFEASIBLE])
        assert result.normalized_trace() == [0.0, 0.0]

    def test_to_dict_is_strict_json(self):
        import json
        result = self._result([5.0, INFEASIBLE, 2.0])
        payload = result.to_dict()
        text = json.dumps(payload, allow_nan=False)  # no Infinity/NaN
        assert json.loads(text)["trace"] == [5.0, None, 2.0]
        assert payload["best_so_far_trace"] == [5.0, 5.0, 2.0]
        assert payload["best_factors"] == result.best_factors
        assert payload["result"]["latency_cycles"] > 0
        assert isinstance(payload["best_genome"], str)
