"""Unit tests for analysis-tree structure."""

import pytest

from repro.errors import TreeValidationError
from repro.tile import (AnalysisTree, Binding, FusionNode, OpTile,
                        op_coverage_below, render_notation, spatial,
                        temporal)
from repro.workloads import self_attention, matmul


def _mm_tree(m=64):
    wl = matmul(m, m, m)
    op = wl.operators[0]
    leaf = OpTile(op, [temporal("k", m), spatial("i", 8), spatial("j", 8)],
                  level=0)
    top = OpTile(op, [temporal("i", m // 8, 8), temporal("j", m // 8, 8)],
                 level=1, child=leaf)
    return wl, AnalysisTree(wl, top)


def _fused_tree():
    wl = self_attention(1, 16, 32, expand_softmax=False)
    chains = []
    for op in wl.operators:
        loops = [temporal(d, n) for d, n in op.dims.items() if n > 1]
        chains.append(OpTile(op, loops, level=0))
    root = FusionNode([], level=1, children=chains, binding=Binding.SHAR)
    return wl, AnalysisTree(wl, root)


class TestStructure:
    def test_walk_and_leaves(self):
        wl, tree = _mm_tree()
        nodes = list(tree.nodes())
        assert len(nodes) == 2
        assert len(list(tree.root.leaves())) == 1

    def test_parents_and_ancestors(self):
        wl, tree = _mm_tree()
        leaf = tree.leaf("mm")
        assert leaf.parent is tree.root
        assert list(leaf.ancestors()) == [tree.root]

    def test_trip_counts(self):
        wl, tree = _mm_tree(64)
        leaf = tree.leaf("mm")
        assert leaf.temporal_trip_count == 64
        assert leaf.spatial_trip_count == 64
        assert tree.root.trip_count == 64

    def test_missing_leaf_rejected(self):
        wl = self_attention(1, 16, 32, expand_softmax=False)
        op = wl.operators[0]
        lonely = OpTile(op, [temporal(d, n) for d, n in op.dims.items()],
                        level=0)
        with pytest.raises(TreeValidationError):
            AnalysisTree(wl, lonely)

    def test_single_parent_enforced(self):
        wl, tree = _mm_tree()
        leaf = tree.leaf("mm")
        with pytest.raises(TreeValidationError):
            OpTile(wl.operators[0], [], level=1, child=leaf)

    def test_op_tile_rejects_foreign_dim(self):
        wl = matmul(8, 8, 8)
        with pytest.raises(TreeValidationError):
            OpTile(wl.operators[0], [temporal("zz", 2)], level=0)

    def test_fusion_needs_children(self):
        with pytest.raises(TreeValidationError):
            FusionNode([], level=1, children=[])

    def test_op_path(self):
        wl, tree = _fused_tree()
        path = tree.op_path("qk")
        assert path[0] is tree.root
        assert path[-1].op.name == "qk"


class TestTensorHome:
    def test_intermediate_home_is_fusion_node(self):
        wl, tree = _fused_tree()
        assert tree.tensor_home("S") is tree.root
        assert tree.tensor_home("L") is tree.root

    def test_external_tensors_have_no_home(self):
        wl, tree = _fused_tree()
        assert tree.tensor_home("Q") is None
        assert tree.tensor_home("A") is None


class TestRendering:
    def test_render_contains_labels(self):
        wl, tree = _fused_tree()
        text = tree.render()
        assert "qk" in text and "Shar" in text

    def test_notation_lists_levels_and_bindings(self):
        wl, tree = _fused_tree()
        text = render_notation(tree)
        assert "level 1:" in text
        assert "Shar(" in text

    def test_notation_marks_spatial(self):
        wl, tree = _mm_tree()
        text = render_notation(tree)
        assert "'" in text  # spatial prime markers


class TestCoverage:
    def test_full_coverage(self):
        wl, tree = _mm_tree(64)
        cov = op_coverage_below(tree.root, wl.operators[0])
        assert cov == {"i": 64, "j": 64, "k": 64}

    def test_partial_coverage_below_leaf(self):
        wl, tree = _mm_tree(64)
        leaf = tree.leaf("mm")
        cov = op_coverage_below(leaf, wl.operators[0])
        assert cov == {"i": 8, "j": 8, "k": 64}
