"""Unit tests for the evaluation service: job state machine, HTTP API,
cache-counter thread-safety, and explain-on-service-runs."""

import http.client
import json
import threading
import time

import pytest

from repro.engine.cache import SubtreeArtifactCache
from repro.obs import events
from repro.serve import (EvaluationService, InvalidTransition, JobQueue,
                         QueueClosed, QueueFull, SpecError, UnknownJob,
                         make_server)


@pytest.fixture(autouse=True)
def clean_events():
    yield
    events.disable()
    events.disable(local=True)


# ---------------------------------------------------------------------------
# Job queue state machine.

class TestJobQueue:
    def test_submit_claim_finish_lifecycle(self):
        q = JobQueue()
        job = q.submit("evaluate", {"workload": "Bert-S"})
        assert job.state == "queued"
        assert q.depth() == 1
        claimed = q.claim(timeout=1)
        assert claimed is job
        assert job.state == "running"
        assert job.started is not None
        q.finish(job, {"answer": 42})
        assert job.state == "done"
        assert job.result == {"answer": 42}
        assert job.finished is not None
        assert q.by_state()["done"] == 1

    def test_fail_path(self):
        q = JobQueue()
        job = q.submit("evaluate", {})
        q.claim(timeout=1)
        q.fail(job, "boom")
        assert job.state == "failed"
        assert job.error == "boom"

    def test_cancel_only_from_queued(self):
        q = JobQueue()
        job = q.submit("evaluate", {})
        assert q.cancel(job.id) is True
        assert job.state == "cancelled"
        # Cancelled jobs are out of the pending queue.
        assert q.depth() == 0
        # A running job cannot be cancelled.
        job2 = q.submit("evaluate", {})
        q.claim(timeout=1)
        assert q.cancel(job2.id) is False
        assert job2.state == "running"
        with pytest.raises(UnknownJob):
            q.cancel("job-999999")

    def test_invalid_transitions_raise(self):
        q = JobQueue()
        job = q.submit("evaluate", {})
        with pytest.raises(InvalidTransition):
            q.finish(job, {})  # queued, never claimed
        q.claim(timeout=1)
        q.finish(job, {})
        with pytest.raises(InvalidTransition):
            q.fail(job, "late")  # already done

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            JobQueue().submit("compile", {})

    def test_backpressure_and_close(self):
        q = JobQueue(max_queue=2)
        q.submit("evaluate", {})
        q.submit("evaluate", {})
        with pytest.raises(QueueFull):
            q.submit("evaluate", {})
        assert q.rejected_full == 1
        q.close()
        with pytest.raises(QueueClosed):
            q.submit("evaluate", {})
        assert q.rejected_closed == 1
        # Claim drains the backlog, then returns None (worker exit).
        assert q.claim(timeout=1) is not None
        assert q.claim(timeout=1) is not None
        assert q.claim(timeout=1) is None
        assert q.drained() is False  # two jobs still "running"

    def test_event_stream_wait(self):
        q = JobQueue()
        job = q.submit("evaluate", {})
        job.append_event({"kind": "a"})
        fresh, done = job.wait_events(0, timeout=0)
        assert [e["kind"] for e in fresh] == ["a"]
        assert done is False  # job not terminal yet
        q.claim(timeout=1)
        q.finish(job, {})
        fresh, done = job.wait_events(1, timeout=0)
        assert fresh == [] and done is True


# ---------------------------------------------------------------------------
# Spec validation (the HTTP 400 layer).

class TestSpecValidation:
    def test_unknown_workload_arch_dataflow(self):
        svc = EvaluationService()
        with pytest.raises(SpecError):
            svc.validate_spec("evaluate", {"workload": "nope"})
        with pytest.raises(SpecError):
            svc.validate_spec("evaluate", {"workload": "Bert-S",
                                           "arch": "tpu"})
        with pytest.raises(SpecError):
            svc.validate_spec("evaluate", {"workload": "Bert-S",
                                           "dataflow": "nope"})
        with pytest.raises(SpecError):
            svc.validate_spec("sweep", {"workload": "CC1",
                                        "dataflows": ["flat"]})

    def test_search_bounds(self):
        svc = EvaluationService()
        spec = svc.validate_spec("search", {"workload": "Bert-S"})
        assert spec["generations"] >= 1 and spec["samples"] >= 1
        with pytest.raises(SpecError):
            svc.validate_spec("search", {"workload": "Bert-S",
                                         "generations": 0})
        with pytest.raises(SpecError):
            svc.validate_spec("search", {"workload": "Bert-S",
                                         "samples": 10 ** 9})


# ---------------------------------------------------------------------------
# Cache counter thread-safety (satellite: concurrent readers must not
# lose hit/miss increments).

class TestCacheCounterConcurrency:
    def test_concurrent_hits_are_exact(self):
        cache = SubtreeArtifactCache(1024)
        store = cache.store("ns", "slices")
        store.put("k", "v")
        per_thread, threads = 5000, 8

        def hammer():
            for _ in range(per_thread):
                if store.data.get("k") is not None:
                    store.hit()
                store.miss()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert store.hits == per_thread * threads
        assert store.misses == per_thread * threads
        assert cache.counts("ns") == (per_thread * threads,
                                      per_thread * threads)

    def test_concurrent_puts_respect_bound(self):
        cache = SubtreeArtifactCache(64)
        stores = [cache.store("ns", f"k{i}") for i in range(4)]

        def fill(store, base):
            for i in range(200):
                store.put((base, i), i)

        workers = [threading.Thread(target=fill, args=(s, n))
                   for n, s in enumerate(stores)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        live = sum(len(s.data) for s in stores)
        assert live == cache.total <= 64
        assert cache.eviction_count == 4 * 200 - live

    def test_namespace_scoped_counts(self):
        cache = SubtreeArtifactCache(64)
        a = cache.store("nsA", "slices")
        b = cache.store("nsB", "slices")
        a.hit(3), a.miss(1), b.hit(10)
        assert cache.counts("nsA") == (3, 1)
        assert cache.counts("nsB") == (10, 0)
        assert cache.counts() == (13, 1)
        assert cache.counts_by_kind("nsA") == {"slices": (3, 1, 0)}


# ---------------------------------------------------------------------------
# HTTP API via http.client on an ephemeral port.

@pytest.fixture
def server(tmp_path):
    svc = EvaluationService(workers=1, max_queue=4,
                            ledger_root=str(tmp_path / "runs")).start()
    httpd = make_server("127.0.0.1", 0, svc, max_body=2048)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd, svc
    httpd.shutdown()
    httpd.server_close()
    svc.stop(timeout=5)


def _request(httpd, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1",
                                      httpd.server_address[1], timeout=30)
    headers = {}
    data = None
    if body is not None:
        data = json.dumps(body)
        headers["Content-Type"] = "application/json"
    conn.request(method, path, body=data, headers=headers)
    resp = conn.getresponse()
    raw = resp.read()
    conn.close()
    payload = json.loads(raw) if raw else None
    return resp.status, payload, dict(resp.getheaders())


class TestHTTPAPI:
    def test_healthz_and_stats(self, server):
        httpd, _svc = server
        status, payload, _ = _request(httpd, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"
        status, payload, _ = _request(httpd, "GET", "/stats")
        assert status == 200
        assert payload["queue"]["max"] == 4
        assert "subtree_cache" in payload

    def test_submit_poll_result(self, server):
        httpd, _svc = server
        status, job, _ = _request(httpd, "POST", "/jobs", {
            "kind": "evaluate",
            "spec": {"workload": "Bert-S", "arch": "edge",
                     "dataflow": "layerwise"}})
        assert status == 202 and job["state"] in ("queued", "running")
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status, job, _ = _request(httpd, "GET", f"/jobs/{job['id']}")
            if job["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert job["state"] == "done"
        assert job["result"]["feasible"] is True
        assert job["result"]["latency_cycles"] > 0
        assert job["run_id"]  # persisted to the ledger

    def test_events_endpoint_streams_run_framing(self, server):
        httpd, svc = server
        _status, job, _ = _request(httpd, "POST", "/jobs", {
            "kind": "evaluate",
            "spec": {"workload": "Bert-S", "dataflow": "layerwise"}})
        svc.wait_drained(timeout=30)
        conn = http.client.HTTPConnection(
            "127.0.0.1", httpd.server_address[1], timeout=30)
        conn.request("GET", f"/jobs/{job['id']}/events")
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type") == "application/x-ndjson"
        lines = [json.loads(line) for line in resp.read().splitlines()
                 if line.strip()]
        conn.close()
        kinds = [e["kind"] for e in lines]
        assert kinds[0] == "run.start" and kinds[-1] == "run.end"
        assert all(e["type"] == "event" for e in lines)

    def test_error_statuses(self, server):
        httpd, _svc = server
        # 400: bad spec.
        status, payload, _ = _request(httpd, "POST", "/jobs", {
            "kind": "evaluate", "spec": {"workload": "nope"}})
        assert status == 400 and "nope" in payload["error"]
        # 400: bad kind.
        status, _, _ = _request(httpd, "POST", "/jobs",
                                {"kind": "compile", "spec": {}})
        assert status == 400
        # 404: unknown job / unknown route.
        assert _request(httpd, "GET", "/jobs/job-999999")[0] == 404
        assert _request(httpd, "GET", "/nope")[0] == 404
        # 409: cancel of a finished job.
        _status, job, _ = _request(httpd, "POST", "/jobs", {
            "kind": "evaluate",
            "spec": {"workload": "Bert-S", "dataflow": "layerwise"}})
        _svc.wait_drained(timeout=30)
        assert _request(httpd, "DELETE", f"/jobs/{job['id']}")[0] == 409

    def test_body_cap_and_missing_length(self, server):
        httpd, _svc = server
        # 413: body over the 2 KiB cap.
        big = {"kind": "evaluate",
               "spec": {"workload": "Bert-S", "dataflow": "layerwise",
                        "pad": "x" * 4096}}
        assert _request(httpd, "POST", "/jobs", big)[0] == 413
        # 411: no Content-Length.
        conn = http.client.HTTPConnection(
            "127.0.0.1", httpd.server_address[1], timeout=10)
        conn.putrequest("POST", "/jobs")
        conn.endheaders()
        assert conn.getresponse().status == 411
        conn.close()

    def test_queue_full_returns_429(self, server):
        httpd, svc = server
        # Stall the single worker with a long-ish search, then overfill
        # the 4-slot queue with cheap jobs.
        body = {"kind": "search",
                "spec": {"workload": "Bert-S", "generations": 4,
                         "population": 6, "samples": 20}}
        cheap = {"kind": "evaluate",
                 "spec": {"workload": "Bert-S", "dataflow": "layerwise"}}
        assert _request(httpd, "POST", "/jobs", body)[0] == 202
        statuses = [_request(httpd, "POST", "/jobs", cheap)[0]
                    for _ in range(6)]
        assert 429 in statuses
        assert svc.stats()["queue"]["rejected_full"] >= 1
        svc.wait_drained(timeout=60)

    def test_drain_returns_503_with_retry_after(self, server):
        httpd, svc = server
        assert _request(httpd, "POST", "/admin/drain")[0] == 202
        status, payload, headers = _request(httpd, "POST", "/jobs", {
            "kind": "evaluate",
            "spec": {"workload": "Bert-S", "dataflow": "layerwise"}})
        assert status == 503
        assert "Retry-After" in headers
        status, payload, _ = _request(httpd, "GET", "/healthz")
        assert status == 503 and payload["status"] == "draining"

    def test_cancel_queued_job(self, server):
        httpd, svc = server
        # Block the worker, then cancel a queued successor.
        _request(httpd, "POST", "/jobs", {
            "kind": "search",
            "spec": {"workload": "Bert-S", "generations": 3,
                     "population": 6, "samples": 15}})
        _status, queued, _ = _request(httpd, "POST", "/jobs", {
            "kind": "evaluate",
            "spec": {"workload": "Bert-S", "dataflow": "layerwise"}})
        status, payload, _ = _request(httpd, "DELETE",
                                      f"/jobs/{queued['id']}")
        if status == 200:  # worker had not claimed it yet
            assert payload["state"] == "cancelled"
            status, job, _ = _request(httpd, "GET",
                                      f"/jobs/{queued['id']}")
            assert job["state"] == "cancelled"
        else:  # tiny race: the worker claimed it first
            assert status == 409
        svc.wait_drained(timeout=60)


# ---------------------------------------------------------------------------
# Cache administration: clear_cache semantics, the /admin/cache/clear
# endpoint, the /stats tiers block, and L3 warm-start across restarts.

_EVAL_SPEC = {"workload": "Bert-S", "arch": "edge", "dataflow": "layerwise"}


def _analytical(result):
    """A job result minus run bookkeeping (timings, counters, ledger
    ids) — the part the tier byte-identity contract covers."""
    return {k: v for k, v in result.items()
            if k not in ("wall_s", "counters", "run_id")}


class TestCacheAdmin:
    def test_clear_cache_drops_entries_keeps_counters(self, tmp_path):
        svc = EvaluationService(workers=1,
                                cache_dir=str(tmp_path / "c")).start()
        try:
            svc.submit("evaluate", dict(_EVAL_SPEC))
            assert svc.wait_drained(timeout=30)
            cache = svc.subtree_cache
            assert cache.total > 0 and cache.misses > 0
            misses = cache.misses
            out = svc.clear_cache()
            assert out["cleared"] is True
            assert out["entries_dropped"] > 0
            assert out["counters_reset"] is False
            assert cache.total == 0
            # Lifetime counters deliberately survive a clear...
            assert cache.misses == misses
            # ...and only an explicit reset zeroes them.
            out = svc.clear_cache(reset_counters=True)
            assert out["counters_reset"] is True
            assert cache.counts() == (0, 0)
            assert cache.eviction_count == 0
        finally:
            svc.stop(timeout=5)

    def test_stats_tiers_block_and_restart_warm_start(self, tmp_path):
        cache_dir = str(tmp_path / "cache")

        svc = EvaluationService(workers=1, cache_dir=cache_dir).start()
        try:
            job = svc.submit("evaluate", dict(_EVAL_SPEC))
            assert svc.wait_drained(timeout=30)
            cold_result = _analytical(job.result)
            tiers = svc.stats()["subtree_cache"]["tiers"]
            assert tiers["policy"] == "segmented"
            assert tiers["l3"]["attached"] is True
            assert tiers["l3"]["persist"] is True
            assert tiers["l3"]["hits"] == 0  # nothing on disk yet
            assert tiers["l2"]["attached"] is False
        finally:
            svc.stop(timeout=5)  # flushes the tiered kinds to disk

        svc2 = EvaluationService(workers=1, cache_dir=cache_dir).start()
        try:
            job = svc2.submit("evaluate", dict(_EVAL_SPEC))
            assert svc2.wait_drained(timeout=30)
            warm_result = _analytical(job.result)
            stats = svc2.stats()["subtree_cache"]
            assert stats["tiers"]["l3"]["hits"] > 0, "restart stayed cold"
            # Tier-served artifacts surface per kind in by_kind.
            assert any(entry.get("l3_hits")
                       for entry in stats["by_kind"].values())
            assert warm_result == cold_result
        finally:
            svc2.stop(timeout=5)

    def test_http_cache_clear_endpoint(self, server):
        httpd, svc = server
        _request(httpd, "POST", "/jobs",
                 {"kind": "evaluate", "spec": dict(_EVAL_SPEC)})
        assert svc.wait_drained(timeout=30)
        assert svc.subtree_cache.total > 0
        status, payload, _ = _request(httpd, "POST", "/admin/cache/clear",
                                      {"reset_counters": True})
        assert status == 200
        assert payload["cleared"] is True and payload["counters_reset"]
        assert svc.subtree_cache.total == 0
        assert svc.subtree_cache.counts() == (0, 0)
        # The body is optional: no Content-Length is an empty options
        # object here, not a 411 (nothing is required to be said).
        conn = http.client.HTTPConnection(
            "127.0.0.1", httpd.server_address[1], timeout=10)
        conn.putrequest("POST", "/admin/cache/clear")
        conn.endheaders()
        resp = conn.getresponse()
        assert resp.status == 200
        assert json.loads(resp.read())["cleared"] is True
        conn.close()
        # ... and so is an explicit Content-Length: 0 (curl -X POST).
        conn = http.client.HTTPConnection(
            "127.0.0.1", httpd.server_address[1], timeout=10)
        conn.request("POST", "/admin/cache/clear", body=b"")
        resp = conn.getresponse()
        assert resp.status == 200
        assert json.loads(resp.read())["cleared"] is True
        conn.close()


# ---------------------------------------------------------------------------
# explain --run on service-produced manifests (regression: the service
# ledger is a first-class explain source).

class TestExplainServiceRun:
    def test_explain_run_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        svc = EvaluationService(workers=1,
                                ledger_root=str(tmp_path / "runs")).start()
        try:
            job = svc.submit("evaluate", {"workload": "Bert-S",
                                          "arch": "edge",
                                          "dataflow": "layerwise"})
            assert svc.wait_drained(timeout=30)
            assert job.state == "done" and job.run_id
            rc = main(["explain", "--run", job.run_id,
                       "--root", str(tmp_path / "runs"), "--json"])
            assert rc == 0
            report = json.loads(capsys.readouterr().out)
            assert report["workload"] == "Bert-S"
            assert report["result"]["violations"] == []
            assert report["prescreen"]["feasible"] is True
        finally:
            svc.stop(timeout=5)

    def test_explain_search_run_matches_champion(self, tmp_path):
        from repro.obs import explain as explain_mod
        from repro.obs import ledger as ledger_mod

        svc = EvaluationService(workers=1,
                                ledger_root=str(tmp_path / "runs")).start()
        try:
            job = svc.submit("search", {"workload": "Bert-S",
                                        "generations": 2, "population": 4,
                                        "samples": 5})
            assert svc.wait_drained(timeout=120)
            assert job.state == "done"
            manifest = ledger_mod.RunLedger(
                str(tmp_path / "runs")).load(job.run_id)
            tree, arch = explain_mod.tree_from_manifest(manifest)
            # The rebuilt tree is the champion: same genome description.
            assert manifest["champion"]["genome"] in tree.name
        finally:
            svc.stop(timeout=5)

    def test_explain_run_rejects_drifted_fingerprint(self, tmp_path):
        from repro.obs import explain as explain_mod
        from repro.obs.ledger import LedgerError, RunLedger

        ledger = RunLedger(str(tmp_path / "runs"))
        ledger.record({
            "run_id": "r1", "command": "evaluate",
            "workload": {"name": "Bert-S", "fingerprint": "stale"},
            "arch": {"name": "Edge"},
            "champion": {"dataflow": "layerwise"}})
        with pytest.raises(LedgerError, match="fingerprint"):
            explain_mod.tree_from_manifest(ledger.load("r1"))
