"""Unit tests for the polyhedron and graph-based baseline models."""

import pytest

from repro.arch import validation_accelerator
from repro.baselines import (GraphBasedModel, MappingLoop,
                             PolyhedronMapping, PolyhedronModel)
from repro.errors import MappingError
from repro.workloads import matmul, self_attention


def _mapping(m=64):
    return PolyhedronMapping(levels=[
        [MappingLoop("i", 4, spatial=True), MappingLoop("i", m // 32),
         MappingLoop("j", m // 8), MappingLoop("k", m // 8)],
        [MappingLoop("k", 8), MappingLoop("i", 8, spatial=True),
         MappingLoop("j", 8, spatial=True)],
    ])


class TestPolyhedronMapping:
    def test_validate_coverage(self):
        wl = matmul(64, 64, 64)
        _mapping().validate(wl.operators[0])

    def test_validate_rejects_bad_coverage(self):
        wl = matmul(128, 64, 64)
        with pytest.raises(MappingError):
            _mapping().validate(wl.operators[0])

    def test_coverage_below_includes_level_spatial(self):
        cov = _mapping().coverage_below(1)
        assert cov["i"] == 8 and cov["j"] == 8
        assert "k" not in cov or cov.get("k", 1) == 1

    def test_spatial_size(self):
        assert _mapping().spatial_size() == 4 * 64


class TestPolyhedronModel:
    def test_rejects_multi_operator(self):
        wl = self_attention(1, 16, 32, expand_softmax=False)
        with pytest.raises(MappingError):
            PolyhedronModel(validation_accelerator()).evaluate(
                wl, _mapping())

    def test_basic_evaluation(self):
        wl = matmul(64, 64, 64)
        res = PolyhedronModel(validation_accelerator()).evaluate(
            wl, _mapping())
        assert res.cycles > 0 and res.energy_pj > 0
        # compute floor: 64^3 / (4*64 lanes)
        assert res.compute_cycles == pytest.approx(64 ** 3 / 256)

    def test_inputs_loaded_at_least_once(self):
        wl = matmul(64, 64, 64)
        res = PolyhedronModel(validation_accelerator()).evaluate(
            wl, _mapping())
        l1 = res.traffic_words[validation_accelerator().dram_index - 1]
        assert l1["A"] >= 64 * 64
        assert l1["B"] >= 64 * 64

    def test_wrong_level_count_rejected(self):
        wl = matmul(64, 64, 64)
        bad = PolyhedronMapping(levels=[_mapping().levels[0]])
        with pytest.raises(MappingError):
            PolyhedronModel(validation_accelerator()).evaluate(wl, bad)


class TestGraphBased:
    def test_strips_intermediate_transfers(self):
        wl = self_attention(2, 64, 128, expand_softmax=False)
        gb = GraphBasedModel(validation_accelerator())
        res = gb.evaluate(wl)
        assert res.stripped_cycles > 0
        assert res.cycles > 0

    def test_unsupported_workload(self):
        from repro.ir import Operator, Tensor, Workload, simple_access
        a = Tensor("A", (4,))
        b = Tensor("B", (4,))
        op = Operator("solo", {"i": 4}, [simple_access(a, "i")],
                      simple_access(b, "i"))
        with pytest.raises(MappingError):
            GraphBasedModel(validation_accelerator()).evaluate(
                Workload("solo", [op]))
