"""Unit tests for the experiment-harness modules (reduced budgets)."""

import pytest

from repro import arch
from repro.experiments.comparison import (ComparisonResult, DataflowRow,
                                          attention_comparison,
                                          format_dram_movement,
                                          format_normalized_cycles,
                                          format_onchip_movement,
                                          format_utilization)
from repro.experiments.gpu import GpuRow, format_gpu
from repro.experiments.validation import (enumerate_matmul_mappings,
                                          matmul_tree)
from repro.workloads import matmul


class TestMatmulEnumeration:
    def test_count_and_uniqueness(self):
        mappings = enumerate_matmul_mappings(limit=1152)
        assert len(mappings) == 1152
        labels = [m[0] for m in mappings]
        assert len(set(labels)) == len(labels)

    def test_every_mapping_valid_both_ways(self):
        wl = matmul(256, 256, 256)
        spec = arch.validation_accelerator()
        for label, mapping, tree_spec in \
                enumerate_matmul_mappings(limit=20):
            mapping.validate(wl.operators[0])
            tree = matmul_tree(wl, spec, tree_spec)
            assert tree.root.level == 1


class TestComparisonFormatting:
    @pytest.fixture(scope="class")
    def result(self):
        return attention_comparison(arch.edge(), shapes=("ViT/16-B",))

    def test_speedups_baseline_is_one(self, result):
        sp = result.speedups()
        assert sp["ViT/16-B"]["layerwise"] == pytest.approx(1.0)

    def test_formatters_produce_tables(self, result):
        for fn, args in ((format_normalized_cycles, ("t",)),
                         (format_dram_movement, ("t",)),
                         (format_utilization, ("t",))):
            text = fn(result, *args)
            assert "ViT/16-B" in text
        text = format_onchip_movement(result, 1, "t")
        assert "layerwise" in text

    def test_by_shape_grouping(self, result):
        table = result.by_shape()
        assert set(table) == {"ViT/16-B"}
        assert "tileflow" in table["ViT/16-B"]


class TestGpuFormatting:
    def test_oom_cells(self):
        rows = [GpuRow("T5", 1024, "baseline", 1.0, False),
                GpuRow("T5", 4096, "baseline", None, True),
                GpuRow("T5", 1024, "TileFlow", 0.5, False),
                GpuRow("T5", 4096, "TileFlow", 2.0, False)]
        text = format_gpu(rows)
        assert "OOM" in text
        assert "1k" in text and "4k" in text
