"""Unit tests for workload DAGs and the workload library."""

import pytest

from repro.errors import WorkloadError
from repro.ir import Operator, Tensor, Workload, simple_access
from repro.workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                             batched_matmul, conv_chain, matmul,
                             self_attention)


def _chain_workload():
    a = Tensor("A", (4,))
    b = Tensor("B", (4,))
    c = Tensor("C", (4,))
    op1 = Operator("p", {"i": 4}, [simple_access(a, "i")],
                   simple_access(b, "i"), kind="exp")
    op2 = Operator("q", {"i": 4}, [simple_access(b, "i")],
                   simple_access(c, "i"), kind="exp")
    return Workload("chain", [op1, op2])


class TestWorkloadStructure:
    def test_classification(self):
        wl = _chain_workload()
        assert [t.name for t in wl.input_tensors()] == ["A"]
        assert [t.name for t in wl.intermediate_tensors()] == ["B"]
        assert [t.name for t in wl.output_tensors()] == ["C"]

    def test_producer_consumers(self):
        wl = _chain_workload()
        assert wl.producer("B").name == "p"
        assert wl.producer("A") is None
        assert [o.name for o in wl.consumers("B")] == ["q"]

    def test_dependency_chain(self):
        assert _chain_workload().dependency_chain() == [("p", "B", "q")]

    def test_is_intermediate(self):
        wl = _chain_workload()
        assert wl.is_intermediate("B")
        assert not wl.is_intermediate("A")
        assert not wl.is_intermediate("C")

    def test_rejects_duplicate_producers(self):
        a = Tensor("A", (4,))
        b = Tensor("B", (4,))
        op1 = Operator("p", {"i": 4}, [simple_access(a, "i")],
                       simple_access(b, "i"))
        op2 = Operator("q", {"i": 4}, [simple_access(a, "i")],
                       simple_access(b, "i"))
        with pytest.raises(WorkloadError):
            Workload("bad", [op1, op2])

    def test_rejects_consumer_before_producer(self):
        a = Tensor("A", (4,))
        b = Tensor("B", (4,))
        c = Tensor("C", (4,))
        produce = Operator("p", {"i": 4}, [simple_access(a, "i")],
                           simple_access(b, "i"))
        consume = Operator("q", {"i": 4}, [simple_access(b, "i")],
                           simple_access(c, "i"))
        with pytest.raises(WorkloadError):
            Workload("bad", [consume, produce])

    def test_rejects_duplicate_op_names(self):
        a = Tensor("A", (4,))
        b = Tensor("B", (4,))
        c = Tensor("C", (4,))
        op1 = Operator("p", {"i": 4}, [simple_access(a, "i")],
                       simple_access(b, "i"))
        op2 = Operator("p", {"i": 4}, [simple_access(b, "i")],
                       simple_access(c, "i"))
        with pytest.raises(WorkloadError):
            Workload("bad", [op1, op2])

    def test_rejects_shape_conflict(self):
        a = Tensor("A", (4,))
        a2 = Tensor("A", (8,))
        b = Tensor("B", (4,))
        c = Tensor("C", (8,))
        op1 = Operator("p", {"i": 4}, [simple_access(a, "i")],
                       simple_access(b, "i"))
        op2 = Operator("q", {"i": 8}, [simple_access(a2, "i")],
                       simple_access(c, "i"))
        with pytest.raises(WorkloadError):
            Workload("bad", [op1, op2])

    def test_lookups_raise_for_unknown(self):
        wl = _chain_workload()
        with pytest.raises(WorkloadError):
            wl.operator("nope")
        with pytest.raises(WorkloadError):
            wl.tensor("nope")


class TestMatmulBuilders:
    def test_matmul_ops(self):
        wl = matmul(8, 8, 8)
        assert wl.total_ops == 512
        assert not wl.intermediate_tensors()

    def test_batched_matmul(self):
        wl = batched_matmul(2, 4, 4, 4)
        assert wl.operators[0].dims["b"] == 2
        assert wl.total_ops == 2 * 64


class TestAttentionBuilder:
    def test_expanded_has_seven_ops(self):
        wl = self_attention(4, 64, 128)
        assert len(wl.operators) == 7
        assert {t.name for t in wl.intermediate_tensors()} == \
            {"S", "Mx", "Sub", "E", "Sm", "L"}

    def test_compact_has_three_ops(self):
        wl = self_attention(4, 64, 128, expand_softmax=False)
        assert [op.name for op in wl.operators] == ["qk", "softmax", "av"]
        assert {t.name for t in wl.intermediate_tensors()} == {"S", "L"}

    def test_head_dim_division(self):
        with pytest.raises(ValueError):
            self_attention(3, 64, 128)

    def test_total_ops_counts_both_matmuls(self):
        wl = self_attention(1, 8, 8, expand_softmax=False)
        # qk: 8*8*8, av: 8*8*8, softmax: 8*8*5
        assert wl.total_ops == 512 + 512 + 320

    def test_batch_dimension(self):
        wl = self_attention(2, 16, 32, batch=4)
        assert wl.operator("qk").dims["b"] == 4

    def test_shape_table_complete(self):
        assert len(ATTENTION_SHAPES) == 11
        assert ATTENTION_SHAPES["Bert-S"].head_dim == 64


class TestConvChainBuilder:
    def test_shapes(self):
        wl = conv_chain(8, 16, 16, 12, 10, kernel=3)
        assert wl.tensor("Act").shape == (16, 16, 12)
        assert wl.tensor("Out").shape == (14, 14, 10)
        assert wl.tensor("Im").shape == (18, 18, 8)

    def test_shared_spatial_dims(self):
        wl = conv_chain(8, 16, 16, 12, 10)
        assert wl.operator("conv1").dims["p"] == 16
        assert wl.operator("conv2").dims["p"] == 14

    def test_reductions(self):
        wl = conv_chain(8, 16, 16, 12, 10)
        assert wl.operator("conv2").reduction_dims == \
            frozenset({"u", "v", "c1"})

    def test_kernel_one(self):
        wl = conv_chain(4, 8, 8, 4, 4, kernel=1)
        assert wl.tensor("Out").shape == (8, 8, 4)

    def test_rejects_tiny_spatial(self):
        with pytest.raises(ValueError):
            conv_chain(4, 2, 2, 4, 4, kernel=3)

    def test_shape_table(self):
        assert len(CONV_CHAIN_SHAPES) == 5
        assert CONV_CHAIN_SHAPES["CC1"].in_channels == 64
