"""Unit tests for architecture specifications and presets."""

import pytest

from repro.arch import (Architecture, MemoryLevel, by_name, cloud, edge,
                        gpu_like, level_energy_pj, sram_access_energy_pj,
                        validation_accelerator)
from repro.errors import ArchitectureError


class TestMemoryLevel:
    def test_bytes_per_cycle(self):
        lv = MemoryLevel("L1", 1024, 60.0)
        assert lv.bytes_per_cycle(1.0) == 60.0
        assert lv.bytes_per_cycle(2.0) == 30.0

    def test_with_override(self):
        lv = MemoryLevel("L1", 1024, 60.0)
        lv2 = lv.with_(bandwidth_gbs=120.0)
        assert lv2.bandwidth_gbs == 120.0
        assert lv.bandwidth_gbs == 60.0

    def test_rejects_bad_values(self):
        with pytest.raises(ArchitectureError):
            MemoryLevel("L1", 0, 60.0)
        with pytest.raises(ArchitectureError):
            MemoryLevel("L1", 1024, -1.0)
        with pytest.raises(ArchitectureError):
            MemoryLevel("", 1024, 60.0)

    def test_write_energy_defaults_to_read(self):
        lv = MemoryLevel("L1", 1024, 60.0, read_energy_pj=2.0)
        assert lv.write_energy_pj == 2.0


class TestArchitecture:
    def test_level_lookup(self):
        spec = edge()
        assert spec.level_index("DRAM") == spec.dram_index
        assert spec.level(0).name == "Reg"
        with pytest.raises(ArchitectureError):
            spec.level_index("L9")

    def test_outermost_must_be_unbounded(self):
        with pytest.raises(ArchitectureError):
            Architecture("bad", (MemoryLevel("Reg", 64, 10.0),
                                 MemoryLevel("L1", 64, 10.0)),
                         pe_count=4)

    def test_fanout_monotonicity(self):
        with pytest.raises(ArchitectureError):
            Architecture("bad",
                         (MemoryLevel("Reg", 64, 10.0, fanout=1),
                          MemoryLevel("DRAM", None, 10.0, fanout=2)),
                         pe_count=4)

    def test_with_level(self):
        spec = edge().with_level("L1", capacity_bytes=1024)
        assert spec.level(spec.level_index("L1")).capacity_bytes == 1024

    def test_with_pe_override(self):
        assert edge().with_(pe_count=64).pe_count == 64

    def test_compute_units_by_kind(self):
        spec = validation_accelerator()
        assert spec.compute_units("mac") == spec.pe_count
        assert spec.compute_units("exp") == spec.vector_pe_count
        assert spec.vector_pe_count < spec.pe_count

    def test_on_chip_levels_exclude_dram(self):
        spec = cloud()
        assert all(lv.capacity_bytes is not None
                   for lv in spec.on_chip_levels())


class TestPresets:
    def test_edge_matches_table4(self):
        spec = edge()
        assert spec.pe_count == 32 * 32
        assert spec.level(spec.level_index("L1")).capacity_bytes == \
            4 * 1024 * 1024
        assert spec.dram.bandwidth_gbs == 60.0

    def test_cloud_matches_table4(self):
        spec = cloud()
        assert spec.pe_count == 256 * 256
        assert spec.level(spec.level_index("L2")).fanout == 4
        assert spec.level(spec.level_index("L1")).fanout == 64
        assert spec.dram.bandwidth_gbs == 384.0

    def test_validation_accelerator(self):
        spec = validation_accelerator()
        assert spec.frequency_ghz == 0.4
        assert spec.vector_pe_count == 4 * 16 * 3
        assert spec.dram.bandwidth_gbs == 25.6

    def test_gpu_like_has_l2(self):
        spec = gpu_like()
        assert spec.num_levels == 4

    def test_by_name(self):
        assert by_name("edge").name == "Edge"
        with pytest.raises(KeyError):
            by_name("tpu-v9")


class TestEnergyModel:
    def test_sram_scaling_is_monotonic(self):
        assert (sram_access_energy_pj(1024 * 1024)
                > sram_access_energy_pj(32 * 1024))

    def test_sqrt_scaling(self):
        small = sram_access_energy_pj(32 * 1024)
        large = sram_access_energy_pj(4 * 32 * 1024)
        assert large == pytest.approx(2 * small)

    def test_level_energy_dispatch(self):
        assert level_energy_pj("DRAM", None) > \
            level_energy_pj("L1", 1024 * 1024)
        assert level_energy_pj("Reg", 1024) < 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sram_access_energy_pj(0)
