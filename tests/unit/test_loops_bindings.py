"""Unit tests for tiling loops and binding primitives."""

import pytest

from repro.errors import TreeValidationError
from repro.tile import (PARA, PIPE, SEQ, SHAR, Binding, Loop, auto_steps,
                        parse_binding, product_of_counts, spatial,
                        split_spatial, temporal)


class TestLoop:
    def test_span(self):
        assert Loop("i", 4, 16).span == 49
        assert Loop("i", 1, 16).span == 1

    def test_rejects_bad_values(self):
        with pytest.raises(TreeValidationError):
            Loop("i", 0)
        with pytest.raises(TreeValidationError):
            Loop("i", 4, 0)
        with pytest.raises(TreeValidationError):
            Loop("", 4)

    def test_helpers(self):
        assert not temporal("i", 2).spatial
        assert spatial("i", 2).spatial

    def test_equality(self):
        assert temporal("i", 2, 4) == Loop("i", 2, 4, False)
        assert temporal("i", 2, 4) != spatial("i", 2, 4)

    def test_product_and_split(self):
        loops = [temporal("i", 2), spatial("j", 3), temporal("k", 5)]
        assert product_of_counts(loops) == 30
        t, s = split_spatial(loops)
        assert [l.dim for l in t] == ["i", "k"]
        assert [l.dim for l in s] == ["j"]


class TestAutoSteps:
    def test_single_level(self):
        (level,) = auto_steps([[("i", 4, False)]])
        assert level[0].step == 1

    def test_two_levels_same_dim(self):
        outer, inner = auto_steps([[("i", 4, False)], [("i", 8, False)]])
        assert inner[0].step == 1
        assert outer[0].step == 8

    def test_mixed_dims(self):
        outer, inner = auto_steps([
            [("i", 2, False), ("j", 2, False)],
            [("i", 3, True), ("j", 5, False)],
        ])
        steps = {(l.dim, l.spatial): l.step for l in outer}
        assert steps[("i", False)] == 3
        assert steps[("j", False)] == 5

    def test_within_level_ordering(self):
        (level,) = auto_steps([[("i", 2, False), ("i", 8, False)]])
        assert level[0].step == 8  # outer loop steps over the inner
        assert level[1].step == 1


class TestBinding:
    def test_aliases(self):
        assert SEQ is Binding.SEQ and PIPE is Binding.PIPE
        assert SHAR is Binding.SHAR and PARA is Binding.PARA

    def test_shares_compute(self):
        assert Binding.SEQ.shares_compute_in_time
        assert Binding.SHAR.shares_compute_in_time
        assert not Binding.PIPE.shares_compute_in_time

    def test_residency(self):
        assert not Binding.SEQ.keeps_data_resident
        assert Binding.SHAR.keeps_data_resident

    def test_concurrency(self):
        assert Binding.PARA.is_concurrent and Binding.PIPE.is_concurrent
        assert not Binding.SEQ.is_concurrent

    def test_parse(self):
        assert parse_binding("pipe") is Binding.PIPE
        assert parse_binding(" Seq ") is Binding.SEQ
        with pytest.raises(ValueError):
            parse_binding("sometimes")
