"""Unit tests for the pass pipeline, AnalysisContext, partial evaluation."""

import pytest

from repro import arch, obs
from repro.analysis import (DEFAULT_PIPELINE, PRESCREEN_PIPELINE,
                            AnalysisContext, DataMovementAnalysis,
                            DataMovementPass, EnergyPass, LatencyPass,
                            Pipeline, PipelineError, ResourceBoundsPass,
                            SlicesPass, TileFlowModel, ValidatePass,
                            default_passes, num_pe_demand, prescreen_passes)
from repro.analysis.pipeline import check_builtin_pipelines
from repro.dataflows import attention_dataflow
from repro.errors import ResourceExceededError
from repro.obs import metrics as obs_metrics
from repro.workloads import self_attention


@pytest.fixture(autouse=True)
def clean_obs():
    yield
    obs.disable()
    obs_metrics.registry().reset()


@pytest.fixture
def wl():
    return self_attention(2, 32, 64, expand_softmax=False)


@pytest.fixture
def spec():
    return arch.edge()


@pytest.fixture
def tree(wl, spec):
    return attention_dataflow("flat_rgran", wl, spec)


class TestWiringCheck:
    def test_builtin_pipelines_are_wired(self):
        report = check_builtin_pipelines()
        assert "default:" in report and "prescreen:" in report
        assert report.count("OK") == 2

    def test_read_before_write_rejected(self):
        # datamovement reads "slices", which nothing has produced yet.
        with pytest.raises(PipelineError, match="slices"):
            Pipeline((ValidatePass(), DataMovementPass(), SlicesPass()))

    def test_duplicate_names_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            Pipeline((ValidatePass(), ValidatePass()))

    def test_unnamed_pass_rejected(self):
        class Anon(ValidatePass):
            name = ""

        with pytest.raises(PipelineError, match="no name"):
            Pipeline((Anon(),))

    def test_declarations_match_artifacts_produced(self, tree, spec):
        """Each pass writes exactly the artifacts it declares."""
        ctx = AnalysisContext(tree, spec)
        for p in default_passes():
            before = {a for a in p.writes if ctx.has(a)}
            assert not before, f"{p.name} artifacts present before run"
            p.run(ctx)
            for artifact in p.writes:
                assert ctx.has(artifact), (p.name, artifact)

    def test_default_order_is_canonical(self):
        assert DEFAULT_PIPELINE.names() == (
            "validate", "slices", "datamovement", "resources", "latency",
            "energy")
        assert PRESCREEN_PIPELINE.names() == (
            "validate", "slices", "resource_bounds")


class TestPartialEvaluation:
    def test_until_latency_skips_energy(self, tree, spec):
        tracer = obs.enable()
        result = TileFlowModel(spec).evaluate(tree, until="latency")
        obs.disable()
        assert result.partial
        assert result.completed_passes == (
            "validate", "slices", "datamovement", "resources", "latency")
        assert result.latency_cycles > 0
        assert result.energy_pj == 0.0 and result.energy_breakdown_pj == {}
        names = {s.name for s in tracer.spans}
        assert "model.pass.latency" in names
        assert "model.pass.energy" not in names

    def test_until_unknown_pass_rejected(self, tree, spec):
        with pytest.raises(ValueError, match="until"):
            TileFlowModel(spec).evaluate(tree, until="nonsense")

    def test_full_run_is_not_partial(self, tree, spec):
        result = TileFlowModel(spec).evaluate(tree)
        assert not result.partial
        assert result.completed_passes == DEFAULT_PIPELINE.names()

    def test_stop_on_violation_skips_latency_and_energy(self, wl, tree):
        cramped = arch.edge().with_level("L1", capacity_bytes=256)
        tracer = obs.enable()
        result = TileFlowModel(cramped).evaluate(tree,
                                                 stop_on_violation=True)
        obs.disable()
        assert result.violations and result.partial
        assert result.latency_cycles == 0.0 and result.energy_pj == 0.0
        names = {s.name for s in tracer.spans}
        assert "model.pass.resources" in names
        assert "model.pass.latency" not in names
        snap = obs.metrics_snapshot()
        assert snap["model.early_exit"]["value"] == 1.0

    def test_stop_on_violation_feasible_runs_everything(self, tree, spec):
        result = TileFlowModel(spec).evaluate(tree, stop_on_violation=True)
        assert not result.violations
        assert not result.partial
        assert result.energy_pj > 0

    def test_strict_raises_before_latency_runs(self, tree):
        cramped = arch.edge().with_level("L1", capacity_bytes=256)
        tracer = obs.enable()
        with pytest.raises(ResourceExceededError):
            TileFlowModel(cramped).evaluate(tree, strict=True)
        obs.disable()
        names = {s.name for s in tracer.spans}
        assert "model.pass.resources" in names
        assert "model.pass.latency" not in names
        assert "model.pass.energy" not in names


class TestContextResume:
    def test_prescreen_prefix_is_not_repeated(self, tree, spec):
        model = TileFlowModel(spec)
        ctx = model.context(tree)
        PRESCREEN_PIPELINE.run(ctx)
        assert list(ctx.completed) == ["validate", "slices",
                                       "resource_bounds"]
        tracer = obs.enable()
        result = model.evaluate(tree, context=ctx)
        obs.disable()
        names = {s.name for s in tracer.spans}
        # validate + slices already ran on this context.
        assert "model.pass.validate" not in names
        assert "model.pass.slices" not in names
        assert "model.pass.energy" in names
        assert not result.partial
        fresh = model.evaluate(attention_dataflow(
            "flat_rgran", tree.workload, spec))
        assert result.to_dict() == fresh.to_dict()

    def test_context_memoizes_slices_and_executions(self, tree, spec):
        ctx = AnalysisContext(tree, spec)
        node = tree.root
        assert ctx.node_slices(node) is ctx.node_slices(node)
        for n in tree.nodes():
            assert isinstance(ctx.executions(n), int)
            assert ctx.executions(n) >= 1

    def test_num_pe_demand_matches_full_analysis(self, tree, spec):
        mac, vec = num_pe_demand(tree.root)
        result = TileFlowModel(spec).evaluate(tree)
        assert (mac, vec) == (result.resources.num_pe,
                              result.resources.num_vector_pe)


class TestCustomPipelines:
    def test_model_accepts_custom_pipeline(self, tree, spec):
        pipe = Pipeline((ValidatePass(), SlicesPass(), DataMovementPass(),
                         LatencyPass(), EnergyPass()))
        result = TileFlowModel(spec, pipeline=pipe).evaluate(tree)
        assert not result.partial  # all of *this* pipeline's passes ran
        assert result.latency_cycles > 0 and result.energy_pj > 0
        assert result.resources.num_pe == 0  # no resource pass

    def test_prescreen_bounds_never_false_positive(self, tree, spec):
        """A feasible mapping must pass the bounds pass (lower bounds)."""
        ctx = AnalysisContext(tree, spec)
        for p in prescreen_passes():
            p.run(ctx)
        full = TileFlowModel(spec).evaluate(tree)
        if not full.violations:
            assert ctx.get("bound_violations") == []


class TestMovementEntryPoint:
    def test_movement_is_instrumented(self, tree, spec):
        tracer = obs.enable()
        movement = TileFlowModel(spec).movement(tree)
        obs.disable()
        names = {s.name for s in tracer.spans}
        assert "model.movement" in names
        assert "model.pass.datamovement" in names
        assert "model.pass.resources" not in names  # stops at movement
        snap = obs.metrics_snapshot()
        assert snap["model.movements"]["value"] == 1.0
        direct = DataMovementAnalysis(tree, spec).run()
        assert set(movement.traffic) == set(direct.traffic)
        for level, lt in movement.traffic.items():
            other = direct.traffic[level]
            assert (lt.fill, lt.read, lt.update) == (
                other.fill, other.read, other.update)
