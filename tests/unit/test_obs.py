"""Unit tests for the observability layer (repro.obs)."""

import io
import json
import time

import pytest

from repro import arch, obs, workloads
from repro.analysis import TileFlowModel
from repro.dataflows import attention_dataflow
from repro.mapper import TileFlowMapper
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def clean_obs():
    """Never leak an enabled tracer/registry into other tests."""
    yield
    obs.disable()
    obs_metrics.registry().reset()


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_nesting_parent_and_depth(self):
        tracer = obs.enable(obs.Tracer(clock=FakeClock()))
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.disable()
        inner, outer = tracer.spans  # inner finishes (is recorded) first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1 and outer.depth == 0
        assert outer.parent_id is None

    def test_timing_uses_clock(self):
        tracer = obs.Tracer(clock=FakeClock(step=1.0))
        with tracer.span("a"):
            pass
        (span,) = tracer.spans
        assert span.duration_s == pytest.approx(1.0)

    def test_attrs_and_set(self):
        tracer = obs.enable()
        with obs.span("a", "cat", tree="t1") as span:
            span.set(extra=3)
        obs.disable()
        assert tracer.spans[0].attrs == {"tree": "t1", "extra": 3}
        assert tracer.spans[0].category == "cat"

    def test_exception_still_records_span(self):
        tracer = obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        obs.disable()
        assert [s.name for s in tracer.spans] == ["boom"]

    def test_disabled_is_shared_noop(self):
        assert not obs.is_enabled()
        span = obs.span("anything")
        assert span is obs.NOOP_SPAN
        with span as s:
            s.set(ignored=True)

    def test_traced_decorator(self):
        calls = []

        @obs.traced("custom.name")
        def work(x):
            calls.append(x)
            return x * 2

        assert work(3) == 6  # disabled: pass-through
        tracer = obs.enable()
        assert work(4) == 8
        obs.disable()
        assert calls == [3, 4]
        assert [s.name for s in tracer.spans] == ["custom.name"]


class TestMetrics:
    def test_counter_aggregation(self):
        obs.enable()
        obs.count("c")
        obs.count("c", 4)
        snap = obs.metrics_snapshot()
        assert snap["c"] == {"kind": "counter", "value": 5.0}

    def test_gauge_high_water(self):
        obs.enable()
        obs.gauge("g", 2.0)
        obs.gauge("g", 9.0)
        obs.gauge("g", 5.0)
        snap = obs.metrics_snapshot()["g"]
        assert snap["value"] == 5.0
        assert snap["max"] == 9.0 and snap["min"] == 2.0

    def test_histogram(self):
        obs.enable()
        for v in (1.0, 3.0):
            obs.observe("h", v)
        snap = obs.metrics_snapshot()["h"]
        assert snap["count"] == 2 and snap["sum"] == 4.0
        assert snap["mean"] == 2.0 and snap["max"] == 3.0

    def test_disabled_records_nothing(self):
        obs.count("nope")
        obs.gauge("nope_g", 1.0)
        obs.observe("nope_h", 1.0)
        assert obs.metrics_snapshot() == {}

    def test_kind_clash_rejected(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_enable_resets(self):
        obs.enable()
        obs.count("c")
        obs.enable()  # fresh session
        assert obs.metrics_snapshot() == {}


class TestJsonlRoundTrip:
    def _session(self):
        tracer = obs.enable(obs.Tracer(clock=FakeClock(step=0.5)))
        with obs.span("outer", "cat", tree="t"):
            with obs.span("inner"):
                pass
        obs.count("evals", 3)
        obs.gauge("best", 42.0)
        obs.disable()
        return tracer, obs.metrics_snapshot()

    def test_round_trip_preserves_everything(self, tmp_path):
        tracer, snapshot = self._session()
        path = str(tmp_path / "trace.jsonl")
        tracer.dump_jsonl(path, metrics=snapshot)
        spans, metrics = obs.load_jsonl(path)
        assert [(s.name, s.span_id, s.parent_id, s.depth, s.attrs)
                for s in spans] == \
               [(s.name, s.span_id, s.parent_id, s.depth, s.attrs)
                for s in tracer.spans]
        assert spans[0].duration_s == tracer.spans[0].duration_s
        assert metrics == snapshot

    def test_replay_renders_identical_summary(self, tmp_path):
        tracer, snapshot = self._session()
        live = obs.render_profile(tracer.spans, snapshot)
        buf = io.StringIO()
        tracer.dump_jsonl(buf, metrics=snapshot)
        buf.seek(0)
        spans, metrics = obs.load_jsonl(buf)
        assert obs.render_profile(spans, metrics) == live


class TestAggregation:
    def test_self_time_excludes_children(self):
        tracer = obs.Tracer(clock=FakeClock(step=1.0))
        # Clock reads: outer-start=0, inner-start=1, inner-end=2,
        # outer-end=3 -> inner total 1s, outer total 3s, outer self 2s.
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        stats = {s.name: s for s in obs.aggregate_spans(tracer.spans)}
        assert stats["inner"].total_s == pytest.approx(1.0)
        assert stats["outer"].total_s == pytest.approx(3.0)
        assert stats["outer"].self_s == pytest.approx(2.0)
        assert stats["inner"].count == stats["outer"].count == 1

    def test_sorted_by_self_time(self):
        tracer = obs.Tracer(clock=FakeClock(step=1.0))
        with tracer.span("short"):
            pass
        with tracer.span("long"):
            with tracer.span("mid"):
                pass
        names = [s.name for s in obs.aggregate_spans(tracer.spans)]
        assert names[0] == "long"


class TestModelInstrumentation:
    def _evaluate(self):
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        spec = arch.edge()
        tree = attention_dataflow("flat_rgran", wl, spec)
        return TileFlowModel(spec).evaluate(tree)

    def test_stage_spans_and_counters(self):
        tracer = obs.enable()
        self._evaluate()
        obs.disable()
        names = {s.name for s in tracer.spans}
        assert {"model.evaluate", "model.pass.validate", "model.pass.slices",
                "model.pass.datamovement", "model.pass.resources",
                "model.pass.latency", "model.pass.energy"} <= names
        snap = obs.metrics_snapshot()
        assert snap["model.evaluations"]["value"] == 1.0

    def test_noop_overhead_within_noise(self):
        """Disabled-mode spans must cost < 5% of one model evaluation.

        Measures the no-op span path directly (the only cost tracing
        adds to an evaluate call when disabled) against the wall time of
        the evaluation it would wrap, on a cached small workload.
        """
        assert not obs.is_enabled()
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        spec = arch.edge()
        tree = attention_dataflow("flat_rgran", wl, spec)
        model = TileFlowModel(spec)
        model.evaluate(tree)  # warm caches
        repeats = 5
        t0 = time.perf_counter()
        for _ in range(repeats):
            model.evaluate(tree)
        eval_s = (time.perf_counter() - t0) / repeats

        spans_per_eval = 7  # evaluate + 6 pipeline passes
        rounds = 2000
        t0 = time.perf_counter()
        for _ in range(rounds):
            with obs.span("model.evaluate", "analysis", tree="x"):
                for _ in range(spans_per_eval - 1):
                    with obs.span("stage", "analysis"):
                        pass
        noop_s = (time.perf_counter() - t0) / rounds
        assert noop_s < 0.05 * eval_s, (noop_s, eval_s)

    def test_disabled_event_guard_within_noise(self):
        """Disabled-mode event guards must cost < 5% of one evaluation.

        Every instrumented site checks ``events.is_enabled()`` before
        building a payload; with no bus installed an evaluation pays
        only those guard reads.  ~10 guarded sites fire per engine
        evaluation (memo lookup, pre-screen, per-kind subtree deltas,
        one MCTS sample), so measure that many guards per round.
        """
        from repro.obs import events
        assert not events.is_enabled()
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        spec = arch.edge()
        tree = attention_dataflow("flat_rgran", wl, spec)
        model = TileFlowModel(spec)
        model.evaluate(tree)  # warm caches
        repeats = 5
        t0 = time.perf_counter()
        for _ in range(repeats):
            model.evaluate(tree)
        eval_s = (time.perf_counter() - t0) / repeats

        guards_per_eval = 10
        rounds = 2000
        t0 = time.perf_counter()
        for _ in range(rounds):
            for _ in range(guards_per_eval):
                if events.is_enabled():  # pragma: no cover
                    events.emit("search.progress", phase="x", step=0,
                                total=0, best_cost=None)
        guard_s = (time.perf_counter() - t0) / rounds
        assert guard_s < 0.05 * eval_s, (guard_s, eval_s)


class TestMapperDeterminism:
    def test_tracing_does_not_change_search(self):
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        spec = arch.edge()
        baseline = TileFlowMapper(wl, spec, seed=0).explore(
            generations=2, population=4, mcts_samples=4)
        obs.enable()
        traced = TileFlowMapper(wl, spec, seed=0).explore(
            generations=2, population=4, mcts_samples=4)
        obs.disable()
        assert traced.best_cost == baseline.best_cost
        assert traced.trace == baseline.trace
        assert traced.best_factors == baseline.best_factors
        snap = obs.metrics_snapshot()
        assert snap["mapper.evaluations"]["value"] > 0
        assert snap["mcts.samples"]["value"] > 0

    def test_mapper_spans_present(self):
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        tracer = obs.enable()
        TileFlowMapper(wl, arch.edge(), seed=0).explore(
            generations=1, population=4, mcts_samples=2)
        obs.disable()
        names = {s.name for s in tracer.spans}
        assert {"mapper.explore", "ga.generation", "mcts.sample"} <= names


class TestSimInstrumentation:
    def test_sim_events_and_occupancy(self):
        from repro.sim import SimulatedAccelerator
        wl = workloads.self_attention(2, 32, 64, expand_softmax=False)
        spec = arch.edge()
        tree = attention_dataflow("flat_rgran", wl, spec)
        tracer = obs.enable()
        SimulatedAccelerator(spec).run(tree)
        obs.disable()
        names = {s.name for s in tracer.spans}
        assert {"sim.run", "sim.event_loop", "sim.energy"} <= names
        snap = obs.metrics_snapshot()
        assert snap["sim.events"]["value"] > 0
        occupancy = [n for n in snap if n.startswith("sim.occupancy_bytes.")]
        assert occupancy
        assert all(snap[n]["max"] >= 0 for n in occupancy)
