"""Unit tests for resource usage (§5.2), latency (§5.3), and energy."""

import pytest

from repro.analysis import TileFlowModel
from repro.arch import edge, validation_accelerator
from repro.ir import Operator, Tensor, Workload, simple_access
from repro.tile import (AnalysisTree, Binding, FusionNode, OpTile, spatial,
                        temporal)
from repro.workloads import matmul


def _leaf(op, lanes=8):
    loops = [temporal(d, n) for d, n in op.dims.items() if n > 1]
    return OpTile(op, loops[:1] + [spatial("i", lanes)], level=0)


def _pair(binding, lanes=8):
    a = Tensor("A", (64,))
    b = Tensor("B", (64,))
    c = Tensor("C", (64,))
    op1 = Operator("p", {"i": 64}, [simple_access(a, "i")],
                   simple_access(b, "i"), kind="mac")
    op2 = Operator("q", {"i": 64}, [simple_access(b, "i")],
                   simple_access(c, "i"), kind="mac")
    wl = Workload("w", [op1, op2])
    l1 = OpTile(op1, [temporal("i", 64 // lanes, lanes),
                      spatial("i", lanes)], level=0)
    l2 = OpTile(op2, [temporal("i", 64 // lanes, lanes),
                      spatial("i", lanes)], level=0)
    root = FusionNode([], level=1, children=[l1, l2], binding=binding)
    return wl, AnalysisTree(wl, root)


class TestNumPE:
    def test_seq_takes_max(self):
        wl, tree = _pair(Binding.SEQ)
        r = TileFlowModel(edge()).evaluate(tree)
        assert r.resources.num_pe == 8

    def test_pipe_sums(self):
        wl, tree = _pair(Binding.PIPE)
        r = TileFlowModel(edge()).evaluate(tree)
        assert r.resources.num_pe == 16

    def test_vector_pool_separate(self):
        spec = validation_accelerator()
        a = Tensor("A", (64,))
        b = Tensor("B", (64,))
        op = Operator("e", {"i": 64}, [simple_access(a, "i")],
                      simple_access(b, "i"), kind="exp")
        wl = Workload("w", [op])
        leaf = OpTile(op, [temporal("i", 8, 8), spatial("i", 8)], level=0)
        r = TileFlowModel(spec).evaluate(AnalysisTree(wl, leaf))
        assert r.resources.num_pe == 0
        assert r.resources.num_vector_pe == 8

    def test_pe_violation_reported(self):
        wl, tree = _pair(Binding.PIPE, lanes=8)
        spec = edge().with_(pe_count=8, vector_pe_count=8)
        r = TileFlowModel(spec).evaluate(tree)
        assert any("compute" in v for v in r.violations)


class TestFootprint:
    def test_capacity_violation(self):
        wl, tree = _pair(Binding.SHAR)
        spec = edge().with_level("Reg", capacity_bytes=4)
        r = TileFlowModel(spec).evaluate(tree)
        assert any("memory" in v for v in r.violations)

    def test_shar_sums_and_seq_maxes(self):
        wl_s, tree_s = _pair(Binding.SEQ)
        wl_h, tree_h = _pair(Binding.SHAR)
        spec = edge()
        r_seq = TileFlowModel(spec).evaluate(tree_s)
        r_shar = TileFlowModel(spec).evaluate(tree_h)
        assert (r_shar.resources.footprint_bytes[0]
                >= r_seq.resources.footprint_bytes[0])

    def test_instances_bounded_by_fanout(self):
        wl = matmul(64, 64, 64)
        op = wl.operators[0]
        leaf = OpTile(op, [temporal("k", 64), spatial("i", 8),
                           spatial("j", 8)], level=0)
        top = OpTile(op, [spatial("i", 8, 8), temporal("j", 8, 8)],
                     level=1, child=leaf)
        r = TileFlowModel(edge()).evaluate(AnalysisTree(wl, top))
        assert any("fanout" in v for v in r.violations)


class TestLatency:
    def test_compute_bound_floor(self):
        wl, tree = _pair(Binding.SEQ)
        r = TileFlowModel(edge()).evaluate(tree)
        # two ops x 64 points / 8 lanes each, serialized
        assert r.latency_cycles >= 16

    def test_pipe_not_slower_than_shar(self):
        _, tree_p = _pair(Binding.PIPE)
        _, tree_h = _pair(Binding.SHAR)
        spec = edge()
        lat_p = TileFlowModel(spec).evaluate(tree_p).latency_cycles
        lat_h = TileFlowModel(spec).evaluate(tree_h).latency_cycles
        assert lat_p <= lat_h

    def test_bandwidth_bound_scales(self):
        wl, tree1 = _pair(Binding.SEQ)
        spec_slow = edge().with_level("DRAM", bandwidth_gbs=0.001)
        wl, tree2 = _pair(Binding.SEQ)
        spec_fast = edge()
        slow = TileFlowModel(spec_slow).evaluate(tree1).latency_cycles
        fast = TileFlowModel(spec_fast).evaluate(tree2).latency_cycles
        assert slow > fast

    def test_slowdown_metric_floored_at_one(self):
        wl, tree = _pair(Binding.SEQ)
        r = TileFlowModel(edge()).evaluate(tree)
        assert all(s >= 1.0 for s in r.slowdown.values())


class TestEnergy:
    def test_breakdown_components(self):
        wl, tree = _pair(Binding.SHAR)
        r = TileFlowModel(edge()).evaluate(tree)
        assert "MAC" in r.energy_breakdown_pj
        assert r.energy_pj == pytest.approx(
            sum(r.energy_breakdown_pj.values()))

    def test_dram_heavier_than_onchip_per_word(self):
        wl, tree = _pair(Binding.SEQ)
        r = TileFlowModel(edge()).evaluate(tree)
        assert r.energy_pj > 0

    def test_latency_seconds(self):
        wl, tree = _pair(Binding.SEQ)
        r = TileFlowModel(edge()).evaluate(tree)
        assert r.latency_seconds == pytest.approx(
            r.latency_cycles / (edge().frequency_ghz * 1e9))

    def test_strict_mode_raises(self):
        from repro.errors import ResourceExceededError
        wl, tree = _pair(Binding.PIPE)
        spec = edge().with_(pe_count=8, vector_pe_count=8)
        with pytest.raises(ResourceExceededError):
            TileFlowModel(spec).evaluate(tree, strict=True)
