"""Focused latency-model tests (bandwidth sharing, pipe aggregation)."""

import pytest

from repro.analysis import TileFlowModel
from repro.arch import edge
from repro.ir import Operator, Tensor, Workload, simple_access
from repro.tile import (AnalysisTree, Binding, FusionNode, OpTile, spatial,
                        temporal)


def _streaming_pair(binding, n=4096):
    """Two bandwidth-heavy element-wise ops (latency dominated by DRAM)."""
    a = Tensor("A", (n,))
    b = Tensor("B", (n,))
    c = Tensor("C", (n,))
    d = Tensor("D", (n,))
    op1 = Operator("p", {"i": n}, [simple_access(a, "i")],
                   simple_access(b, "i"), kind="mac")
    op2 = Operator("q", {"i": n}, [simple_access(c, "i")],
                   simple_access(d, "i"), kind="mac")
    wl = Workload("w", [op1, op2])
    l1 = OpTile(op1, [temporal("i", n // 64, 64), spatial("i", 64)],
                level=0)
    l2 = OpTile(op2, [temporal("i", n // 64, 64), spatial("i", 64)],
                level=0)
    root = FusionNode([], level=1, children=[l1, l2], binding=binding)
    return wl, AnalysisTree(wl, root)


class TestBandwidthSharing:
    def test_para_siblings_share_source_bandwidth(self):
        """Under Para, the aggregate sibling IO bounds the iteration."""
        spec = edge().with_level("DRAM", bandwidth_gbs=0.5)
        wl_p, tree_p = _streaming_pair(Binding.PARA)
        wl_s, tree_s = _streaming_pair(Binding.SEQ)
        lat_p = TileFlowModel(spec).evaluate(tree_p).latency_cycles
        lat_s = TileFlowModel(spec).evaluate(tree_s).latency_cycles
        # Both move the same bytes over the same port: latencies within 2x.
        assert lat_p == pytest.approx(lat_s, rel=1.0)
        # And neither can beat the pure transfer time.
        bytes_moved = 4096 * 2 * 2 * 2  # 2 tensors/op x 2 ops x 2B
        assert lat_p >= bytes_moved / (0.5)

    def test_concurrent_not_free(self):
        """Para cannot be faster than the aggregate IO bound."""
        spec = edge().with_level("DRAM", bandwidth_gbs=0.5)
        wl, tree = _streaming_pair(Binding.PARA)
        one_op_bytes = 4096 * 2 * 2
        lat = TileFlowModel(spec).evaluate(tree).latency_cycles
        assert lat > one_op_bytes / 0.5  # more than one op's transfer
