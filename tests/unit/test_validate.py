"""Unit tests for structural tree validation (§4.1 rules)."""

import pytest

from repro.errors import TreeValidationError
from repro.ir import Operator, Tensor, Workload, simple_access
from repro.tile import (AnalysisTree, Binding, FusionNode, OpTile,
                        check_tree, temporal, validate_tree)


def _two_op_chain(kind1="mac"):
    a = Tensor("A", (8, 8))
    b = Tensor("B", (8, 8))
    c = Tensor("C", (8,))
    op1 = Operator("p", {"i": 8, "k": 8}, [simple_access(a, "i", "k")],
                   simple_access(b, "i", "k"), kind=kind1)
    op2 = Operator("q", {"i": 8, "k": 8}, [simple_access(b, "i", "k")],
                   simple_access(c, "i"), kind="sum"
                   if kind1 == "sum" else "mac")
    return Workload("w", [op1, op2])


def _leaf(op):
    return OpTile(op, [temporal(d, n) for d, n in op.dims.items()], level=0)


class TestLevelAndChainRules:
    def test_level_must_not_increase(self):
        wl = _two_op_chain()
        leaf = _leaf(wl.operators[0])
        top = OpTile(wl.operators[0], [], level=0)
        # manually attach a deeper-level child
        leaf.level = 2
        top.child = leaf
        leaf.parent = top
        leaf2 = _leaf(wl.operators[1])
        root = FusionNode([], level=3, children=[top, leaf2])
        tree = AnalysisTree(wl, root)
        assert any("level increases" in p for p in check_tree(tree))

    def test_chain_must_keep_operator(self):
        wl = _two_op_chain()
        leaf = _leaf(wl.operators[1])
        top = OpTile(wl.operators[0], [], level=1)
        top.child = leaf
        leaf.parent = top
        root = FusionNode([], level=2,
                          children=[top, _leaf(wl.operators[0])])
        tree = AnalysisTree(wl, root)
        assert any("switches operator" in p for p in check_tree(tree))


class TestCoverageRule:
    def test_under_coverage_detected(self):
        wl = _two_op_chain()
        small = OpTile(wl.operators[0], [temporal("i", 2)], level=0)
        full = _leaf(wl.operators[1])
        root = FusionNode([], level=1, children=[small, full])
        tree = AnalysisTree(wl, root)
        problems = check_tree(tree)
        assert any("covered" in p for p in problems)
        with pytest.raises(TreeValidationError):
            validate_tree(tree)

    def test_over_coverage_is_legal(self):
        wl = _two_op_chain()
        over = OpTile(wl.operators[0],
                      [temporal("i", 10), temporal("k", 8)], level=0)
        root = FusionNode([], level=1,
                          children=[over, _leaf(wl.operators[1])])
        assert check_tree(AnalysisTree(wl, root)) == []


class TestReductionRule:
    def test_producer_reduction_loop_above_fusion_rejected(self):
        wl = _two_op_chain()  # op q reduces over k and is last -> fine
        # make op p a reducing producer: use its own k as fused loop
        a = Tensor("A", (8, 8))
        b = Tensor("B", (8,))
        c = Tensor("C", (8,))
        producer = Operator("p", {"i": 8, "k": 8},
                            [simple_access(a, "i", "k")],
                            simple_access(b, "i"), kind="mac")
        consumer = Operator("q", {"i": 8}, [simple_access(b, "i")],
                            simple_access(c, "i"), kind="exp")
        wl = Workload("w", [producer, consumer])
        root = FusionNode([temporal("k", 8)], level=1,
                          children=[OpTile(producer, [temporal("i", 8)],
                                           level=0),
                                    _leaf(consumer)],
                          binding=Binding.SHAR)
        problems = check_tree(AnalysisTree(wl, root))
        assert any("reduction dim" in p for p in problems)

    def test_associative_producer_exempt(self):
        a = Tensor("A", (8, 8))
        b = Tensor("B", (8,))
        c = Tensor("C", (8,))
        producer = Operator("p", {"i": 8, "k": 8},
                            [simple_access(a, "i", "k")],
                            simple_access(b, "i"), kind="sum")
        consumer = Operator("q", {"i": 8}, [simple_access(b, "i")],
                            simple_access(c, "i"), kind="exp")
        wl = Workload("w", [producer, consumer])
        root = FusionNode([temporal("k", 8)], level=1,
                          children=[OpTile(producer, [temporal("i", 8)],
                                           level=0),
                                    _leaf(consumer)],
                          binding=Binding.SHAR)
        assert check_tree(AnalysisTree(wl, root)) == []

    def test_final_consumer_reduction_allowed(self):
        wl = _two_op_chain()
        root = FusionNode([temporal("k", 8)], level=1, children=[
            OpTile(wl.operators[0], [temporal("i", 8)], level=0),
            OpTile(wl.operators[1], [temporal("i", 8)], level=0),
        ], binding=Binding.SHAR)
        # q reduces over k but its output leaves the fusion group.
        problems = [p for p in check_tree(AnalysisTree(wl, root))
                    if "reduction" in p]
        # p's output B is consumed inside and k is NOT p's reduction dim.
        assert problems == []


class TestSiblingRules:
    def test_consumer_before_producer_rejected(self):
        wl = _two_op_chain()
        p, q = wl.operators
        root = FusionNode([], level=1, children=[_leaf(q), _leaf(p)])
        problems = check_tree(AnalysisTree(wl, root))
        assert any("precedes" in m for m in problems)

    def test_para_requires_independence(self):
        wl = _two_op_chain()
        p, q = wl.operators
        root = FusionNode([], level=1, children=[_leaf(p), _leaf(q)],
                          binding=Binding.PARA)
        problems = check_tree(AnalysisTree(wl, root))
        assert any("Para siblings" in m for m in problems)

    def test_pipe_dependence_allowed(self):
        wl = _two_op_chain()
        p, q = wl.operators
        root = FusionNode([], level=1, children=[_leaf(p), _leaf(q)],
                          binding=Binding.PIPE)
        assert check_tree(AnalysisTree(wl, root)) == []

    def test_fusion_loop_dim_must_exist(self):
        wl = _two_op_chain()
        p, q = wl.operators
        root = FusionNode([temporal("zz", 2)], level=1,
                          children=[_leaf(p), _leaf(q)])
        problems = check_tree(AnalysisTree(wl, root))
        assert any("belongs to no operator" in m for m in problems)
