"""Unit tests for the tile-centric notation renderer and parser."""

import pytest

from repro import arch
from repro.analysis import TileFlowModel
from repro.dataflows import ATTENTION_DATAFLOWS, CONV_DATAFLOWS
from repro.errors import NotationError
from repro.tile import parse_notation, render_notation
from repro.workloads import conv_chain, self_attention


@pytest.fixture(scope="module")
def attn():
    return self_attention(4, 128, 256, expand_softmax=True)


@pytest.fixture(scope="module")
def chain():
    return conv_chain(16, 28, 28, 32, 32)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(ATTENTION_DATAFLOWS))
    def test_attention_dataflows_round_trip(self, attn, name):
        spec = arch.edge()
        tree = ATTENTION_DATAFLOWS[name](attn, spec)
        text = render_notation(tree)
        rebuilt = parse_notation(text, attn)
        model = TileFlowModel(spec)
        r1 = model.evaluate(tree)
        r2 = model.evaluate(rebuilt)
        assert r1.latency_cycles == r2.latency_cycles
        assert r1.energy_pj == r2.energy_pj
        assert r1.dram_words() == r2.dram_words()

    @pytest.mark.parametrize("name", sorted(CONV_DATAFLOWS))
    def test_conv_dataflows_round_trip(self, chain, name):
        spec = arch.cloud()
        tree = CONV_DATAFLOWS[name](chain, spec)
        rebuilt = parse_notation(render_notation(tree), chain)
        model = TileFlowModel(spec)
        assert (model.evaluate(tree).latency_cycles
                == model.evaluate(rebuilt).latency_cycles)

    def test_render_is_stable_after_round_trip(self, attn):
        spec = arch.edge()
        tree = ATTENTION_DATAFLOWS["chimera"](attn, spec)
        text1 = render_notation(tree)
        text2 = render_notation(parse_notation(text1, attn))
        # tree names may differ; the structural body must not.
        assert text1.split("\n", 1)[1] == text2.split("\n", 1)[1]


class TestParserErrors:
    def test_empty_input(self, attn):
        with pytest.raises(NotationError):
            parse_notation("", attn)

    def test_garbage_tile_line(self, attn):
        with pytest.raises(NotationError):
            parse_notation("level 1:\n  T1^0 == oops", attn)

    def test_bad_loop_syntax(self, attn):
        with pytest.raises(NotationError):
            parse_notation("level 0:\n  T0^0 = {m:x}<qk>", attn)

    def test_multiple_roots_rejected(self, attn):
        text = ("level 0:\n  T0^0 = {m:128, l:128, k:64, b:4, h:1}<qk>\n"
                "  T0^1 = {m:128, l:128, b:4, h:1}<smax_max>")
        with pytest.raises(NotationError):
            parse_notation(text, attn)

    def test_unknown_operator(self, attn):
        from repro.errors import WorkloadError
        text = "level 0:\n  T0^0 = {m:4}<mystery>"
        with pytest.raises(WorkloadError):
            parse_notation(text, attn)


class TestHandWrittenNotation:
    def test_manual_single_tile(self):
        from repro.workloads import matmul
        wl = matmul(64, 64, 64)
        text = ("level 1:\n"
                "  T1^0 = {i:8*8, j:8*8, k:8*8}(T0^0)\n"
                "level 0:\n"
                "  T0^0 = {k:8, i':8, j':8}<mm>\n")
        tree = parse_notation(text, wl)
        r = TileFlowModel(arch.edge()).evaluate(tree)
        assert r.latency_cycles > 0
        assert r.resources.num_pe == 64
