"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (ArchitectureError, MappingError, NotationError,
                          ResourceExceededError, SimulationError,
                          TileFlowError, TreeValidationError, WorkloadError)


def test_all_derive_from_base():
    for exc in (WorkloadError, NotationError, TreeValidationError,
                ArchitectureError, ResourceExceededError, MappingError,
                SimulationError):
        assert issubclass(exc, TileFlowError)


def test_resource_exceeded_payload():
    e = ResourceExceededError("too big", level="L1", required=10.0,
                              available=4.0)
    assert e.level == "L1"
    assert e.required == 10.0
    assert e.available == 4.0
    assert "too big" in str(e)


def test_catchable_as_base():
    with pytest.raises(TileFlowError):
        raise MappingError("x")
