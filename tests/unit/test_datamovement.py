"""Unit tests for the tree-based data-movement engine (§5.1)."""

import pytest

from repro.analysis import DataMovementAnalysis, TileFlowModel
from repro.arch import edge
from repro.ir import Operator, Tensor, Workload, simple_access
from repro.tile import (AnalysisTree, Binding, FusionNode, OpTile, spatial,
                        temporal)
from repro.tile.loops import auto_steps
from repro.workloads import matmul, self_attention


def _mm_tree(m=64, order=("i", "j", "k")):
    wl = matmul(m, m, m)
    op = wl.operators[0]
    spec = [[(d, m // 8, False) for d in order],
            [("k", 8, False), ("i", 8, True), ("j", 8, True)]]
    lv = auto_steps(spec)
    leaf = OpTile(op, lv[1], level=0)
    top = OpTile(op, lv[0], level=1, child=leaf)
    return wl, AnalysisTree(wl, top), op


class TestSingleOperator:
    def test_weight_style_reuse(self):
        # With k innermost at L1, C stays put across k steps: its update
        # traffic equals one full pass over C.
        wl, tree, op = _mm_tree(order=("i", "j", "k"))
        flows = DataMovementAnalysis(tree, edge()).run()
        top = tree.root
        assert flows.flows(top).updates["C"] == 64 * 64

    def test_output_rmw_when_reduction_outer(self):
        # k outermost at L1 wraps i/j between k steps, forcing partial-sum
        # writeback and refetch of C.
        wl, tree, op = _mm_tree(order=("k", "i", "j"))
        flows = DataMovementAnalysis(tree, edge()).run()
        top_flows = flows.flows(tree.root)
        assert top_flows.updates["C"] > 64 * 64
        assert top_flows.fills.get("C", 0) > 0

    def test_input_volume_lower_bound(self):
        wl, tree, op = _mm_tree()
        flows = DataMovementAnalysis(tree, edge()).run()
        top = flows.flows(tree.root)
        # each input must be loaded at least once
        assert top.fills["A"] >= 64 * 64
        assert top.fills["B"] >= 64 * 64

    def test_traffic_levels_consistent(self):
        wl, tree, op = _mm_tree()
        result = DataMovementAnalysis(tree, edge()).run()
        spec = edge()
        # reads at DRAM == fills at L1 (single chain, no fusion)
        dram = result.traffic[spec.dram_index]
        l1 = result.traffic[1]
        assert dram.total("read") == pytest.approx(l1.total("fill"))

    def test_compute_accesses_at_leaf_level(self):
        wl, tree, op = _mm_tree()
        result = DataMovementAnalysis(tree, edge()).run()
        reg = result.traffic[0]
        # two operand reads per MAC
        assert reg.total("read") >= 2 * op.iteration_volume


def _fused_pair(binding):
    a = Tensor("A", (64,))
    b = Tensor("B", (64,))
    c = Tensor("C", (64,))
    w = Tensor("W", (64,))
    op1 = Operator("p", {"i": 64}, [simple_access(a, "i"),
                                    simple_access(w, "i")],
                   simple_access(b, "i"), kind="exp")
    op2 = Operator("q", {"i": 64}, [simple_access(b, "i")],
                   simple_access(c, "i"), kind="exp")
    wl = Workload("w", [op1, op2])
    c1 = OpTile(op1, [temporal("i", 8, 1)], level=0)
    c2 = OpTile(op2, [temporal("i", 8, 1)], level=0)
    root = FusionNode([temporal("i", 8, 8)], level=1,
                      children=[c1, c2], binding=binding)
    return wl, AnalysisTree(wl, root)


class TestFusion:
    def test_intermediate_never_reaches_dram(self):
        wl, tree = _fused_pair(Binding.SHAR)
        result = DataMovementAnalysis(tree, edge()).run()
        dram = result.traffic[edge().dram_index]
        assert "B" not in dram.read
        assert "B" not in dram.update

    def test_intermediate_counted_at_home_level(self):
        wl, tree = _fused_pair(Binding.SHAR)
        result = DataMovementAnalysis(tree, edge()).run()
        l1 = result.traffic[1]
        assert l1.update.get("B", 0) > 0   # producer writes B into L1
        assert l1.read.get("B", 0) > 0     # consumer reads B from L1

    def test_seq_evicts_unshared_tensors(self):
        _, seq_tree = _fused_pair(Binding.SEQ)
        _, shar_tree = _fused_pair(Binding.SHAR)
        spec = edge()
        seq = DataMovementAnalysis(seq_tree, spec).run()
        shar = DataMovementAnalysis(shar_tree, spec).run()
        # W is used only by op p; under Seq it is refetched per iteration.
        dram = spec.dram_index
        assert seq.traffic[dram].read.get("W", 0) >= \
            shar.traffic[dram].read.get("W", 0)

    def test_layerwise_routes_through_dram(self):
        wl = self_attention(1, 32, 64, expand_softmax=False)
        chains = []
        for op in wl.operators:
            loops = [temporal(d, n) for d, n in op.dims.items() if n > 1]
            chains.append(OpTile(op, loops, level=1,
                                 child=None))
        # leafless chains at level 1 act as whole-op tiles
        root = FusionNode([], level=edge().dram_index, children=chains,
                          binding=Binding.SEQ)
        tree = AnalysisTree(wl, root)
        result = DataMovementAnalysis(tree, edge()).run()
        dram = result.traffic[edge().dram_index]
        assert dram.read.get("S", 0) > 0
        assert dram.update.get("S", 0) > 0

    def test_broadcast_spatial_not_multiplied(self):
        # A spatial loop whose dim does not touch the tensor broadcasts.
        wl = matmul(64, 64, 64)
        op = wl.operators[0]
        leaf = OpTile(op, [temporal("k", 64), spatial("i", 8), 
                           spatial("j", 8)], level=0)
        top = OpTile(op, [spatial("i", 2, 32), temporal("i", 4, 8),
                          temporal("j", 8, 8)], level=1, child=leaf)
        tree = AnalysisTree(wl, top)
        result = DataMovementAnalysis(tree, edge()).run()
        # B[k, j] is independent of i: the spatial i split broadcasts it.
        b_fill = result.flows(top).fills["B"]
        assert b_fill == pytest.approx(64 * 64 * 4)  # re-read per i tile
