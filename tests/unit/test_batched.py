"""Unit tests for the batched analysis layer.

Covers the checked int64 kernels (dtype gates, exact overflow
detection with adversarially large loop bounds), the cohort planner's
per-group structure keys, the engine integration (sample-budget gate,
hook exception-disable, stats attribution), the obs/report surfaces,
and the L3 purge budgets that ride along in this change.
"""

import random
import time

import numpy as np
import pytest

from repro import arch
from repro.analysis.batched.kernels import (BatchedError,
                                            BatchedOverflowError, I8,
                                            abs64, add64, as_i8, box64,
                                            cdiv64, movement64, mul64,
                                            sub64)
from repro.analysis.batched.sweep import (BATCH_MIN_SAMPLES,
                                          CohortEvaluator)
from repro.engine import EvaluationEngine
from repro.mapper import Genome, genome_factor_space
from repro.workloads import self_attention

WL = self_attention(2, 32, 64, expand_softmax=True)
SPEC = arch.edge()


def _batchable(seed=11):
    """First batchable (engine, genome, evaluator) of the seeded stream."""
    rng = random.Random(seed)
    engine = EvaluationEngine(WL, SPEC, batched=True)
    while True:
        genome = Genome.random(WL, rng)
        try:
            return engine, genome, CohortEvaluator(
                engine, genome, genome_factor_space(WL, genome))
        except BatchedError:
            continue


# -- checked kernels -----------------------------------------------------

class TestKernels:
    def test_dtype_gate_rejects_non_int64(self):
        with pytest.raises(BatchedError, match="int64"):
            as_i8(np.arange(4, dtype=np.int32))
        with pytest.raises(BatchedError, match="int64"):
            mul64(np.arange(4, dtype=np.float64), np.int64(2))
        with pytest.raises(BatchedError, match="int64"):
            add64(np.arange(4, dtype=I8), np.arange(4, dtype=np.uint64))

    def test_python_int_operand_too_large_raises(self):
        with pytest.raises(BatchedOverflowError):
            mul64(np.ones(2, dtype=I8), 2 ** 63)

    def test_mul64_overflow_raises_not_wraps(self):
        # Adversarially large loop bounds: a tile recursion with counts
        # near 2^32 squares straight past 2^63.
        big = np.full(3, 2 ** 32, dtype=I8)
        with pytest.raises(BatchedOverflowError):
            mul64(big, big)
        # The check is exact — the largest representable products pass.
        assert mul64(np.int64(2 ** 62), np.int64(1)) == 2 ** 62
        ok = mul64(np.full(3, 2 ** 31, dtype=I8),
                   np.full(3, 2 ** 31, dtype=I8))
        assert (ok == 2 ** 62).all()

    def test_add_sub_overflow(self):
        top = np.array([2 ** 63 - 1], dtype=I8)
        with pytest.raises(BatchedOverflowError):
            add64(top, np.int64(1))
        with pytest.raises(BatchedOverflowError):
            sub64(np.array([-(2 ** 63)], dtype=I8), np.int64(1))
        assert add64(top, np.int64(0)) == 2 ** 63 - 1
        assert sub64(top, top)[0] == 0

    def test_abs64_int64_min(self):
        with pytest.raises(BatchedOverflowError):
            abs64(np.array([-(2 ** 63)], dtype=I8))
        assert (abs64(np.array([-5, 5], dtype=I8)) == 5).all()

    def test_cdiv64_matches_python_ceil(self):
        a = np.array([0, 1, 7, 8, 9], dtype=I8)
        assert list(cdiv64(a, np.int64(4))) == [0, 1, 2, 2, 3]

    def test_box64_clamps_negative_extents(self):
        vol = box64([np.array([3, -1], dtype=I8),
                     np.array([4, 7], dtype=I8)], 2)
        assert list(vol) == [12, 0]

    def test_movement64_matches_scalar_recursion(self):
        # One lane, two levels: s = (c-1)*(d+s)+s, innermost first.
        volume = np.array([10], dtype=I8)
        counts = [np.array([3], dtype=I8), np.array([2], dtype=I8)]
        deltas = [np.array([4], dtype=I8), np.array([5], dtype=I8)]
        s = 0
        for c, d in ((2, 5), (3, 4)):  # innermost (last) first
            s = (c - 1) * (d + s) + s
        assert movement64(volume, counts, deltas)[0] == 10 + s

    def test_movement64_overflow_on_huge_bounds(self):
        volume = np.array([1], dtype=I8)
        counts = [np.full(1, 2 ** 31, dtype=I8)] * 3
        deltas = [np.full(1, 2 ** 31, dtype=I8)] * 3
        with pytest.raises(BatchedOverflowError):
            movement64(volume, counts, deltas)


# -- cohort planner ------------------------------------------------------

class TestPlanner:
    def test_group_keys_partition_members(self):
        _, _, evaluator = _batchable()
        planner = evaluator.planner
        rng = random.Random(3)
        members = sorted({tuple(rng.randrange(len(c))
                                for c in planner.choices)
                          for _ in range(12)})
        plan = planner.plan(members)
        ngroups = len(planner.group_plans)
        assert len(plan.group_keys) == ngroups
        for gi in range(ngroups):
            keys = plan.group_keys[gi]
            assert len(keys) == len(members)
            # classes() positions must tile the member list exactly.
            seen = sorted(p for poss in plan.group_classes(gi).values()
                          for p in poss)
            assert seen == list(range(len(members)))
        # Same members -> byte-identical keys (pure function of factors).
        again = planner.plan(members)
        assert again.group_keys == plan.group_keys


# -- engine integration --------------------------------------------------

class TestEngineIntegration:
    def test_sample_budget_gate(self):
        engine, genome, _ = _batchable()
        space = genome_factor_space(WL, genome)
        assert engine._cohort_hook(genome, space,
                                   BATCH_MIN_SAMPLES - 1) is None
        assert engine._cohort_hook(genome, space,
                                   BATCH_MIN_SAMPLES) is not None
        off = EvaluationEngine(WL, SPEC, batched=False)
        assert off._cohort_hook(genome, space, BATCH_MIN_SAMPLES) is None

    def test_small_tunes_never_sweep(self):
        engine = EvaluationEngine(WL, SPEC, batched=True)
        genome = Genome.random(WL, random.Random(5))
        engine.tune_genome(genome, seed=1, samples=16)
        stats = engine.stats.to_dict()
        assert stats["batch_fill"] == 0
        assert stats["batched_evaluations"] == 0

    def test_stats_carry_batched_attribution(self):
        engine, genome, evaluator = _batchable()
        rng = random.Random(7)
        members = sorted({tuple(rng.randrange(len(c))
                                for c in evaluator.planner.choices)
                          for _ in range(8)})
        costs = evaluator.costs_for(members)
        stats = engine.stats.to_dict()
        committed = sum(1 for c in costs.values() if c is not None)
        assert stats["batch_fill"] >= len(members)
        assert stats["batched_evaluations"] >= committed > 0

    def test_tuner_disables_hook_on_exception(self):
        from repro.mapper.mcts import MCTSTuner
        genome = Genome.random(WL, random.Random(5))
        space = genome_factor_space(WL, genome)
        scalar = EvaluationEngine(WL, SPEC, batched=False)

        calls = {"n": 0}

        def exploding_hook(indices):
            calls["n"] += 1
            raise RuntimeError("boom")

        def run(batch):
            tuner = MCTSTuner(
                space, lambda p: scalar.cost_of(
                    scalar.evaluate_genome(genome, p)),
                seed=3, batch=batch)
            return tuner.search(40)

        assert run(exploding_hook) == run(None)
        assert calls["n"] == 1  # disabled permanently after first raise


# -- obs/report surfaces -------------------------------------------------

class TestReporting:
    def test_incremental_effectiveness_batched_keys(self):
        from repro.obs.report import incremental_effectiveness
        metrics = {
            "engine.subtree_hits": {"kind": "counter", "value": 10},
            "engine.subtree_misses": {"kind": "counter", "value": 10},
            "engine.batched_evaluations": {"kind": "counter", "value": 60},
            "engine.batch_fill": {"kind": "counter", "value": 80},
            "engine.batch_fallbacks": {"kind": "counter", "value": 4},
        }
        inc = incremental_effectiveness(metrics)
        assert inc["batched_evaluations"] == 60
        assert inc["batch_fill"] == 80
        assert inc["batch_fallbacks"] == 4
        assert inc["batch_yield"] == pytest.approx(0.75)
        # Batched counters alone keep the section alive...
        only = incremental_effectiveness(
            {"engine.batch_fill": {"kind": "counter", "value": 5}})
        assert only is not None and only["batch_fill"] == 5
        # ...but a run with no incremental and no batched activity is None.
        assert incremental_effectiveness({}) is None

    def test_render_profile_batched_line(self):
        from repro.obs.report import render_profile
        metrics = {
            "engine.subtree_hits": {"kind": "counter", "value": 1},
            "engine.subtree_misses": {"kind": "counter", "value": 1},
            "engine.batched_evaluations": {"kind": "counter", "value": 6},
            "engine.batch_fill": {"kind": "counter", "value": 8},
            "engine.batch_fallbacks": {"kind": "counter", "value": 2},
        }
        text = render_profile([], metrics)
        assert "batched candidate pricing" in text
        assert "6 of 8 swept candidates committed" in text

    def test_serve_stats_batched_block(self):
        from repro.serve.service import EvaluationService
        service = EvaluationService(workers=1)
        try:
            stats = service.stats()
            assert stats["batched"] == {"batched_evaluations": 0,
                                        "batch_fill": 0,
                                        "batch_fallbacks": 0}
        finally:
            service.stop()


# -- L3 purge budgets ----------------------------------------------------

class TestPurgeBudget:
    def _store(self, tmp_path):
        from repro.engine.cache import DiskArtifactStore
        store = DiskArtifactStore(str(tmp_path))
        for i in range(3):
            store.flush(f"ns{i}", "walkvol",
                        {f"k{j}": j for j in range(50 * (i + 1))})
        return store

    def test_max_age_drops_stale_shards(self, tmp_path):
        store = self._store(tmp_path)
        old = time.time() - 7200
        for pkl in store._shard_dir("ns0").glob("*.pkl"):
            import os
            os.utime(pkl, (old, old))
        removed = store.purge_budget(max_age_s=3600)
        assert removed == ["ns0"]
        assert len(store._shards()) == 2

    def test_max_bytes_trims_oldest_first(self, tmp_path):
        store = self._store(tmp_path)
        sizes = {}
        now = time.time()
        for i in range(3):
            import os
            for pkl in store._shard_dir(f"ns{i}").glob("*.pkl"):
                # Stamp ns0 oldest, ns2 newest.
                os.utime(pkl, (now - (3 - i) * 100, now - (3 - i) * 100))
                sizes[f"ns{i}"] = pkl.stat().st_size
        budget = sizes["ns1"] + sizes["ns2"]
        removed = store.purge_budget(max_bytes=budget)
        assert removed == ["ns0"]
        assert store.purge_budget(max_bytes=0) == ["ns1", "ns2"]
        assert store._shards() == []

    def test_no_budget_removes_nothing(self, tmp_path):
        store = self._store(tmp_path)
        assert store.purge_budget() == []
        assert len(store._shards()) == 3
