"""Unit tests for tensors and operators."""

import pytest

from repro.errors import WorkloadError
from repro.ir import (Operator, Tensor, TensorAccess, dim, simple_access)


class TestTensor:
    def test_basic(self):
        t = Tensor("A", (4, 8))
        assert t.rank == 2
        assert t.volume == 32
        assert t.bytes == 64  # default 2-byte words

    def test_word_bytes(self):
        assert Tensor("A", (4,), word_bytes=4).bytes == 16

    def test_rejects_empty_shape(self):
        with pytest.raises(WorkloadError):
            Tensor("A", ())

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(WorkloadError):
            Tensor("A", (4, 0))

    def test_rejects_empty_name(self):
        with pytest.raises(WorkloadError):
            Tensor("", (4,))

    def test_equality_and_hash(self):
        assert Tensor("A", (4,)) == Tensor("A", (4,))
        assert Tensor("A", (4,)) != Tensor("A", (8,))
        assert len({Tensor("A", (4,)), Tensor("A", (4,))}) == 1


class TestTensorAccess:
    def test_rank_check(self):
        t = Tensor("A", (4, 4))
        with pytest.raises(WorkloadError):
            TensorAccess(t, (dim("i"),))

    def test_extents_over(self):
        t = Tensor("A", (8, 8))
        a = TensorAccess(t, (dim("i"), dim("j") + dim("k")))
        assert a.extents_over({"i": 4, "j": 3, "k": 2}) == (4, 4)

    def test_footprint(self):
        t = Tensor("A", (8, 8))
        a = simple_access(t, "i", "j")
        assert a.footprint_over({"i": 2, "j": 3}) == 6

    def test_displacement(self):
        t = Tensor("A", (8, 8))
        a = TensorAccess(t, (dim("i"), dim("j") + dim("k")))
        assert a.displacement({"j": 2}) == (0, 2)


def _matmul_op(m=4, n=4, k=4):
    a = Tensor("A", (m, k))
    b = Tensor("B", (k, n))
    c = Tensor("C", (m, n))
    return Operator("mm", {"i": m, "j": n, "k": k},
                    [simple_access(a, "i", "k"),
                     simple_access(b, "k", "j")],
                    simple_access(c, "i", "j"))


class TestOperator:
    def test_reduction_inference(self):
        op = _matmul_op()
        assert op.reduction_dims == frozenset({"k"})

    def test_iteration_volume(self):
        assert _matmul_op(2, 3, 4).iteration_volume == 24

    def test_total_ops(self):
        assert _matmul_op(2, 2, 2).total_ops == 8.0

    def test_access_lookup(self):
        op = _matmul_op()
        assert op.access("A").tensor.name == "A"
        assert op.access("C").tensor.name == "C"
        with pytest.raises(WorkloadError):
            op.access("Z")

    def test_uses(self):
        op = _matmul_op()
        assert op.uses("A") and op.uses("C")
        assert not op.uses("Z")

    def test_tensors_ordering(self):
        names = [t.name for t in _matmul_op().tensors()]
        assert names == ["A", "B", "C"]

    def test_rejects_undeclared_dim(self):
        a = Tensor("A", (4,))
        with pytest.raises(WorkloadError):
            Operator("bad", {"i": 4}, [simple_access(a, "z")],
                     simple_access(a, "i"))

    def test_rejects_out_of_bounds_access(self):
        a = Tensor("A", (2,))
        with pytest.raises(WorkloadError):
            Operator("bad", {"i": 4}, [], simple_access(a, "i"))

    def test_rejects_zero_dim(self):
        a = Tensor("A", (4,))
        with pytest.raises(WorkloadError):
            Operator("bad", {"i": 0}, [], simple_access(a, "i"))

    def test_explicit_reduction_dims_validated(self):
        a = Tensor("A", (4,))
        with pytest.raises(WorkloadError):
            Operator("bad", {"i": 4}, [], simple_access(a, "i"),
                     reduction_dims=["z"])

    def test_is_reduction(self):
        op = _matmul_op()
        assert op.is_reduction("k")
        assert not op.is_reduction("i")

    def test_ops_per_point(self):
        a = Tensor("A", (4,))
        op = Operator("soft", {"i": 4}, [simple_access(a, "i")],
                      simple_access(a, "i"), ops_per_point=5.0,
                      kind="softmax")
        assert op.total_ops == 20.0
