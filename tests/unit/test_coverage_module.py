"""Unit tests for dimension-coverage computation."""

import pytest

from repro.tile import apply_loops, op_coverage_below, temporal, spatial
from repro.tile.coverage import _find_leaf
from repro.tile.tree import OpTile
from repro.workloads import conv_chain, matmul


class TestApplyLoops:
    def test_basic_extension(self):
        cov = apply_loops({"i": 4}, [temporal("i", 3, 4)])
        assert cov["i"] == 12  # 2*4 + 4

    def test_overlapping_steps(self):
        # step smaller than inner coverage: overlapping tiles
        cov = apply_loops({"i": 4}, [temporal("i", 3, 2)])
        assert cov["i"] == 8  # 2*2 + 4

    def test_dim_filter(self):
        cov = apply_loops({"i": 1}, [temporal("j", 5)], dims=["i"])
        assert "j" not in cov

    def test_order_inner_to_outer(self):
        cov = apply_loops({}, [temporal("i", 2, 8), temporal("i", 8, 1)])
        assert cov["i"] == 16


class TestOpCoverage:
    def test_halo_over_coverage(self):
        wl = conv_chain(8, 16, 16, 8, 8)
        conv1 = wl.operator("conv1")
        # leaf covering 6 rows stepped by 4 -> overlap
        leaf = OpTile(conv1, [temporal("p", 6), temporal("q", 16),
                              temporal("c1", 8), temporal("r", 3),
                              temporal("s", 3), temporal("c0", 8)],
                      level=0)
        top = OpTile(conv1, [temporal("p", 4, 4)], level=1, child=leaf)
        cov = op_coverage_below(top, conv1)
        assert cov["p"] == 3 * 4 + 6  # 18 >= 16: halo over-coverage

    def test_find_leaf_missing(self):
        wl = matmul(8, 8, 8)
        other = conv_chain(8, 16, 16, 8, 8).operator("conv1")
        leaf = OpTile(wl.operators[0],
                      [temporal(d, n) for d, n in
                       wl.operators[0].dims.items()], level=0)
        with pytest.raises(ValueError):
            _find_leaf(leaf, other)
