"""Unit tests for the tiered subtree artifact store.

Covers the contracts the tiering leans on:

* **L1 segmented eviction** — promotion on re-hit protects high-reuse
  entries; probationary churn is evicted first; under a reuse-heavy
  workload the segmented policy keeps protected-kind hit rates above
  (and protected-kind evictions below) the old insertion-order policy.
* **Counter lifecycle** — ``clear()`` drops entries but keeps lifetime
  counters (documented semantics); ``reset_counters()`` zeroes them;
  multi-threaded hammering leaves every per-tier counter exact.
* **L2** (cross-process mmap log) — round trip, first-writer-wins
  dedup, full-log refusal, attach-by-path, exact value round trips.
* **L3** (disk shards) — flush/load/merge, schema/namespace-mismatch
  and corrupt-file invalidation reading as a cold cache, purge
  selectors.
* **Engine integration** — a cold L1 backed by a warm L3 serves tier
  hits and reproduces results byte-identically; `tune_population`
  workers share artifacts through L2 without changing champions.
"""

import json
import pickle
import random
import threading

import pytest

from repro import arch as arch_mod
from repro.analysis import TileFlowModel
from repro.engine import EvaluationEngine
from repro.engine.cache import (DiskArtifactStore, SharedArtifactStore,
                                SubtreeArtifactCache, TIERED_KINDS)
from repro.engine.cache.l3 import L3_SCHEMA
from repro.mapper import Genome, build_genome_tree, genome_factor_space
from repro.workloads import self_attention

WL = self_attention(2, 32, 64, expand_softmax=False)
SPEC = arch_mod.edge()
NS = "testns|Edge#2|e1r1"


# ----------------------------------------------------------------------
# L1: segmented eviction
# ----------------------------------------------------------------------
def test_promotion_protects_entries_from_churn():
    cache = SubtreeArtifactCache(4)
    hot = cache.store(NS, "walkvol")
    hot.put("h1", 1)
    hot.touch("h1")  # re-hit -> protected
    churn = cache.store(NS, "slices")
    for i in range(20):
        churn.put(f"s{i}", i)
    assert "h1" in hot.data
    assert cache.total == 4
    assert hot.evictions == 0
    assert cache.evictions_by_kind() == {"slices": 17}


def test_probation_evicted_before_protected_within_store():
    cache = SubtreeArtifactCache(3)
    s = cache.store(NS, "walkvol")
    s.put("a", 1)
    s.put("b", 2)
    s.put("c", 3)
    s.touch("a")  # protect the oldest
    s.put("d", 4)  # bound hit: a probationary entry must go, not "a"
    assert "a" in s.data
    assert "b" not in s.data
    assert set(s.data) == {"a", "c", "d"}


def test_insertion_policy_is_the_old_behaviour():
    cache = SubtreeArtifactCache(3, policy="insertion")
    s = cache.store(NS, "walkvol")
    s.put("a", 1)
    s.put("b", 2)
    s.put("c", 3)
    s.touch("a")  # no promotion under the insertion policy
    s.put("d", 4)
    assert "a" not in s.data  # oldest went, promotion or not
    assert set(s.data) == {"b", "c", "d"}


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        SubtreeArtifactCache(8, policy="lru")


def _churn_workload(cache, reuse_keys=8, churn_keys=400, rounds=2, passes=2):
    """A reuse-heavy working set under one-shot churn in the same store.

    Each round re-probes a small hot set ``passes`` times (the access
    shape of walkvol/groupflows on shared subtrees: probed repeatedly
    within and across evaluations), then inserts a burst of distinct
    one-shot fingerprints.  Returns the store's (hits, misses,
    evictions) — under insertion-order eviction the churn expels the
    hot set (it is oldest) every round; segmented promotion keeps it.
    """
    store = cache.store(NS, "walkvol")
    serial = 0
    for _ in range(rounds + 1):
        for _probe_pass in range(passes):
            for k in range(reuse_keys):
                key = f"hot{k}"
                if store.data.get(key) is None:
                    store.miss()
                    store.put(key, k)
                else:
                    store.touch(key)
        for _ in range(churn_keys):
            store.put(f"c{serial}", serial)
            serial += 1
    return store.hits, store.misses, store.evictions


def test_segmented_beats_insertion_under_pressure():
    """The satellite stress test: protected-kind hit rate above, and
    protected-kind evictions below, the insertion-order policy at the
    same small bound."""
    seg = SubtreeArtifactCache(64, policy="segmented")
    ins = SubtreeArtifactCache(64, policy="insertion")
    seg_h, seg_m, seg_e = _churn_workload(seg)
    ins_h, ins_m, ins_e = _churn_workload(ins)
    seg_rate = seg_h / (seg_h + seg_m)
    ins_rate = ins_h / (ins_h + ins_m)
    assert seg_e < ins_e, (seg_e, ins_e)
    assert seg_rate > ins_rate, (seg_rate, ins_rate)
    # Once promoted (the second probe pass of round one), the hot set
    # survives every later burst: it misses exactly once, ever.
    assert seg_m == 8
    # The insertion-order arm re-misses the whole hot set every round.
    assert ins_m == 24


# ----------------------------------------------------------------------
# counter lifecycle (the satellite bug fix)
# ----------------------------------------------------------------------
def test_clear_keeps_counters_reset_counters_zeroes_them():
    cache = SubtreeArtifactCache(4)
    s = cache.store(NS, "walkvol")
    s.put("a", 1)
    s.touch("a")
    s.miss()
    for i in range(9):
        s.put(f"x{i}", i)  # force evictions
    assert cache.eviction_count > 0
    ev_before = cache.eviction_count

    cache.clear()
    # clear() empties entries but documents that lifetime counters
    # survive (snapshot/diff attribution must not move backwards).
    assert cache.total == 0 and len(s.data) == 0 and not s.probation
    assert s.hits == 1 and s.misses == 1
    assert cache.eviction_count == ev_before
    assert s.evictions == ev_before

    cache.reset_counters()
    assert (s.hits, s.misses, s.evictions) == (0, 0, 0)
    assert (s.l2_hits, s.l3_hits) == (0, 0)
    assert cache.eviction_count == 0
    # entries (none here) would have survived: reset is counters-only.
    assert cache.counts() == (0, 0)
    assert cache.tier_counts() == (0, 0)


def test_multithread_hammer_keeps_tier_counters_exact(tmp_path):
    """The satellite hammer: concurrent touch/miss_through/put from many
    threads leaves hits + misses exactly equal to the probe count and
    l3_hits exactly equal to the number of tier-served misses."""
    l3 = DiskArtifactStore(str(tmp_path))
    persisted = {("k", i): i for i in range(64)}
    l3.flush(NS, "walkvol", persisted)

    cache = SubtreeArtifactCache(100_000)
    cache.attach_l3(l3)
    store = cache.store(NS, "walkvol")
    threads, per_thread = 8, 600
    tier_served = [0] * threads

    def hammer(tid):
        rng = random.Random(tid)
        for n in range(per_thread):
            key = ("k", rng.randrange(128))
            value = store.data.get(key)
            if value is None:
                value = store.miss_through(key)
                if value is not None:
                    tier_served[tid] += 1
                else:
                    store.put(key, key[1])
            else:
                store.touch(key)

    workers = [threading.Thread(target=hammer, args=(i,))
               for i in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()

    assert store.hits + store.misses == threads * per_thread
    assert store.l3_hits == sum(tier_served)
    assert store.l2_hits == 0
    assert 0 < store.l3_hits <= store.misses
    assert cache.tier_counts(NS) == (0, store.l3_hits)


# ----------------------------------------------------------------------
# L2: cross-process shared log
# ----------------------------------------------------------------------
def test_l2_roundtrip_dedup_and_attach(tmp_path):
    l2 = SharedArtifactStore.create(size=1 << 18, dir=str(tmp_path))
    key = ("sig", (4, 4), "walk")
    assert l2.put(NS, "walkvol", key, 123456789)
    assert not l2.put(NS, "walkvol", key, 0), "duplicate keys must dedup"
    assert l2.get(NS, "walkvol", key) == 123456789
    assert l2.get(NS, "walkvol", "absent") is None
    assert l2.get("other-ns", "walkvol", key) is None

    peer = SharedArtifactStore.attach(l2.path)
    assert peer.get(NS, "walkvol", key) == 123456789
    assert not peer.put(NS, "walkvol", key, 0)
    assert peer.put(NS, "groupflows", "k2", (1.5, 2.5))
    # The creator sees the peer's append through the shared mapping.
    assert l2.get(NS, "groupflows", "k2") == (1.5, 2.5)
    assert len(l2) == 2
    peer.close()
    l2.unlink()


def test_l2_values_roundtrip_exactly(tmp_path):
    l2 = SharedArtifactStore.create(size=1 << 18, dir=str(tmp_path))
    exact_int = 3**200  # far beyond float precision
    floats = (0.1 + 0.2, 1e-300, -0.0)
    l2.put(NS, "walkvol", "i", exact_int)
    l2.put(NS, "groupflows", "f", floats)
    assert l2.get(NS, "walkvol", "i") == exact_int
    got = l2.get(NS, "groupflows", "f")
    assert [f.hex() for f in got] == [f.hex() for f in floats]
    l2.unlink()


def test_l2_full_log_refuses_appends(tmp_path):
    l2 = SharedArtifactStore.create(size=256, dir=str(tmp_path))
    wrote = 0
    for i in range(64):
        if l2.put(NS, "walkvol", ("pad", i), i):
            wrote += 1
    assert 0 < wrote < 64
    assert l2.full
    assert l2.dropped > 0
    # Existing entries stay readable after the log fills.
    assert l2.get(NS, "walkvol", ("pad", 0)) == 0
    l2.unlink()


def test_l2_attach_rejects_non_stores(tmp_path):
    bogus = tmp_path / "not-a-store.bin"
    bogus.write_bytes(b"\x00" * 64)
    with pytest.raises(ValueError):
        SharedArtifactStore.attach(str(bogus))


# ----------------------------------------------------------------------
# L3: disk shards
# ----------------------------------------------------------------------
def test_l3_flush_load_merge(tmp_path):
    l3 = DiskArtifactStore(str(tmp_path))
    assert l3.load(NS, "walkvol") == {}
    assert l3.flush(NS, "walkvol", {"a": 1, "b": 2}) == 2
    assert l3.flush(NS, "walkvol", {"c": 3}) == 3, "flushes must merge"
    assert l3.load(NS, "walkvol") == {"a": 1, "b": 2, "c": 3}
    # Other kinds and namespaces are independent shards.
    l3.flush(NS, "cov", {"k": {"x": 1}})
    l3.flush("other|ns", "walkvol", {"z": 9})
    stats = l3.stats()
    assert stats["total_entries"] == 5
    assert len(stats["namespaces"]) == 2


def test_l3_schema_and_namespace_mismatch_read_cold(tmp_path):
    l3 = DiskArtifactStore(str(tmp_path))
    l3.flush(NS, "walkvol", {"a": 1})
    shard = next(p for p in l3.root.iterdir() if p.is_dir())
    path = shard / "walkvol.pkl"
    good = path.read_bytes()

    # Hash-prefix collision guard: the payload's recorded namespace must
    # match the probing namespace exactly, not just the dir hash.
    payload = pickle.loads(good)
    payload["namespace"] = "someone|else|entirely"
    path.write_bytes(pickle.dumps(payload))
    assert l3.load(NS, "walkvol") == {}
    assert l3.invalid == 1

    # Schema drift: a bumped payload schema reads as cold.
    payload = pickle.loads(good)
    payload["schema"] = L3_SCHEMA + 1
    path.write_bytes(pickle.dumps(payload))
    assert l3.load(NS, "walkvol") == {}
    assert l3.invalid == 2

    # Corruption reads as cold, never raises.
    path.write_bytes(b"garbage not pickle")
    assert l3.load(NS, "walkvol") == {}

    # The intact payload still loads (the store itself is fine).
    path.write_bytes(good)
    assert l3.load(NS, "walkvol") == {"a": 1}


def test_l3_purge_selectors(tmp_path):
    l3 = DiskArtifactStore(str(tmp_path))
    l3.flush("wlA|edge", "walkvol", {"a": 1})
    l3.flush("wlB|edge", "walkvol", {"b": 2})
    assert l3.purge("wlA") == ["wlA|edge"]
    assert l3.load("wlA|edge", "walkvol") == {}
    assert l3.load("wlB|edge", "walkvol") == {"b": 2}
    # Dir-hash prefixes select too (what `cache stats` prints).
    dir_name = next(p.name for p in l3.root.iterdir() if p.is_dir())
    assert l3.purge(dir_name[:8]) == ["wlB|edge"]
    assert l3.stats()["namespaces"] == []
    assert l3.clear() == 0


def test_l3_purge_spares_foreign_directories(tmp_path):
    l3 = DiskArtifactStore(str(tmp_path))
    l3.flush(NS, "walkvol", {"a": 1})
    foreign = l3.root / "not-a-shard"
    foreign.mkdir()
    (foreign / "precious.txt").write_text("do not delete")
    assert l3.clear() == 1
    assert (foreign / "precious.txt").exists()


# ----------------------------------------------------------------------
# engine integration: byte-identity through the tiers
# ----------------------------------------------------------------------
def _trees(n=6, seed=3):
    rng = random.Random(seed)
    out = []
    while len(out) < n:
        genome = Genome.random(WL, rng)
        factors = genome_factor_space(WL, genome).random_point(rng)
        out.append(build_genome_tree(WL, SPEC, genome, factors))
    return out


def test_cold_l1_warm_l3_is_byte_identical(tmp_path):
    trees = _trees()
    # Reference: plain evaluations, no cache anywhere.
    model = TileFlowModel(SPEC)
    reference = [json.dumps(model.evaluate(t).to_dict(), sort_keys=True)
                 for t in _trees()]

    # Cold run with an L3-backed engine; shutdown flushes the tiers.
    cache_dir = str(tmp_path / "cache")
    with EvaluationEngine(WL, SPEC, cache_dir=cache_dir) as cold:
        cold_out = [json.dumps(cold.evaluate_tree(t).to_dict(),
                               sort_keys=True) for t in trees]
    assert cold.stats.subtree_l3_hits == 0

    # Fresh process-equivalent: new engine, empty L1, same cache dir.
    with EvaluationEngine(WL, SPEC, cache_dir=cache_dir) as warm:
        warm_out = [json.dumps(warm.evaluate_tree(t).to_dict(),
                               sort_keys=True) for t in _trees()]
    assert warm.stats.subtree_l3_hits > 0, "L3 never consulted"
    assert cold_out == reference
    assert warm_out == reference


def test_cache_persist_off_leaves_disk_untouched(tmp_path):
    cache_dir = str(tmp_path / "cache")
    trees = _trees(n=2)
    with EvaluationEngine(WL, SPEC, cache_dir=cache_dir,
                          cache_persist=False) as engine:
        for t in trees:
            engine.evaluate_tree(t)
    assert DiskArtifactStore(cache_dir).stats()["namespaces"] == []


def test_workers_share_l2_and_champions_match():
    rng = random.Random(5)
    genomes = [Genome.random(WL, rng) for _ in range(4)]
    seeds = [100 + i for i in range(len(genomes))]

    with EvaluationEngine(WL, SPEC, workers=1) as serial:
        expected = serial.tune_population(genomes, seeds, samples=6)

    with EvaluationEngine(WL, SPEC, workers=2) as parallel:
        got = parallel.tune_population(genomes, seeds, samples=6)
        l2 = parallel._l2
        if parallel.stats.parallel_tasks:  # pool actually stood up
            assert l2 is not None
            assert l2.stats()["entries"] > 0, \
                "workers never published artifacts to L2"
    assert got == expected


def test_only_tiered_kinds_reach_l2(tmp_path):
    l2 = SharedArtifactStore.create(size=1 << 18, dir=str(tmp_path))
    cache = SubtreeArtifactCache(1024)
    cache.attach_l2(l2)
    cache.store(NS, "slices").put("fp", object())  # unpicklable, L1-only
    cache.store(NS, "walkvol").put("k", 7)
    assert l2.get(NS, "walkvol", "k") == 7
    assert l2.get(NS, "slices", "fp") is None
    assert len(l2) == 1
    assert "slices" not in TIERED_KINDS
    l2.unlink()
