"""Unit tests for affine index expressions."""

import pytest

from repro.ir import AffineExpr, const, dim, exprs, union_dims


class TestConstruction:
    def test_dim_helper(self):
        e = dim("i")
        assert e.terms == {"i": 1}
        assert e.const == 0

    def test_const_helper(self):
        assert const(5).const == 5
        assert const(5).terms == {}

    def test_zero_coefficients_dropped(self):
        e = AffineExpr({"i": 0, "j": 2})
        assert e.terms == {"j": 2}
        assert e.dims == ("j",)

    def test_exprs_helper(self):
        es = exprs("a", "b")
        assert len(es) == 2
        assert es[0] == dim("a")


class TestArithmetic:
    def test_add_dims(self):
        e = dim("i") + dim("j")
        assert e.terms == {"i": 1, "j": 1}

    def test_add_same_dim(self):
        e = dim("i") + dim("i")
        assert e.terms == {"i": 2}

    def test_add_int(self):
        assert (dim("i") + 3).const == 3
        assert (3 + dim("i")).const == 3

    def test_sub(self):
        e = dim("i") - dim("j") - 1
        assert e.terms == {"i": 1, "j": -1}
        assert e.const == -1

    def test_sub_cancels(self):
        assert (dim("i") - dim("i")).is_constant()

    def test_scale(self):
        e = 3 * dim("i")
        assert e.coeff("i") == 3
        assert (e * 0).is_constant()

    def test_neg(self):
        assert (-dim("i")).coeff("i") == -1


class TestEvaluation:
    def test_evaluate_point(self):
        e = 2 * dim("i") + dim("j") + 1
        assert e.evaluate({"i": 3, "j": 4}) == 11

    def test_evaluate_missing_dim_is_zero(self):
        assert dim("i").evaluate({}) == 0

    def test_extent_single_dim(self):
        assert dim("i").extent_over({"i": 10}) == 10

    def test_extent_window(self):
        # conv access h + r over h in [0,4), r in [0,3): values 0..5
        e = dim("h") + dim("r")
        assert e.extent_over({"h": 4, "r": 3}) == 6

    def test_extent_strided(self):
        e = 2 * dim("i")
        assert e.extent_over({"i": 4}) == 7  # 0,2,4,6 -> span 6 + 1

    def test_extent_missing_dim(self):
        assert dim("i").extent_over({}) == 1

    def test_displacement(self):
        e = dim("i") + 2 * dim("j")
        assert e.displacement({"i": 3}) == 3
        assert e.displacement({"j": 3}) == 6
        assert e.displacement({"k": 5}) == 0


class TestValueSemantics:
    def test_equality(self):
        assert dim("i") + 1 == AffineExpr({"i": 1}, 1)

    def test_hashable(self):
        assert len({dim("i"), dim("i"), dim("j")}) == 2

    def test_is_single_dim(self):
        assert dim("i").is_single_dim()
        assert not (2 * dim("i")).is_single_dim()
        assert not (dim("i") + 1).is_single_dim()

    def test_union_dims(self):
        assert union_dims([dim("b") + dim("a"), dim("c")]) == \
            ("a", "b", "c")

    def test_repr_readable(self):
        assert "i" in repr(dim("i") + 2 * dim("j"))
