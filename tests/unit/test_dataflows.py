"""Unit tests for the named dataflow templates."""

import pytest

from repro import arch
from repro.analysis import TileFlowModel
from repro.dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                             attention_dataflow, attention_factor_space,
                             conv_dataflow, conv_factor_space, divisors,
                             fit_rect, floor_divisor, near_divisor,
                             near_tile, tile_choices)
from repro.errors import MappingError
from repro.tile import check_tree
from repro.workloads import conv_chain, self_attention


class TestBuilderHelpers:
    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        with pytest.raises(ValueError):
            divisors(0)

    def test_near_divisor(self):
        assert near_divisor(12, 5) == 6
        assert near_divisor(196, 16) == 14
        assert near_divisor(7, 3) == 1  # |1-3|=2 < |7-3|=4

    def test_floor_divisor(self):
        assert floor_divisor(12, 5) == 4
        assert floor_divisor(7, 4) == 1
        assert floor_divisor(12, 100) == 12

    def test_tile_choices(self):
        assert tile_choices(12, 2) == [2, 4, 6, 12]
        assert tile_choices(7, 3) == [7]  # fallback to full dim

    def test_near_tile(self):
        assert near_tile(196, 14, 56) == 28

    def test_fit_rect(self):
        a, b = fit_rect(56, 128, 1024)
        assert a * b <= 1024
        assert a * b == 1024  # achievable exactly
        a, b = fit_rect(227, 64, 1024)
        assert 227 % a == 0 and 64 % b == 0


@pytest.fixture(scope="module")
def attn():
    return self_attention(8, 512, 512, expand_softmax=True, name="Bert-S")


@pytest.fixture(scope="module")
def attn_compact():
    return self_attention(8, 512, 512, expand_softmax=False)


@pytest.fixture(scope="module")
def chain():
    return conv_chain(32, 56, 56, 64, 64, name="cc")


class TestAttentionTemplates:
    @pytest.mark.parametrize("name", sorted(ATTENTION_DATAFLOWS))
    @pytest.mark.parametrize("spec_name", ["edge", "cloud"])
    def test_builds_valid_tree(self, attn, name, spec_name):
        spec = arch.by_name(spec_name)
        tree = attention_dataflow(name, attn, spec)
        assert check_tree(tree) == []

    @pytest.mark.parametrize("name", sorted(ATTENTION_DATAFLOWS))
    def test_compact_form_supported(self, attn_compact, name):
        tree = attention_dataflow(name, attn_compact, arch.edge())
        assert check_tree(tree) == []

    def test_unknown_name_raises(self, attn):
        with pytest.raises(MappingError):
            attention_dataflow("nope", attn, arch.edge())

    def test_layerwise_intermediates_at_dram(self, attn):
        tree = attention_dataflow("layerwise", attn, arch.edge())
        home = tree.tensor_home("S")
        assert home is tree.root
        assert tree.root.level == arch.edge().dram_index

    def test_fused_intermediates_on_chip(self, attn):
        tree = attention_dataflow("flat_rgran", attn, arch.edge())
        home = tree.tensor_home("S")
        assert home is not None
        assert home.level < arch.edge().dram_index

    def test_factor_space_nonempty(self, attn):
        space = attention_factor_space("tileflow", attn)
        assert "m_tile" in space and "l_tile" in space
        assert all(space["m_tile"])

    def test_factors_respected(self, attn):
        spec = arch.edge()
        t1 = attention_dataflow("flat_rgran", attn, spec, {"m_tile": 64})
        t2 = attention_dataflow("flat_rgran", attn, spec, {"m_tile": 256})
        model = TileFlowModel(spec)
        r1, r2 = model.evaluate(t1), model.evaluate(t2)
        assert (r1.resources.footprint_bytes[1]
                != r2.resources.footprint_bytes[1])

    def test_fusion_reduces_dram(self, attn):
        spec = arch.edge()
        model = TileFlowModel(spec)
        lw = model.evaluate(attention_dataflow("layerwise", attn, spec))
        fused = model.evaluate(attention_dataflow("flat_rgran", attn, spec))
        assert fused.dram_words() < 0.3 * lw.dram_words()

    def test_tileflow_fastest_on_edge(self, attn):
        spec = arch.edge()
        model = TileFlowModel(spec)
        cycles = {n: model.evaluate(attention_dataflow(n, attn, spec))
                  .latency_cycles for n in ATTENTION_DATAFLOWS}
        assert cycles["tileflow"] == min(cycles.values())


class TestConvTemplates:
    @pytest.mark.parametrize("name", sorted(CONV_DATAFLOWS))
    @pytest.mark.parametrize("spec_name", ["edge", "cloud"])
    def test_builds_valid_tree(self, chain, name, spec_name):
        spec = arch.by_name(spec_name)
        tree = conv_dataflow(name, chain, spec)
        assert check_tree(tree) == []

    def test_unknown_name_raises(self, chain):
        with pytest.raises(MappingError):
            conv_dataflow("nope", chain, arch.edge())

    def test_fused_act_stays_on_chip(self, chain):
        spec = arch.cloud()
        model = TileFlowModel(spec)
        fl = model.evaluate(conv_dataflow("fused_layer", chain, spec))
        dram = fl.traffic[spec.dram_index]
        assert dram.read.get("Act", 0) == 0
        assert dram.update.get("Act", 0) == 0

    def test_layerwise_act_through_dram(self, chain):
        spec = arch.cloud()
        model = TileFlowModel(spec)
        lw = model.evaluate(conv_dataflow("layerwise", chain, spec))
        dram = lw.traffic[spec.dram_index]
        assert dram.read.get("Act", 0) > 0

    def test_halo_recompute(self, chain):
        """Fused producers over-compute the halo region."""
        spec = arch.cloud()
        tree = conv_dataflow("fused_layer", chain, spec)
        conv1 = chain.operator("conv1")
        executed = 0.0
        for leaf in tree.root.leaves():
            if leaf.op.name != "conv1":
                continue
            execs = 1.0
            for a in leaf.ancestors():
                execs *= a.trip_count
            executed += leaf.trip_count * execs
        assert executed > conv1.iteration_volume

    def test_factor_spaces(self, chain):
        assert "q_tile" in conv_factor_space("isos", chain)
        assert "p_tile" in conv_factor_space("tileflow", chain)

    def test_all_evaluate_without_error(self, chain):
        for spec in (arch.edge(), arch.cloud()):
            model = TileFlowModel(spec)
            for name in CONV_DATAFLOWS:
                r = model.evaluate(conv_dataflow(name, chain, spec))
                assert r.latency_cycles > 0


class TestTilingLoops:
    def test_tiling_loops_shapes(self):
        from repro.dataflows.builders import tiling_loops
        loops = tiling_loops({"m": 64, "l": 32}, {"m": 16, "l": 32},
                             order=("m", "l"), spatial_dims={"m": 2})
        kinds = [(lp.dim, lp.count, lp.step, lp.spatial) for lp in loops]
        assert ("m", 2, 32, True) in kinds
        assert ("m", 2, 16, False) in kinds  # 32-block / 16-tile
        # l covered in one tile -> no loop emitted
        assert all(d != "l" for d, *_ in kinds)

    def test_tiling_loops_rejects_nondividing(self):
        from repro.dataflows.builders import tiling_loops
        from repro.errors import MappingError
        with pytest.raises(MappingError):
            tiling_loops({"m": 64}, {"m": 7}, order=("m",))
